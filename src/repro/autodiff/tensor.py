"""Reverse-mode automatic differentiation over NumPy arrays.

This module implements a small, self-contained autodiff engine in the spirit
of micrograd, but vectorized: every :class:`Tensor` wraps a ``numpy.ndarray``
and records the operation that produced it.  Calling :meth:`Tensor.backward`
on a scalar tensor propagates gradients to every tensor reachable through the
recorded graph whose ``requires_grad`` flag is set.

The engine supports broadcasting for elementwise operations; gradients are
automatically reduced (summed) back to the shape of each operand.

It is intentionally minimal — only the operations needed by the neural
network library (:mod:`repro.nn`) and by the model-free RL baselines
(:mod:`repro.baselines`) are provided — but each of those operations is exact
and tested against numerical differentiation.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``.

    NumPy broadcasting can expand an operand either by prepending dimensions
    or by stretching size-1 dimensions.  The adjoint of broadcasting is a sum
    over exactly those dimensions.
    """
    if grad.shape == shape:
        return grad
    # Sum over prepended dimensions.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over stretched (size-1) dimensions.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with a gradient and a backward closure.

    Parameters
    ----------
    data:
        Array-like payload; always stored as ``float64``.
    requires_grad:
        If True, ``backward`` accumulates a gradient into :attr:`grad`.
    _children:
        Parent tensors in the computation graph (internal).
    _op:
        Human-readable operation name for debugging (internal).
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_children", "_op")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _children: Iterable["Tensor"] = (),
        _op: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[], None] = lambda: None
        self._children: Tuple["Tensor", ...] = tuple(_children)
        self._op = _op

    # ------------------------------------------------------------------
    # Basic protocol helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return (
            f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad},"
            f" op={self._op!r})"
        )

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph bookkeeping
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to 1.0, which requires the tensor to be
            scalar (as with a loss value).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without a seed gradient requires a scalar tensor; "
                    f"got shape {self.data.shape}"
                )
            grad = np.ones_like(self.data)
        # Iterative post-order DFS: the incremental surrogate refits build
        # graphs far deeper than CPython's recursion limit.
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple["Tensor", bool]] = [(self, False)]
        while stack:
            node, children_done = stack.pop()
            if children_done:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for child in node._children:
                if id(child) not in visited:
                    stack.append((child, False))
        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(topo):
            if node.grad is not None:
                node._backward()

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = Tensor(
            self.data + other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _children=(self, other),
            _op="add",
        )

        def _backward() -> None:
            self._accumulate(out.grad)
            other._accumulate(out.grad)

        out._backward = _backward
        return out

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = Tensor(
            self.data * other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _children=(self, other),
            _op="mul",
        )

        def _backward() -> None:
            self._accumulate(out.grad * other.data)
            other._accumulate(out.grad * self.data)

        out._backward = _backward
        return out

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = Tensor(
            self.data ** exponent,
            requires_grad=self.requires_grad,
            _children=(self,),
            _op="pow",
        )

        def _backward() -> None:
            self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        out._backward = _backward
        return out

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def abs(self) -> "Tensor":
        """Elementwise absolute value with the subgradient 0 at 0.

        ``np.sign`` returns 0 at the kink, so the backward pass is finite
        everywhere — unlike ``(x * x) ** 0.5``, whose chain rule divides by
        zero exactly at ``x == 0``.
        """
        out = Tensor(
            np.abs(self.data),
            requires_grad=self.requires_grad,
            _children=(self,),
            _op="abs",
        )

        def _backward() -> None:
            self._accumulate(out.grad * np.sign(self.data))

        out._backward = _backward
        return out

    def __abs__(self) -> "Tensor":
        return self.abs()

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-(other if isinstance(other, Tensor) else Tensor(other)))

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self * other ** -1.0

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self + other

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return (-self) + other

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self * other

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = Tensor(
            self.data @ other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _children=(self, other),
            _op="matmul",
        )

        def _backward() -> None:
            grad = out.grad
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if grad.ndim else grad * other.data)
                else:
                    g = np.atleast_2d(grad)
                    self._accumulate((g @ other.data.T).reshape(self.data.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    g = np.atleast_2d(grad)
                    a = np.atleast_2d(self.data)
                    other._accumulate((a.T @ g).reshape(other.data.shape))

        out._backward = _backward
        return out

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    def transpose(self) -> "Tensor":
        out = Tensor(
            self.data.T,
            requires_grad=self.requires_grad,
            _children=(self,),
            _op="transpose",
        )

        def _backward() -> None:
            self._accumulate(out.grad.T)

        out._backward = _backward
        return out

    @property
    def T(self) -> "Tensor":  # noqa: N802 - mimic numpy naming
        return self.transpose()

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = Tensor(
            self.data.reshape(shape),
            requires_grad=self.requires_grad,
            _children=(self,),
            _op="reshape",
        )

        def _backward() -> None:
            self._accumulate(out.grad.reshape(self.data.shape))

        out._backward = _backward
        return out

    def __getitem__(self, index) -> "Tensor":
        out = Tensor(
            self.data[index],
            requires_grad=self.requires_grad,
            _children=(self,),
            _op="getitem",
        )

        def _backward() -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, out.grad)
            self._accumulate(grad)

        out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out = Tensor(
            self.data.sum(axis=axis, keepdims=keepdims),
            requires_grad=self.requires_grad,
            _children=(self,),
            _op="sum",
        )

        def _backward() -> None:
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        out._backward = _backward
        return out

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = Tensor(
            out_data,
            requires_grad=self.requires_grad,
            _children=(self,),
            _op="max",
        )

        def _backward() -> None:
            grad = out.grad
            reference = out_data
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
                reference = np.expand_dims(out_data, axis)
            mask = (self.data == reference).astype(np.float64)
            mask = mask / np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * grad)

        out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out = Tensor(
            np.exp(self.data),
            requires_grad=self.requires_grad,
            _children=(self,),
            _op="exp",
        )

        def _backward() -> None:
            self._accumulate(out.grad * out.data)

        out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = Tensor(
            np.log(self.data),
            requires_grad=self.requires_grad,
            _children=(self,),
            _op="log",
        )

        def _backward() -> None:
            self._accumulate(out.grad / self.data)

        out._backward = _backward
        return out

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)
        out = Tensor(
            value,
            requires_grad=self.requires_grad,
            _children=(self,),
            _op="tanh",
        )

        def _backward() -> None:
            self._accumulate(out.grad * (1.0 - value ** 2))

        out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        out = Tensor(
            np.maximum(self.data, 0.0),
            requires_grad=self.requires_grad,
            _children=(self,),
            _op="relu",
        )

        def _backward() -> None:
            self._accumulate(out.grad * (self.data > 0.0))

        out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-self.data))
        out = Tensor(
            value,
            requires_grad=self.requires_grad,
            _children=(self,),
            _op="sigmoid",
        )

        def _backward() -> None:
            self._accumulate(out.grad * value * (1.0 - value))

        out._backward = _backward
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is passed through only inside the range."""
        out = Tensor(
            np.clip(self.data, low, high),
            requires_grad=self.requires_grad,
            _children=(self,),
            _op="clip",
        )

        def _backward() -> None:
            inside = (self.data >= low) & (self.data <= high)
            self._accumulate(out.grad * inside)

        out._backward = _backward
        return out

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        value = shifted - log_norm
        out = Tensor(
            value,
            requires_grad=self.requires_grad,
            _children=(self,),
            _op="log_softmax",
        )

        def _backward() -> None:
            softmax = np.exp(value)
            grad_sum = out.grad.sum(axis=axis, keepdims=True)
            self._accumulate(out.grad - softmax * grad_sum)

        out._backward = _backward
        return out

    def softmax(self, axis: int = -1) -> "Tensor":
        return self.log_softmax(axis=axis).exp()


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = Tensor(
        data,
        requires_grad=any(t.requires_grad for t in tensors),
        _children=tuple(tensors),
        _op="concatenate",
    )
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def _backward() -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * data.ndim
            slicer[axis] = slice(start, stop)
            tensor._accumulate(out.grad[tuple(slicer)])

    out._backward = _backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    out = Tensor(
        data,
        requires_grad=any(t.requires_grad for t in tensors),
        _children=tuple(tensors),
        _op="stack",
    )

    def _backward() -> None:
        grads = np.moveaxis(out.grad, axis, 0)
        for tensor, grad in zip(tensors, grads):
            tensor._accumulate(grad)

    out._backward = _backward
    return out


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select with gradient routed to the chosen branch."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    condition = np.asarray(condition, dtype=bool)
    out = Tensor(
        np.where(condition, a.data, b.data),
        requires_grad=a.requires_grad or b.requires_grad,
        _children=(a, b),
        _op="where",
    )

    def _backward() -> None:
        a._accumulate(out.grad * condition)
        b._accumulate(out.grad * (~condition))

    out._backward = _backward
    return out
