"""Minimal reverse-mode automatic differentiation engine.

The engine backs both the supervised surrogate network used by the paper's
model-based agent and the policy/value networks of the model-free baselines
(A2C, PPO, TRPO).
"""

from repro.autodiff.tensor import Tensor, concatenate, stack, where

__all__ = ["Tensor", "concatenate", "stack", "where"]
