"""Core abstractions: the gridded sizing design space (the CSP domain)."""

from repro.core.design_space import DesignSpace, Parameter

__all__ = ["DesignSpace", "Parameter"]
