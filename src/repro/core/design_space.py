"""Design-space description: sizing variables, ranges and grids.

The CSP of the paper (Eq. 2) is defined over a finite set of sizing variables
``X`` with per-variable domains ``D_i``.  :class:`Parameter` describes one
variable (a transistor width, a capacitor value, a bias current, ...) with an
inclusive range and a grid resolution; :class:`DesignSpace` bundles them and
provides the operations every agent needs:

* uniform random sampling (the Monte-Carlo exploration of Algorithm 1),
* conversion to/from the normalised unit cube (where the surrogate network
  and the trust-region radius live),
* snapping to the discrete grid (what a designer would actually draw),
* sampling inside an L-infinity ball (the trust region, Eq. 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Parameter:
    """One sizing variable.

    Attributes
    ----------
    name:
        Variable name, e.g. ``"w1"`` or ``"cc"``.
    low, high:
        Inclusive bounds in the variable's natural unit.
    grid_points:
        Number of grid values between ``low`` and ``high`` (inclusive); this
        is what defines the finite CSP domain size quoted in the paper
        (e.g. "design space size of 1e14").
    log_scale:
        If True, the grid and the unit-cube mapping are logarithmic, which is
        the natural choice for capacitances and currents spanning decades.
    unit:
        Documentation-only unit string.
    """

    name: str
    low: float
    high: float
    grid_points: int = 64
    log_scale: bool = False
    unit: str = ""

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise ValueError(f"parameter {self.name!r}: low must be < high")
        if self.grid_points < 2:
            raise ValueError(f"parameter {self.name!r}: grid_points must be >= 2")
        if self.log_scale and self.low <= 0:
            raise ValueError(f"parameter {self.name!r}: log scale requires positive bounds")

    # -- unit-cube mapping ------------------------------------------------
    def to_unit(self, value: float) -> float:
        """Map a natural value into [0, 1]."""
        if self.log_scale:
            return (math.log(value) - math.log(self.low)) / (
                math.log(self.high) - math.log(self.low)
            )
        return (value - self.low) / (self.high - self.low)

    def from_unit(self, unit_value: float) -> float:
        """Map a unit-cube coordinate back to the natural range."""
        unit_value = min(max(unit_value, 0.0), 1.0)
        if self.log_scale:
            return math.exp(
                math.log(self.low) + unit_value * (math.log(self.high) - math.log(self.low))
            )
        return self.low + unit_value * (self.high - self.low)

    def grid_values(self) -> np.ndarray:
        """All legal grid values of this parameter."""
        fractions = np.linspace(0.0, 1.0, self.grid_points)
        return np.array([self.from_unit(fraction) for fraction in fractions])

    def snap(self, value: float) -> float:
        """Snap a natural value to the nearest grid value."""
        unit = self.to_unit(min(max(value, self.low), self.high))
        step = 1.0 / (self.grid_points - 1)
        snapped_unit = round(unit / step) * step
        return self.from_unit(snapped_unit)


class DesignSpace:
    """An ordered collection of :class:`Parameter` objects."""

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        if not parameters:
            raise ValueError("a design space needs at least one parameter")
        names = [parameter.name for parameter in parameters]
        if len(set(names)) != len(names):
            raise ValueError("parameter names must be unique")
        self.parameters: Tuple[Parameter, ...] = tuple(parameters)
        self._by_name: Dict[str, Parameter] = {p.name: p for p in parameters}
        # Cached per-parameter arrays so unit-cube mapping, snapping and
        # sampling vectorize over whole (count, dimension) sample batches.
        self._lows = np.array([p.low for p in self.parameters])
        self._highs = np.array([p.high for p in self.parameters])
        self._log_mask = np.array([p.log_scale for p in self.parameters])
        self._grid_steps = np.array([1.0 / (p.grid_points - 1) for p in self.parameters])
        safe_lows = np.where(self._log_mask, self._lows, 1.0)
        safe_highs = np.where(self._log_mask, self._highs, 1.0)
        self._log_lows = np.log(safe_lows)
        self._log_spans = np.log(safe_highs) - self._log_lows

    # -- basic protocol ---------------------------------------------------
    def __len__(self) -> int:
        return len(self.parameters)

    def __iter__(self):
        return iter(self.parameters)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Parameter:
        return self._by_name[name]

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(parameter.name for parameter in self.parameters)

    @property
    def dimension(self) -> int:
        return len(self.parameters)

    def size(self) -> float:
        """Total number of grid combinations (the CSP domain size)."""
        total = 1.0
        for parameter in self.parameters:
            total *= parameter.grid_points
        return total

    def log10_size(self) -> float:
        """log10 of the grid size; the paper quotes sizes as 1e14, 1e29, ..."""
        return float(sum(math.log10(p.grid_points) for p in self.parameters))

    # -- vector <-> dict --------------------------------------------------
    def to_dict(self, vector: Sequence[float]) -> Dict[str, float]:
        """Convert a natural-unit vector into a name -> value mapping."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dimension,):
            raise ValueError(f"expected vector of length {self.dimension}, got {vector.shape}")
        return {name: float(value) for name, value in zip(self.names, vector)}

    def to_vector(self, values: Mapping[str, float]) -> np.ndarray:
        """Convert a name -> value mapping into a natural-unit vector."""
        missing = [name for name in self.names if name not in values]
        if missing:
            raise KeyError(f"missing parameters: {missing}")
        return np.array([float(values[name]) for name in self.names])

    # -- unit-cube mapping --------------------------------------------------
    # All mapping helpers accept either a single vector of shape ``(dim,)``
    # or a batch of shape ``(count, dim)`` and vectorize column-wise; this is
    # the fast path the batch circuit evaluator and the trust-region sampler
    # rely on.
    def to_unit(self, vector: Sequence[float]) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64)
        if np.any((vector <= 0.0) & self._log_mask):
            raise ValueError("non-positive value for a log-scale parameter")
        safe = np.where(self._log_mask, np.maximum(vector, 1e-300), 1.0)
        linear = (vector - self._lows) / (self._highs - self._lows)
        logarithmic = (np.log(safe) - self._log_lows) / np.where(
            self._log_mask, self._log_spans, 1.0
        )
        return np.where(self._log_mask, logarithmic, linear)

    def from_unit(self, unit_vector: Sequence[float]) -> np.ndarray:
        unit_vector = np.clip(np.asarray(unit_vector, dtype=np.float64), 0.0, 1.0)
        linear = self._lows + unit_vector * (self._highs - self._lows)
        logarithmic = np.exp(self._log_lows + unit_vector * self._log_spans)
        return np.where(self._log_mask, logarithmic, linear)

    def clip(self, vector: Sequence[float]) -> np.ndarray:
        """Clamp a natural-unit vector into the box."""
        vector = np.asarray(vector, dtype=np.float64)
        return np.clip(vector, self._lows, self._highs)

    def snap(self, vector: Sequence[float]) -> np.ndarray:
        """Snap every coordinate to its grid."""
        unit = self.to_unit(self.clip(vector))
        snapped_unit = np.round(unit / self._grid_steps) * self._grid_steps
        return self.from_unit(snapped_unit)

    def contains(self, vector: Sequence[float]) -> bool:
        """True when the vector lies inside the box (inclusive)."""
        vector = np.asarray(vector, dtype=np.float64)
        return bool(
            np.all(vector >= self._lows - 1e-12) and np.all(vector <= self._highs + 1e-12)
        )

    # -- sampling ------------------------------------------------------------
    def sample(self, rng: np.random.Generator, count: int = 1, snap: bool = True) -> np.ndarray:
        """Uniform random samples in the unit cube mapped to natural units.

        Returns an array of shape ``(count, dimension)``.
        """
        unit = rng.random((count, self.dimension))
        samples = self.from_unit(unit)
        if snap:
            samples = self.snap(samples)
        return samples

    def sample_ball(
        self,
        rng: np.random.Generator,
        center: Sequence[float],
        radius: float,
        count: int,
        snap: bool = True,
    ) -> np.ndarray:
        """Uniform samples inside an L-infinity ball of the unit cube.

        This realises the trust region ``D_TR = {X : ||X - X_i|| <= delta_r}``
        of Eq. (5); the norm is taken in the normalised unit cube so the
        radius has a consistent meaning across heterogeneous variables.
        """
        center_unit = self.to_unit(np.asarray(center, dtype=np.float64))
        offsets = rng.uniform(-radius, radius, size=(count, self.dimension))
        unit_points = np.clip(center_unit + offsets, 0.0, 1.0)
        samples = self.from_unit(unit_points)
        if snap:
            samples = self.snap(samples)
        return samples

    def grid_neighbors(self, vector: Sequence[float]) -> List[np.ndarray]:
        """All single-step grid moves from ``vector`` (used by the env baselines).

        Moves that would step outside the box are skipped rather than clipped
        — clipping at a boundary would return the centre point itself as a
        spurious "neighbor".
        """
        center_unit = self.to_unit(self.snap(vector))
        neighbors: List[np.ndarray] = []
        for index in range(self.dimension):
            step = self._grid_steps[index]
            for direction in (-1.0, +1.0):
                moved = center_unit[index] + direction * step
                if moved < -1e-9 or moved > 1.0 + 1e-9:
                    continue
                unit = center_unit.copy()
                unit[index] = min(max(moved, 0.0), 1.0)
                neighbors.append(self.snap(self.from_unit(unit)))
        return neighbors

    def describe(self) -> str:
        """Human-readable summary (used by the designer-facing API)."""
        lines = [f"DesignSpace with {self.dimension} parameters (|D| ~ 1e{self.log10_size():.1f})"]
        for parameter in self.parameters:
            scale = "log" if parameter.log_scale else "lin"
            lines.append(
                f"  {parameter.name:>10s}: [{parameter.low:g}, {parameter.high:g}] "
                f"{parameter.unit} ({parameter.grid_points} pts, {scale})"
            )
        return "\n".join(lines)
