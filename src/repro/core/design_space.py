"""Design-space description: sizing variables, ranges and grids.

The CSP of the paper (Eq. 2) is defined over a finite set of sizing variables
``X`` with per-variable domains ``D_i``.  :class:`Parameter` describes one
variable (a transistor width, a capacitor value, a bias current, ...) with an
inclusive range and a grid resolution; :class:`DesignSpace` bundles them and
provides the operations every agent needs:

* uniform random sampling (the Monte-Carlo exploration of Algorithm 1),
* conversion to/from the normalised unit cube (where the surrogate network
  and the trust-region radius live),
* snapping to the discrete grid (what a designer would actually draw),
* sampling inside an L-infinity ball (the trust region, Eq. 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Parameter:
    """One sizing variable.

    Attributes
    ----------
    name:
        Variable name, e.g. ``"w1"`` or ``"cc"``.
    low, high:
        Inclusive bounds in the variable's natural unit.
    grid_points:
        Number of grid values between ``low`` and ``high`` (inclusive); this
        is what defines the finite CSP domain size quoted in the paper
        (e.g. "design space size of 1e14").
    log_scale:
        If True, the grid and the unit-cube mapping are logarithmic, which is
        the natural choice for capacitances and currents spanning decades.
    unit:
        Documentation-only unit string.
    """

    name: str
    low: float
    high: float
    grid_points: int = 64
    log_scale: bool = False
    unit: str = ""

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise ValueError(f"parameter {self.name!r}: low must be < high")
        if self.grid_points < 2:
            raise ValueError(f"parameter {self.name!r}: grid_points must be >= 2")
        if self.log_scale and self.low <= 0:
            raise ValueError(f"parameter {self.name!r}: log scale requires positive bounds")

    # -- unit-cube mapping ------------------------------------------------
    def to_unit(self, value: float) -> float:
        """Map a natural value into [0, 1]."""
        if self.log_scale:
            return (math.log(value) - math.log(self.low)) / (
                math.log(self.high) - math.log(self.low)
            )
        return (value - self.low) / (self.high - self.low)

    def from_unit(self, unit_value: float) -> float:
        """Map a unit-cube coordinate back to the natural range."""
        unit_value = min(max(unit_value, 0.0), 1.0)
        if self.log_scale:
            return math.exp(
                math.log(self.low) + unit_value * (math.log(self.high) - math.log(self.low))
            )
        return self.low + unit_value * (self.high - self.low)

    def grid_values(self) -> np.ndarray:
        """All legal grid values of this parameter."""
        fractions = np.linspace(0.0, 1.0, self.grid_points)
        return np.array([self.from_unit(fraction) for fraction in fractions])

    def snap(self, value: float) -> float:
        """Snap a natural value to the nearest grid value."""
        unit = self.to_unit(min(max(value, self.low), self.high))
        step = 1.0 / (self.grid_points - 1)
        snapped_unit = round(unit / step) * step
        return self.from_unit(snapped_unit)


class DesignSpace:
    """An ordered collection of :class:`Parameter` objects."""

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        if not parameters:
            raise ValueError("a design space needs at least one parameter")
        names = [parameter.name for parameter in parameters]
        if len(set(names)) != len(names):
            raise ValueError("parameter names must be unique")
        self.parameters: Tuple[Parameter, ...] = tuple(parameters)
        self._by_name: Dict[str, Parameter] = {p.name: p for p in parameters}

    # -- basic protocol ---------------------------------------------------
    def __len__(self) -> int:
        return len(self.parameters)

    def __iter__(self):
        return iter(self.parameters)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Parameter:
        return self._by_name[name]

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(parameter.name for parameter in self.parameters)

    @property
    def dimension(self) -> int:
        return len(self.parameters)

    def size(self) -> float:
        """Total number of grid combinations (the CSP domain size)."""
        total = 1.0
        for parameter in self.parameters:
            total *= parameter.grid_points
        return total

    def log10_size(self) -> float:
        """log10 of the grid size; the paper quotes sizes as 1e14, 1e29, ..."""
        return float(sum(math.log10(p.grid_points) for p in self.parameters))

    # -- vector <-> dict --------------------------------------------------
    def to_dict(self, vector: Sequence[float]) -> Dict[str, float]:
        """Convert a natural-unit vector into a name -> value mapping."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dimension,):
            raise ValueError(f"expected vector of length {self.dimension}, got {vector.shape}")
        return {name: float(value) for name, value in zip(self.names, vector)}

    def to_vector(self, values: Mapping[str, float]) -> np.ndarray:
        """Convert a name -> value mapping into a natural-unit vector."""
        missing = [name for name in self.names if name not in values]
        if missing:
            raise KeyError(f"missing parameters: {missing}")
        return np.array([float(values[name]) for name in self.names])

    # -- unit-cube mapping --------------------------------------------------
    def to_unit(self, vector: Sequence[float]) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64)
        return np.array(
            [parameter.to_unit(value) for parameter, value in zip(self.parameters, vector)]
        )

    def from_unit(self, unit_vector: Sequence[float]) -> np.ndarray:
        unit_vector = np.asarray(unit_vector, dtype=np.float64)
        return np.array(
            [parameter.from_unit(value) for parameter, value in zip(self.parameters, unit_vector)]
        )

    def clip(self, vector: Sequence[float]) -> np.ndarray:
        """Clamp a natural-unit vector into the box."""
        vector = np.asarray(vector, dtype=np.float64)
        lows = np.array([parameter.low for parameter in self.parameters])
        highs = np.array([parameter.high for parameter in self.parameters])
        return np.clip(vector, lows, highs)

    def snap(self, vector: Sequence[float]) -> np.ndarray:
        """Snap every coordinate to its grid."""
        vector = np.asarray(vector, dtype=np.float64)
        return np.array(
            [parameter.snap(value) for parameter, value in zip(self.parameters, vector)]
        )

    def contains(self, vector: Sequence[float]) -> bool:
        """True when the vector lies inside the box (inclusive)."""
        vector = np.asarray(vector, dtype=np.float64)
        lows = np.array([parameter.low for parameter in self.parameters])
        highs = np.array([parameter.high for parameter in self.parameters])
        return bool(np.all(vector >= lows - 1e-12) and np.all(vector <= highs + 1e-12))

    # -- sampling ------------------------------------------------------------
    def sample(self, rng: np.random.Generator, count: int = 1, snap: bool = True) -> np.ndarray:
        """Uniform random samples in the unit cube mapped to natural units.

        Returns an array of shape ``(count, dimension)``.
        """
        unit = rng.random((count, self.dimension))
        samples = np.array([self.from_unit(row) for row in unit])
        if snap:
            samples = np.array([self.snap(row) for row in samples])
        return samples

    def sample_ball(
        self,
        rng: np.random.Generator,
        center: Sequence[float],
        radius: float,
        count: int,
        snap: bool = True,
    ) -> np.ndarray:
        """Uniform samples inside an L-infinity ball of the unit cube.

        This realises the trust region ``D_TR = {X : ||X - X_i|| <= delta_r}``
        of Eq. (5); the norm is taken in the normalised unit cube so the
        radius has a consistent meaning across heterogeneous variables.
        """
        center_unit = self.to_unit(np.asarray(center, dtype=np.float64))
        offsets = rng.uniform(-radius, radius, size=(count, self.dimension))
        unit_points = np.clip(center_unit + offsets, 0.0, 1.0)
        samples = np.array([self.from_unit(row) for row in unit_points])
        if snap:
            samples = np.array([self.snap(row) for row in samples])
        return samples

    def grid_neighbors(self, vector: Sequence[float]) -> List[np.ndarray]:
        """All single-step grid moves from ``vector`` (used by the env baselines)."""
        vector = self.snap(vector)
        neighbors: List[np.ndarray] = []
        for index, parameter in enumerate(self.parameters):
            step = 1.0 / (parameter.grid_points - 1)
            for direction in (-1.0, +1.0):
                unit = self.to_unit(vector)
                unit[index] = min(max(unit[index] + direction * step, 0.0), 1.0)
                neighbors.append(self.snap(self.from_unit(unit)))
        return neighbors

    def describe(self) -> str:
        """Human-readable summary (used by the designer-facing API)."""
        lines = [f"DesignSpace with {self.dimension} parameters (|D| ~ 1e{self.log10_size():.1f})"]
        for parameter in self.parameters:
            scale = "log" if parameter.log_scale else "lin"
            lines.append(
                f"  {parameter.name:>10s}: [{parameter.low:g}, {parameter.high:g}] "
                f"{parameter.unit} ({parameter.grid_points} pts, {scale})"
            )
        return "\n".join(lines)
