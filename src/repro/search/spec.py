"""Constraint-satisfaction specifications (the CSP of Eq. 2).

A sizing task in the paper is not an optimization of a single figure of
merit but a *constraint satisfaction problem*: find any sizing whose
measurements meet every spec.  :class:`Spec` is one inequality constraint on
a named measurement; :class:`Specification` binds a set of them to a metric
vector layout and turns raw measurements into normalized margins and a
scalar satisfaction score the search can hill-climb.

The score convention: each spec contributes ``min(margin, 0)`` with the
margin normalized by the spec's scale, so the score is 0 exactly when every
constraint holds and grows more negative with the total violation.  This is
the standard penalty shaping for surrogate-assisted CSP search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Spec:
    """One inequality constraint on a named measurement.

    Attributes
    ----------
    metric:
        Name of the measurement this spec constrains.
    sense:
        ``">="`` (the measurement must reach the bound) or ``"<="``.
    bound:
        The constraint bound in the measurement's natural unit.
    scale:
        Normalization for the margin; defaults to ``|bound|`` so margins are
        comparable across heterogeneous units (dB vs hertz vs watts).
    """

    metric: str
    sense: str
    bound: float
    scale: Optional[float] = None

    def __post_init__(self) -> None:
        if self.sense not in (">=", "<="):
            raise ValueError(f"sense must be '>=' or '<=', got {self.sense!r}")

    @property
    def normalizer(self) -> float:
        if self.scale is not None:
            return float(self.scale)
        return max(abs(self.bound), 1e-30)

    def margin(self, value):
        """Normalized signed margin; positive (or zero) means satisfied."""
        value = np.asarray(value, dtype=np.float64)
        if self.sense == ">=":
            raw = value - self.bound
        else:
            raw = self.bound - value
        return raw / self.normalizer

    def __str__(self) -> str:
        return f"{self.metric} {self.sense} {self.bound:g}"


class Specification:
    """A set of specs bound to a concrete metric-vector layout."""

    def __init__(self, specs: Sequence[Spec], metric_names: Sequence[str]) -> None:
        if not specs:
            raise ValueError("a specification needs at least one spec")
        self.metric_names: Tuple[str, ...] = tuple(metric_names)
        index: Dict[str, int] = {name: i for i, name in enumerate(self.metric_names)}
        missing = [spec.metric for spec in specs if spec.metric not in index]
        if missing:
            raise KeyError(f"specs reference unknown metrics: {missing}")
        self.specs: Tuple[Spec, ...] = tuple(specs)
        self._columns = np.array([index[spec.metric] for spec in specs])

    def __len__(self) -> int:
        return len(self.specs)

    def margins(self, metrics: np.ndarray) -> np.ndarray:
        """Normalized margins, shape ``(count, n_specs)``."""
        metrics = np.atleast_2d(np.asarray(metrics, dtype=np.float64))
        return np.stack(
            [spec.margin(metrics[:, column]) for spec, column in zip(self.specs, self._columns)],
            axis=1,
        )

    def score(self, metrics: np.ndarray) -> np.ndarray:
        """Scalar satisfaction score per row: 0 iff feasible, else negative."""
        return np.minimum(self.margins(metrics), 0.0).sum(axis=1)

    def satisfied(self, metrics: np.ndarray) -> np.ndarray:
        """Boolean feasibility per row (tolerant to float round-off)."""
        return np.all(self.margins(metrics) >= -1e-9, axis=1)

    def report(self, metrics: np.ndarray) -> str:
        """Human-readable pass/fail table for a single metric vector."""
        metrics = np.atleast_2d(np.asarray(metrics, dtype=np.float64))
        margins = self.margins(metrics)[0]
        lines = []
        for spec, column, margin in zip(self.specs, self._columns, margins):
            status = "PASS" if margin >= -1e-9 else "FAIL"
            lines.append(f"  [{status}] {spec} (measured {metrics[0, column]:.4g})")
        return "\n".join(lines)
