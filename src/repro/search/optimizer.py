"""The ask/tell optimizer protocol and the cheap baseline optimizers.

Every search strategy in :mod:`repro.search` speaks the same minimal
protocol, so the evaluation side (who runs the true evaluator, where the
budget lives, whether many seeds share one vectorized corner pass) is owned
by a *driver* — :class:`~repro.search.campaign.Campaign` — instead of being
hard-wired into each algorithm:

* :meth:`Optimizer.ask` returns the next batch of sizings to evaluate —
  already grid-snapped, deduplicated against everything the optimizer has
  seen, and clamped to its remaining budget;
* :meth:`Optimizer.tell` feeds the true metrics for exactly that batch back
  in, advancing the internal state (incumbent, surrogate, distribution,
  trust radius, ...);
* :attr:`Optimizer.is_done` says whether another ``ask`` would be useful;
* :attr:`Optimizer.best` is the incumbent so far, and
  :meth:`Optimizer.result` packs the final :class:`SearchResult`.

:class:`DatasetOptimizer` is the shared machinery every concrete optimizer
here builds on: the amortized-doubling dataset of evaluated points with
vectorized void-view dedup, incremental scoring and incumbent tracking (the
hot path carried over from the PR-3 trust-region overhaul), plus a
self-driving :meth:`DatasetOptimizer.run` loop for standalone use with a
plain batch evaluator.

Two cheap baselines prove the protocol generalizes beyond Algorithm 1:
:class:`RandomSearch` (pure Monte-Carlo) and :class:`CrossEntropySearch`
(a (mu, lambda) cross-entropy sampler in the unit cube).  Both reuse
:class:`~repro.search.trust_region.TrustRegionConfig` for their common knobs
(``seed``, ``initial_samples``, ``batch_size``, ``max_evaluations``) so the
benchmark registry can swap optimizers without a parallel config zoo.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Type

import numpy as np

from repro.analysis.contracts import contract
from repro.core.design_space import DesignSpace
from repro.search.spec import Specification

#: An evaluator maps a ``(count, dim)`` sizing array to ``(count, n_metrics)``.
BatchEvaluator = Callable[[np.ndarray], np.ndarray]

#: Feasibility tolerance shared with :meth:`Specification.satisfied`: a score
#: this close to zero counts as solved, so float round-off never burns budget.
FEASIBLE_TOL = -1e-9


def tell_precondition(arguments) -> Optional[str]:
    """Contract shared by every ``tell``: one metric row per sizing row.

    Checked only once both arguments are 2-D arrays — ``tell`` legitimately
    coerces 1-D convenience inputs itself.
    """
    samples = arguments["samples"]
    metrics = arguments["metrics"]
    if (
        isinstance(samples, np.ndarray)
        and isinstance(metrics, np.ndarray)
        and samples.ndim == 2
        and metrics.ndim == 2
        and samples.shape[0] != metrics.shape[0]
    ):
        return (
            f"told {metrics.shape[0]} metric rows for {samples.shape[0]} sizings"
        )
    return None


@dataclass
class IterationRecord:
    """One optimizer iteration, for diagnostics and tests."""

    evaluations: int
    radius: float
    best_score: float
    improved: bool


@dataclass
class SearchResult:
    """Outcome of one optimizer run (any strategy, not just trust-region)."""

    best_sizing: Dict[str, float]
    best_vector: np.ndarray
    best_metrics: Dict[str, float]
    best_score: float
    solved: bool
    evaluations: int
    history: List[IterationRecord] = field(default_factory=list)
    #: Wall time spent refitting a surrogate, for benchmark accounting
    #: (zero for surrogate-free optimizers).
    refit_seconds: float = 0.0

    def __repr__(self) -> str:
        status = "solved" if self.solved else "unsolved"
        return (
            f"SearchResult({status}, score={self.best_score:.4g}, "
            f"evaluations={self.evaluations})"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable summary (used by the ``repro.bench`` artifacts)."""
        return {
            "solved": bool(self.solved),
            "evaluations": int(self.evaluations),
            "iterations": len(self.history),
            "best_score": float(self.best_score),
            "best_sizing": {k: float(v) for k, v in self.best_sizing.items()},
            "best_metrics": {k: float(v) for k, v in self.best_metrics.items()},
            "refit_seconds": float(self.refit_seconds),
        }

    def state_dict(self) -> Dict[str, object]:
        """Full-fidelity state tree (unlike the rounding-free but summary
        :meth:`to_dict`) for campaign snapshots: plain builtins + arrays."""
        return {
            "best_sizing": dict(self.best_sizing),
            "best_vector": self.best_vector.copy(),
            "best_metrics": dict(self.best_metrics),
            "best_score": self.best_score,
            "solved": self.solved,
            "evaluations": self.evaluations,
            "history": [
                (r.evaluations, r.radius, r.best_score, r.improved)
                for r in self.history
            ],
            "refit_seconds": self.refit_seconds,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "SearchResult":
        """Rebuild a result from :meth:`state_dict` output, bit for bit."""
        return cls(
            best_sizing=dict(state["best_sizing"]),
            best_vector=np.asarray(state["best_vector"], dtype=np.float64).copy(),
            best_metrics=dict(state["best_metrics"]),
            best_score=state["best_score"],
            solved=state["solved"],
            evaluations=state["evaluations"],
            history=[IterationRecord(*record) for record in state["history"]],
            refit_seconds=state["refit_seconds"],
        )


@dataclass(frozen=True)
class Incumbent:
    """The best evaluated point so far: vector, raw metrics, score."""

    vector: np.ndarray
    metrics: np.ndarray
    score: float


class Optimizer(ABC):
    """The ask/tell protocol every search strategy implements.

    The contract:

    * ``ask()`` returns a ``(count, dim)`` array of *new* sizings — snapped
      to the design grid, not previously evaluated by this optimizer, and
      never exceeding the remaining evaluation budget.  An empty array means
      the optimizer has nothing left to propose (``is_done`` is then True).
    * ``tell(samples, metrics)`` must be called exactly once per non-empty
      ``ask()``, with the same rows ``ask`` returned and their true metrics.
    * ``is_done`` is True once the spec is met, the budget is exhausted, or
      the strategy has no further proposals.

    Concrete optimizers accept the shared constructor signature
    ``(evaluator, design_space, specification, config=None,
    initial_points=None)`` — ``evaluator`` may be ``None`` when a driver
    (e.g. :class:`~repro.search.campaign.Campaign`) owns evaluation — so the
    registry (:func:`get_optimizer`) can build any of them interchangeably.
    """

    design_space: DesignSpace
    specification: Specification

    @abstractmethod
    def ask(self) -> np.ndarray:
        """Next batch of new, grid-snapped sizings to evaluate."""

    @abstractmethod
    def tell(self, samples: np.ndarray, metrics: np.ndarray) -> None:
        """Feed back the true metrics for the rows of the last ``ask``."""

    @property
    @abstractmethod
    def is_done(self) -> bool:
        """True once another ``ask`` would serve no purpose."""

    @property
    @abstractmethod
    def best(self) -> Optional[Incumbent]:
        """The incumbent so far (``None`` before the first ``tell``)."""

    @abstractmethod
    def result(self) -> SearchResult:
        """Pack the final outcome of the run."""

    # -- batched-refit protocol (optional) -----------------------------
    #: How many surrogate refits this optimizer has started (zero for
    #: surrogate-free strategies, which never override the hooks below).
    refit_count: int = 0

    def set_refit_deferred(self, deferred: bool) -> None:
        """Ask the optimizer to queue refits instead of training inline.

        Drivers that can batch training across many optimizers (the
        campaign's ``refit_mode="batched"``) call this once after
        construction.  The default is a no-op: optimizers without a
        deferrable surrogate simply keep training inline (or not at all),
        and :meth:`take_refit_job` stays empty.
        """

    def take_refit_job(self):
        """Pop the pending deferred refit as a
        :class:`repro.nn.fused.FusedFitJob`, or ``None`` when this
        optimizer has nothing queued (no refit this round, or inline
        mode)."""
        return None


class DatasetOptimizer(Optimizer):
    """Shared dataset machinery for ask/tell optimizers.

    Maintains the evaluated-point dataset in amortized-doubling buffers —
    natural-unit rows, unit-cube rows, metrics, satisfaction scores and
    void-view dedup keys are appended in blocks, never rebuilt, and only new
    rows are scored; the incumbent is tracked incrementally.  Dedup runs as
    a single vectorized pass (``np.unique`` + ``np.isin`` over fixed-width
    void views), so no proposal is ever evaluated twice.

    Parameters
    ----------
    evaluator:
        Batch evaluator for standalone :meth:`run` use; ``None`` when a
        driver owns evaluation and only ``ask``/``tell`` are exercised.
    design_space:
        The gridded CSP domain.
    specification:
        The constraints to satisfy; its ``metric_names`` must match the
        evaluator's output columns.
    config:
        Hyper-parameters (a
        :class:`~repro.search.trust_region.TrustRegionConfig`); concrete
        optimizers document which fields they read.
    initial_points:
        Optional extra sizings (natural units) proposed ahead of the first
        sampled batch — used by the progressive PVT loop to warm-start later
        phases from the best sizing of an earlier phase.
    """

    def __init__(
        self,
        evaluator: Optional[BatchEvaluator],
        design_space: DesignSpace,
        specification: Specification,
        config=None,
        initial_points: Optional[np.ndarray] = None,
    ) -> None:
        # Imported here: trust_region defines the shared config dataclass
        # and imports this module for the protocol base classes.
        from repro.search.trust_region import TrustRegionConfig

        self.evaluator = evaluator
        self.design_space = design_space
        self.specification = specification
        self.config = config or TrustRegionConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self._initial_points = (
            np.atleast_2d(np.asarray(initial_points, dtype=np.float64))
            if initial_points is not None
            else None
        )
        dim = design_space.dimension
        self._key_dtype = np.dtype((np.void, dim * np.dtype(np.float64).itemsize))
        self._capacity = 0
        self._count = 0
        self._X = np.empty((0, dim))
        self._U = np.empty((0, dim))
        self._M = np.empty((0, len(specification.metric_names)))
        self._scores = np.empty(0)
        self._keys = np.empty(0, dtype=self._key_dtype)
        # Index of the incumbent (earliest row attaining the best score,
        # matching np.argmax tie-breaking on the full score array).
        self._best = -1
        self._history: List[IterationRecord] = []
        self._done = False
        #: Wall time spent in surrogate refits (stays zero for the
        #: surrogate-free baselines).
        self.refit_seconds: float = 0.0
        #: Surrogate refits started (inline or deferred), for the bench
        #: accounting; stays zero for the surrogate-free baselines.
        self.refit_count: int = 0

    # -- dataset hot path ----------------------------------------------
    @property
    def evaluations(self) -> int:
        return self._count

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._count + extra
        if needed <= self._capacity:
            return
        capacity = max(self._capacity, 64)
        while capacity < needed:
            capacity *= 2
        for name in ("_X", "_U", "_M", "_scores", "_keys"):
            old = getattr(self, name)
            shape = (capacity,) + old.shape[1:]
            grown = np.empty(shape, dtype=old.dtype)
            grown[: self._count] = old[: self._count]
            setattr(self, name, grown)
        self._capacity = capacity

    def _row_keys(self, block: np.ndarray) -> np.ndarray:
        """Fixed-width void view of each row, the vectorized dedup key."""
        return np.ascontiguousarray(block).view(self._key_dtype).ravel()

    def _select_new(
        self, candidates: np.ndarray, limit: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Snap, dedup and clamp a candidate block; return (rows, keys).

        Rows are keyed by a void view, first occurrences are kept in
        candidate order (``np.unique`` + index sort), membership against
        everything already evaluated is one ``np.isin`` pass, and at most
        ``limit`` fresh rows survive.  No evaluation happens here — this is
        the selection half of ``ask``.
        """
        snapped = self.design_space.snap(np.atleast_2d(candidates))
        keys = self._row_keys(snapped)
        _, first = np.unique(keys, return_index=True)
        first.sort()
        if self._count:
            first = first[~np.isin(keys[first], self._keys[: self._count])]
        if limit is not None:
            first = first[:limit]
        return snapped[first], keys[first]

    def _append(self, rows: np.ndarray, keys: np.ndarray, metrics: np.ndarray) -> None:
        """Append an evaluated block, scoring and ranking only the new rows."""
        added = rows.shape[0]
        self._ensure_capacity(added)
        start, stop = self._count, self._count + added
        self._X[start:stop] = rows
        self._U[start:stop] = self.design_space.to_unit(rows)
        self._M[start:stop] = metrics
        self._keys[start:stop] = keys
        scores = self.specification.score(metrics)
        self._scores[start:stop] = scores
        self._count = stop
        block_best = int(np.argmax(scores))
        if self._best < 0 or scores[block_best] > self._scores[self._best]:
            self._best = start + block_best

    def _evaluate_new(self, candidates: np.ndarray, limit: Optional[int] = None) -> int:
        """Select-evaluate-append in one step; returns how many rows ran.

        The standalone composition of :meth:`_select_new` and
        :meth:`_append` around the optimizer's own ``evaluator`` — the
        building block the pre-refactor monolithic loop was written in
        (and the parity oracle in the tests still is).
        """
        rows, keys = self._select_new(candidates, limit)
        if rows.shape[0] == 0:
            return 0
        metrics = np.atleast_2d(np.asarray(self.evaluator(rows), dtype=np.float64))
        self._append(rows, keys, metrics)
        return int(rows.shape[0])

    # -- protocol ------------------------------------------------------
    @property
    def is_done(self) -> bool:
        return self._done

    @property
    def best(self) -> Optional[Incumbent]:
        if self._best < 0:
            return None
        return Incumbent(
            vector=self._X[self._best].copy(),
            metrics=self._M[self._best].copy(),
            score=float(self._scores[self._best]),
        )

    def _budget_left(self) -> int:
        return max(int(self.config.max_evaluations) - self._count, 0)

    def _update_done(self) -> None:
        """Done once the incumbent is feasible or the budget is spent."""
        self._done = not (
            self._scores[self._best] < FEASIBLE_TOL
            and self._count < self.config.max_evaluations
        )

    def _empty_batch(self) -> np.ndarray:
        return np.empty((0, self.design_space.dimension))

    @contract(pre=tell_precondition)
    def tell(self, samples: np.ndarray, metrics: np.ndarray) -> None:
        """Default tell: append, refresh the incumbent, record history."""
        samples = np.atleast_2d(np.asarray(samples, dtype=np.float64))
        metrics = np.atleast_2d(np.asarray(metrics, dtype=np.float64))
        previous = self._scores[self._best] if self._best >= 0 else -np.inf
        self._append(samples, self._row_keys(samples), metrics)
        improved = self._scores[self._best] > previous + 1e-12
        self._update_done()
        self._history.append(
            IterationRecord(
                evaluations=self._count,
                radius=0.0,
                best_score=float(self._scores[self._best]),
                improved=bool(improved),
            )
        )

    def result(self) -> SearchResult:
        if self._best < 0:
            raise RuntimeError("no evaluations yet; call ask/tell (or run) first")
        best = self._best
        best_vector = self._X[best].copy()
        best_metrics = self._M[best].copy()
        return SearchResult(
            best_sizing=self.design_space.to_dict(best_vector),
            best_vector=best_vector,
            best_metrics={
                name: float(value)
                for name, value in zip(self.specification.metric_names, best_metrics)
            },
            best_score=float(self._scores[best]),
            solved=bool(self.specification.satisfied(best_metrics[np.newaxis, :])[0]),
            evaluations=self._count,
            history=self._history,
            refit_seconds=self.refit_seconds,
        )

    # -- checkpoint/resume ---------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Everything needed to resume this optimizer bit-identically.

        The dataset is stored as the natural-unit rows and raw metrics
        only: unit-cube rows, dedup keys, satisfaction scores and the
        incumbent index are *recomputed* on restore through the exact same
        elementwise code paths that produced them (``to_unit``,
        ``Specification.score``, ``np.argmax``), so they come back bit for
        bit without bloating the snapshot.
        """
        count = self._count
        return {
            "kind": type(self).__name__,
            "rng": self.rng.bit_generator.state,
            "X": self._X[:count].copy(),
            "M": self._M[:count].copy(),
            "history": [
                (r.evaluations, r.radius, r.best_score, r.improved)
                for r in self._history
            ],
            "done": self._done,
            "refit_seconds": self.refit_seconds,
            "refit_count": self.refit_count,
            "initial_points": (
                self._initial_points.copy()
                if self._initial_points is not None
                else None
            ),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore :meth:`state_dict` output into a freshly built optimizer.

        The optimizer must have been constructed with the same design
        space, specification and config as the one that produced the
        state; only the mutable search state is restored here.
        """
        if state["kind"] != type(self).__name__:
            raise ValueError(
                f"optimizer state is for {state['kind']!r}, "
                f"this optimizer is {type(self).__name__!r}"
            )
        self.rng.bit_generator.state = state["rng"]
        initial = state["initial_points"]
        self._initial_points = (
            np.asarray(initial, dtype=np.float64).copy() if initial is not None else None
        )
        dim = self.design_space.dimension
        self._capacity = 0
        self._count = 0
        self._X = np.empty((0, dim))
        self._U = np.empty((0, dim))
        self._M = np.empty((0, len(self.specification.metric_names)))
        self._scores = np.empty(0)
        self._keys = np.empty(0, dtype=self._key_dtype)
        self._best = -1
        rows = np.asarray(state["X"], dtype=np.float64)
        metrics = np.asarray(state["M"], dtype=np.float64)
        if rows.shape[0]:
            # One _append restores the derived buffers through the same
            # code (and the same argmax tie-breaking) that built them.
            self._append(np.atleast_2d(rows), self._row_keys(np.atleast_2d(rows)), np.atleast_2d(metrics))
        self._history = [IterationRecord(*record) for record in state["history"]]
        self._done = state["done"]
        self.refit_seconds = state["refit_seconds"]
        self.refit_count = int(state.get("refit_count", 0))

    def run(self) -> SearchResult:
        """Self-driving ask/tell loop over the optimizer's own evaluator."""
        if self.evaluator is None:
            raise ValueError(
                "this optimizer was built without an evaluator; drive it via "
                "ask/tell (e.g. through a Campaign) or pass one at construction"
            )
        while not self.is_done:
            rows = self.ask()
            if rows.shape[0] == 0:
                break
            metrics = np.atleast_2d(np.asarray(self.evaluator(rows), dtype=np.float64))
            self.tell(rows, metrics)
        return self.result()


class RandomSearch(DatasetOptimizer):
    """Pure Monte-Carlo baseline: uniform sampling of the gridded space.

    Reads ``seed``, ``initial_samples`` (first batch), ``batch_size`` (every
    later batch) and ``max_evaluations`` from the shared config.  Exists to
    calibrate how much the surrogate-guided trust region actually buys on a
    workload — and to prove the ask/tell protocol is not shaped around
    Algorithm 1.
    """

    #: Redraw attempts per ``ask`` when a batch fully collides with already
    #: evaluated grid points (tiny design spaces near exhaustion).
    MAX_REDRAWS = 8

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._asked = False

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["asked"] = self._asked
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self._asked = state["asked"]

    def ask(self) -> np.ndarray:
        if self._done:
            return self._empty_batch()
        limit = self._budget_left()
        for _ in range(self.MAX_REDRAWS):
            draw = self.config.batch_size if self._asked else self.config.initial_samples
            points = self.design_space.sample(self.rng, draw)
            if not self._asked and self._initial_points is not None:
                points = np.vstack([self._initial_points, points])
            self._asked = True
            rows, _ = self._select_new(points, limit=limit)
            if rows.shape[0]:
                return rows
        self._done = True
        return self._empty_batch()


class CrossEntropySearch(DatasetOptimizer):
    """(mu, lambda) cross-entropy baseline in the unit cube.

    Each generation samples ``lambda = 4 * batch_size`` candidates from an
    axis-aligned Gaussian in the unit cube, then refits the Gaussian on the
    ``mu = batch_size`` elite (best satisfaction score) of the generation
    with exponential smoothing.  The first generation is uniform (the same
    Monte-Carlo seeding the trust region uses, ``initial_samples`` draws),
    so the distribution starts where the data is.  A standard-deviation
    floor keeps late generations exploring instead of collapsing onto a
    point of the grid.
    """

    MAX_REDRAWS = 8
    #: Exponential smoothing toward the elite statistics.
    SMOOTHING = 0.7
    #: Per-axis standard-deviation floor in unit-cube coordinates.
    STD_FLOOR = 0.02

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._asked = False
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["asked"] = self._asked
        state["mean"] = self._mean.copy() if self._mean is not None else None
        state["std"] = self._std.copy() if self._std is not None else None
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self._asked = state["asked"]
        mean, std = state["mean"], state["std"]
        self._mean = mean.copy() if mean is not None else None
        self._std = std.copy() if std is not None else None

    def _draw(self) -> np.ndarray:
        if self._mean is None:
            return self.design_space.sample(
                self.rng, self.config.initial_samples if not self._asked else self._lambda()
            )
        unit = self._mean + self._std * self.rng.standard_normal(
            (self._lambda(), self.design_space.dimension)
        )
        return self.design_space.from_unit(np.clip(unit, 0.0, 1.0))

    def _lambda(self) -> int:
        return 4 * self.config.batch_size

    def ask(self) -> np.ndarray:
        if self._done:
            return self._empty_batch()
        limit = self._budget_left()
        for _ in range(self.MAX_REDRAWS):
            points = self._draw()
            if not self._asked and self._initial_points is not None:
                points = np.vstack([self._initial_points, points])
            self._asked = True
            rows, _ = self._select_new(points, limit=limit)
            if rows.shape[0]:
                return rows
        self._done = True
        return self._empty_batch()

    def tell(self, samples: np.ndarray, metrics: np.ndarray) -> None:
        start = self._count
        super().tell(samples, metrics)
        # Refit the sampling distribution on this generation's elite.
        units = self._U[start: self._count]
        scores = self._scores[start: self._count]
        mu = min(self.config.batch_size, units.shape[0])
        elite = units[np.argsort(-scores, kind="stable")[:mu]]
        mean = elite.mean(axis=0)
        std = np.maximum(elite.std(axis=0), self.STD_FLOOR)
        if self._mean is None:
            self._mean, self._std = mean, std
        else:
            alpha = self.SMOOTHING
            self._mean = alpha * mean + (1.0 - alpha) * self._mean
            self._std = alpha * std + (1.0 - alpha) * self._std


# ----------------------------------------------------------------------
# Optimizer registry (mirrors the topology registry): the benchmark
# harness and the Campaign build optimizers by name.

_OPTIMIZERS: Dict[str, Type[Optimizer]] = {}


def register_optimizer(name: str, cls: Type[Optimizer]) -> Type[Optimizer]:
    """Register an optimizer class under a stable name."""
    if not name:
        raise ValueError("optimizer name must be non-empty")
    if name in _OPTIMIZERS and _OPTIMIZERS[name] is not cls:
        raise ValueError(f"optimizer {name!r} already registered")
    _OPTIMIZERS[name] = cls
    return cls


def available_optimizers() -> Tuple[str, ...]:
    """Names of all registered optimizers, sorted."""
    return tuple(sorted(_OPTIMIZERS))


def get_optimizer(name: str) -> Type[Optimizer]:
    """Look up an optimizer class by registry name.

    Raises
    ------
    KeyError
        If the optimizer is unknown; the message lists the available names.
    """
    try:
        return _OPTIMIZERS[name]
    except KeyError:
        raise KeyError(
            f"unknown optimizer {name!r}; available: {', '.join(available_optimizers())}"
        ) from None


register_optimizer("random", RandomSearch)
register_optimizer("cross_entropy", CrossEntropySearch)
# "trust_region" registers itself in repro.search.trust_region (which
# imports this module for the protocol base classes).
