"""Cross-phase memoisation of true-evaluator results.

The progressive PVT loop re-touches the same sizings repeatedly: each phase
warm-starts from the previous phase's winner, every phase verifies its winner
over the full sign-off grid, and later phases re-verify sizings whose active
corners were already evaluated earlier.  :class:`EvaluationCache` sits between
the search stack and the corner evaluator and memoises every ``(sizing row,
corner)`` pair, so none of those repeats ever reaches the (comparatively
expensive) closed-form evaluator again.

Rows are keyed by their fixed-width float64 byte patterns — the same
bit-exact row identity the trust-region dedup builds its void views from.
The whole block is exported with a single ``tobytes`` and sliced per row
(NumPy void scalars stopped being hashable dict keys in NumPy 2), so the key
is exact — bit-level, no rounding — and cheap to build.

The cache is engine-agnostic: it wraps *any* corner evaluator with the
``(samples, corners) -> (n_corners, count, n_metrics)`` contract, whether the
stacked fast path or the looped parity oracle, and since both are
bit-identical the cache never changes a search trajectory — it only removes
repeat work.  It also keeps the benchmark accounting: ``eval_seconds`` is the
wall time actually spent inside the wrapped evaluator.

With ``persist_path`` the cache additionally mirrors every computed pair
into an append-only on-disk store (:class:`repro.resilience.store.CacheStore`)
and warm-starts from it on construction, so a later *process* — a resumed
campaign, a bench rerun, a future shard — serves the same pairs without
touching the engine.  Persisted values are the exact float64 buffers the
engine produced, so warm hits are bit-identical to recomputation and
trajectories stay unchanged; only the hit/miss accounting moves, which the
``warm_hits``/``cold_hits`` split makes visible.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.analysis.contracts import ArraySpec, SeqLen, contract
from repro.circuits.pvt import PVTCondition
from repro.obs import event, profiled
from repro.resilience.faults import fault_point, register_fault_site
from repro.resilience.store import CacheStore, read_records

#: A corner evaluator maps ``(count, dim)`` sizings and a corner list to a
#: ``(n_corners, count, n_metrics)`` metric block.
CornerEvaluator = Callable[[np.ndarray, Sequence[PVTCondition]], np.ndarray]

#: Kill-and-resume drill site: a crash inside the true evaluator loses the
#: whole in-flight block (nothing was cached or persisted yet).
SITE_ENGINE_CALL = register_fault_site("engine.call")

_EMPTY_KEYS: "frozenset[bytes]" = frozenset()


def _corner_tag(corner: PVTCondition) -> bytes:
    """Exact, parseable corner identity for the on-disk store.

    ``float.hex`` round-trips bit-for-bit, matching the canonical corner
    encoding :meth:`EvaluationCache.state_digest` hashes.
    """
    return (
        f"{corner.process}|{corner.voltage_factor.hex()}"
        f"|{corner.temperature_c.hex()}".encode("ascii")
    )


def _corner_from_tag(tag: bytes) -> PVTCondition:
    process, voltage, temperature = tag.decode("ascii").split("|")
    return PVTCondition(
        process=process,
        voltage_factor=float.fromhex(voltage),
        temperature_c=float.fromhex(temperature),
    )


class EvaluationCache:
    """Memoise ``(sizing row, corner)`` -> metric row across search phases.

    Parameters
    ----------
    corner_evaluator:
        The true evaluator to wrap (stacked or looped engine).
    dimension:
        Sizing-vector length, fixing the void-view key width.
    n_metrics:
        Metric columns per corner (the evaluator's last axis).
    persist_path:
        Optional on-disk store file.  When given, the cache preloads every
        record the store holds (repairing a torn tail from a crashed
        writer, see :class:`~repro.resilience.store.CacheStore`) and
        appends every newly computed pair, so hits survive the process.
    preload_paths:
        Extra store files to warm-load **read-only** — no write handle is
        taken and no torn tail is repaired, so another process may still
        own them.  The sharded executor points every worker's cache at the
        shared master store this way while the worker appends its own
        fresh pairs to a private per-shard file.

    Attributes
    ----------
    hits, misses:
        Per ``(row, corner)`` pair counters: ``hits`` were served from the
        cache, ``misses`` went to the true evaluator.
    warm_hits, cold_hits:
        Split of ``hits``: warm hits were served from pairs preloaded off
        the persistent store (another process computed them), cold hits
        from pairs this cache computed itself.  Without ``persist_path``
        every hit is cold.
    engine_calls:
        Invocations of the wrapped evaluator — the multi-seed Campaign
        batches many seeds' requests into fewer, larger calls, and this is
        the counter that shows it.
    eval_seconds:
        Cumulative wall time inside the wrapped evaluator.
    preloaded_pairs, repaired_bytes:
        Persistence diagnostics: pairs warm-loaded at construction, and
        bytes a torn-tail repair truncated off the store on open.
    """

    def __init__(
        self,
        corner_evaluator: CornerEvaluator,
        dimension: int,
        n_metrics: int,
        persist_path: Optional[str] = None,
        preload_paths: Sequence[str] = (),
    ) -> None:
        self._evaluate = corner_evaluator
        self._key_width = int(dimension) * np.dtype(np.float64).itemsize
        self.n_metrics = int(n_metrics)
        # One row-key -> metric-row dict per corner.  Keyed by the (frozen,
        # hashable) PVTCondition itself, not its display name — the name
        # rounds voltage/temperature for printing, so two distinct corners
        # can share it.
        self._store: Dict[PVTCondition, Dict[bytes, np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        self.warm_hits = 0
        self.cold_hits = 0
        self.engine_calls = 0
        self.eval_seconds = 0.0
        self.preloaded_pairs = 0
        self.repaired_bytes = 0
        # Pairs that came off the persistent store rather than this
        # process's own engine calls, for the warm/cold hit split.
        self._warm: Dict[PVTCondition, Set[bytes]] = {}
        self._backend: Optional[CacheStore] = None
        if persist_path is not None:
            self._backend = CacheStore(persist_path, int(dimension), self.n_metrics)
            self.repaired_bytes = self._backend.repaired_bytes
            self._ingest(self._backend.records)
        for path in preload_paths:
            records, _trailing = read_records(path, int(dimension), self.n_metrics)
            self._ingest(records)
        if persist_path is not None or preload_paths:
            self.preloaded_pairs = len(self)
            event(
                "eval_cache.warm_load",
                path=persist_path,
                preloads=len(preload_paths),
                pairs=self.preloaded_pairs,
                repaired_bytes=self.repaired_bytes,
            )

    def _ingest(
        self, records: Sequence[Tuple[bytes, bytes, np.ndarray]]
    ) -> None:
        """Warm-load ``(tag, key, row)`` store records, in record order."""
        corners_by_tag: Dict[bytes, PVTCondition] = {}
        for tag, key, row in records:
            corner = corners_by_tag.get(tag)
            if corner is None:
                corner = corners_by_tag.setdefault(tag, _corner_from_tag(tag))
            self._store.setdefault(corner, {})[key] = row
            self._warm.setdefault(corner, set()).add(key)

    def __len__(self) -> int:
        """Total number of cached ``(row, corner)`` pairs."""
        return sum(len(store) for store in self._store.values())

    def _row_keys(self, samples: np.ndarray) -> List[bytes]:
        """Bit-exact per-row keys: one buffer export, sliced fixed-width."""
        data = np.ascontiguousarray(samples).tobytes()
        width = self._key_width
        return [data[i * width : (i + 1) * width] for i in range(samples.shape[0])]

    def fresh_row_count(self, samples: np.ndarray, corners: Sequence[PVTCondition]) -> int:
        """How many rows :meth:`evaluate` would send to the engine right now.

        A pure peek — no store is created or mutated, no counter moves —
        used by the multi-seed Campaign to attribute a shared stacked
        pass's misses to the member that caused them *before* the pass
        itself updates the cache.
        """
        samples = np.atleast_2d(np.asarray(samples, dtype=np.float64))
        keys = self._row_keys(samples)
        stores = [self._store.get(corner) for corner in corners]
        if any(store is None for store in stores):
            return samples.shape[0]
        return sum(1 for key in keys if any(key not in store for store in stores))

    @contract(
        args={"corners": SeqLen("c")},
        returns=ArraySpec("c", None, None),
    )
    def evaluate(
        self, samples: np.ndarray, corners: Sequence[PVTCondition]
    ) -> np.ndarray:
        """Metrics block ``(n_corners, count, n_metrics)``, memoised.

        A row already cached at *every* requested corner is served entirely
        from memory; all other rows go to the wrapped evaluator in a single
        stacked call covering all requested corners at once (recomputing a
        corner that was cached for such a row costs nothing extra in the
        broadcast and returns bit-identical values).

        The returned block — and every metric row retained in the cache —
        is **read-only** (``writeable=False``): a caller mutating a result
        in place would otherwise silently corrupt the shared cache (results
        alias cached rows), so the mutation faults at its own line instead.
        """
        samples = np.atleast_2d(np.asarray(samples, dtype=np.float64))
        corners = list(corners)
        if not corners:
            raise ValueError("evaluate needs at least one PVT corner")
        count = samples.shape[0]
        keys = self._row_keys(samples)
        stores = [self._store.setdefault(corner, {}) for corner in corners]

        # A row counts as fresh unless *every* requested corner has it; fresh
        # rows are (re)computed at all corners, so each of their pairs is a
        # miss, and each pair of a fully-cached row is a hit.
        fresh = [
            i
            for i in range(count)
            if any(keys[i] not in store for store in stores)
        ]
        fresh_set = set(fresh)
        hits = (count - len(fresh)) * len(corners)
        misses = len(fresh) * len(corners)
        self.hits += hits
        self.misses += misses
        if hits:
            self._split_hits(keys, corners, fresh_set, hits)
        event(
            "eval_cache.evaluate",
            rows=count,
            corners=len(corners),
            hits=hits,
            misses=misses,
        )

        out = np.empty((len(corners), count, self.n_metrics), dtype=np.float64)
        if fresh:
            self.engine_calls += 1
            fault_point(SITE_ENGINE_CALL)
            with profiled(
                "eval_cache.engine", rows=len(fresh), corners=len(corners)
            ) as timer:
                block = np.asarray(
                    self._evaluate(samples[fresh], corners), dtype=np.float64
                )
            self.eval_seconds += timer.seconds
            out[:, fresh, :] = block
            # The stored metric rows are views into this block; freezing it
            # makes every cached row immutable for the cache's lifetime.
            block.flags.writeable = False
            for corner_index, store in enumerate(stores):
                for block_index, row_index in enumerate(fresh):
                    store[keys[row_index]] = block[corner_index, block_index]
            if self._backend is not None:
                self._persist(keys, corners, fresh, block)
        for row_index in range(count):
            if row_index in fresh_set:
                continue
            for corner_index, store in enumerate(stores):
                out[corner_index, row_index] = store[keys[row_index]]
        out.flags.writeable = False
        return out

    def _split_hits(
        self,
        keys: List[bytes],
        corners: Sequence[PVTCondition],
        fresh_set: Set[int],
        hits: int,
    ) -> None:
        """Attribute served hits to the warm (preloaded) or cold pool."""
        if not self._warm:
            self.cold_hits += hits
            return
        warm = 0
        for row_index in range(len(keys)):
            if row_index in fresh_set:
                continue
            key = keys[row_index]
            for corner in corners:
                if key in self._warm.get(corner, _EMPTY_KEYS):
                    warm += 1
        self.warm_hits += warm
        self.cold_hits += hits - warm

    def _persist(
        self,
        keys: List[bytes],
        corners: Sequence[PVTCondition],
        fresh: List[int],
        block: np.ndarray,
    ) -> None:
        """Append this engine call's pairs to the on-disk store.

        A fresh row is recomputed at *all* requested corners, so a pair
        already on disk (cached at one corner, missing at another) can be
        re-appended; the loader replays records in order, so the duplicate
        is harmless — same key, bit-identical value.
        """
        backend = self._backend
        for corner_index, corner in enumerate(corners):
            tag = _corner_tag(corner)
            for block_index, row_index in enumerate(fresh):
                backend.append(tag, keys[row_index], block[corner_index, block_index])
        backend.flush()

    def close(self) -> None:
        """Flush and close the persistent store (no-op without one)."""
        if self._backend is not None:
            self._backend.close()

    # -- checkpoint/resume ---------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Content and counters, for campaign snapshots.

        Corners serialize as their exact field tuples; per corner the keys
        are kept in insertion order next to a stacked metric matrix, so
        restore rebuilds not just equal content but the same iteration
        order the interrupted run had.
        """
        content = []
        for corner, store in self._store.items():
            corner_keys = list(store)
            # analysis: allow(hot-loop-alloc) snapshot serialization is cold
            matrix = np.stack([store[key] for key in corner_keys]) if corner_keys else np.empty((0, self.n_metrics))
            content.append(
                (
                    (corner.process, corner.voltage_factor, corner.temperature_c),
                    corner_keys,
                    matrix,
                )
            )
        return {
            "counters": {
                "hits": self.hits,
                "misses": self.misses,
                "warm_hits": self.warm_hits,
                "cold_hits": self.cold_hits,
                "engine_calls": self.engine_calls,
                "eval_seconds": self.eval_seconds,
            },
            "content": content,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a snapshot, *replacing* the current content.

        Replacement (not merge) is what makes a resumed campaign
        bit-identical to the uninterrupted oracle including its hit/miss
        accounting: the cache holds exactly what it held at the snapshot
        round, even when the persistent store already has pairs the
        interrupted run computed afterwards (those are simply recomputed —
        to identical values — and re-appended).  The warm/cold split is
        re-intersected against the restored content so the split's
        invariant (warm keys are a subset of stored keys) survives.
        """
        counters = state["counters"]
        self.hits = counters["hits"]
        self.misses = counters["misses"]
        self.warm_hits = counters["warm_hits"]
        self.cold_hits = counters["cold_hits"]
        self.engine_calls = counters["engine_calls"]
        self.eval_seconds = counters["eval_seconds"]
        self._store = {}
        for fields, corner_keys, matrix in state["content"]:
            corner = PVTCondition(
                process=fields[0], voltage_factor=fields[1], temperature_c=fields[2]
            )
            # analysis: allow(hot-loop-alloc) snapshot restore is cold
            block = np.asarray(matrix, dtype=np.float64)
            block.flags.writeable = False
            store: Dict[bytes, np.ndarray] = {}
            for index, key in enumerate(corner_keys):
                store[key] = block[index]
            self._store[corner] = store
        self._warm = {
            corner: {key for key in warm_keys if key in self._store.get(corner, ())}
            for corner, warm_keys in self._warm.items()
        }

    def state_digest(self) -> str:
        """SHA-256 over the full cache content, bit for bit.

        Every ``(corner, row-key, metric-row)`` triple enters the hash in a
        canonical order (corners by their exact field values, rows by key
        bytes), so two caches digest equal **iff** they hold bit-identical
        results for bit-identical sizings at identical corners — the
        determinism auditor's cache comparison.
        """
        digest = hashlib.sha256()
        corner_order = sorted(
            self._store,
            key=lambda corner: (
                corner.process,
                corner.voltage_factor.hex(),
                corner.temperature_c.hex(),
            ),
        )
        for corner in corner_order:
            digest.update(
                f"{corner.process}|{corner.voltage_factor.hex()}"
                f"|{corner.temperature_c.hex()}".encode("ascii")
            )
            store = self._store[corner]
            for key in sorted(store):
                digest.update(key)
                digest.update(store[key].tobytes())
        return digest.hexdigest()
