"""Cross-phase memoisation of true-evaluator results.

The progressive PVT loop re-touches the same sizings repeatedly: each phase
warm-starts from the previous phase's winner, every phase verifies its winner
over the full sign-off grid, and later phases re-verify sizings whose active
corners were already evaluated earlier.  :class:`EvaluationCache` sits between
the search stack and the corner evaluator and memoises every ``(sizing row,
corner)`` pair, so none of those repeats ever reaches the (comparatively
expensive) closed-form evaluator again.

Rows are keyed by their fixed-width float64 byte patterns — the same
bit-exact row identity the trust-region dedup builds its void views from.
The whole block is exported with a single ``tobytes`` and sliced per row
(NumPy void scalars stopped being hashable dict keys in NumPy 2), so the key
is exact — bit-level, no rounding — and cheap to build.

The cache is engine-agnostic: it wraps *any* corner evaluator with the
``(samples, corners) -> (n_corners, count, n_metrics)`` contract, whether the
stacked fast path or the looped parity oracle, and since both are
bit-identical the cache never changes a search trajectory — it only removes
repeat work.  It also keeps the benchmark accounting: ``eval_seconds`` is the
wall time actually spent inside the wrapped evaluator.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.analysis.contracts import ArraySpec, SeqLen, contract
from repro.circuits.pvt import PVTCondition
from repro.obs import event, profiled

#: A corner evaluator maps ``(count, dim)`` sizings and a corner list to a
#: ``(n_corners, count, n_metrics)`` metric block.
CornerEvaluator = Callable[[np.ndarray, Sequence[PVTCondition]], np.ndarray]


class EvaluationCache:
    """Memoise ``(sizing row, corner)`` -> metric row across search phases.

    Parameters
    ----------
    corner_evaluator:
        The true evaluator to wrap (stacked or looped engine).
    dimension:
        Sizing-vector length, fixing the void-view key width.
    n_metrics:
        Metric columns per corner (the evaluator's last axis).

    Attributes
    ----------
    hits, misses:
        Per ``(row, corner)`` pair counters: ``hits`` were served from the
        cache, ``misses`` went to the true evaluator.
    engine_calls:
        Invocations of the wrapped evaluator — the multi-seed Campaign
        batches many seeds' requests into fewer, larger calls, and this is
        the counter that shows it.
    eval_seconds:
        Cumulative wall time inside the wrapped evaluator.
    """

    def __init__(
        self, corner_evaluator: CornerEvaluator, dimension: int, n_metrics: int
    ) -> None:
        self._evaluate = corner_evaluator
        self._key_width = int(dimension) * np.dtype(np.float64).itemsize
        self.n_metrics = int(n_metrics)
        # One row-key -> metric-row dict per corner.  Keyed by the (frozen,
        # hashable) PVTCondition itself, not its display name — the name
        # rounds voltage/temperature for printing, so two distinct corners
        # can share it.
        self._store: Dict[PVTCondition, Dict[bytes, np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        self.engine_calls = 0
        self.eval_seconds = 0.0

    def __len__(self) -> int:
        """Total number of cached ``(row, corner)`` pairs."""
        return sum(len(store) for store in self._store.values())

    def _row_keys(self, samples: np.ndarray) -> List[bytes]:
        """Bit-exact per-row keys: one buffer export, sliced fixed-width."""
        data = np.ascontiguousarray(samples).tobytes()
        width = self._key_width
        return [data[i * width : (i + 1) * width] for i in range(samples.shape[0])]

    def fresh_row_count(self, samples: np.ndarray, corners: Sequence[PVTCondition]) -> int:
        """How many rows :meth:`evaluate` would send to the engine right now.

        A pure peek — no store is created or mutated, no counter moves —
        used by the multi-seed Campaign to attribute a shared stacked
        pass's misses to the member that caused them *before* the pass
        itself updates the cache.
        """
        samples = np.atleast_2d(np.asarray(samples, dtype=np.float64))
        keys = self._row_keys(samples)
        stores = [self._store.get(corner) for corner in corners]
        if any(store is None for store in stores):
            return samples.shape[0]
        return sum(1 for key in keys if any(key not in store for store in stores))

    @contract(
        args={"corners": SeqLen("c")},
        returns=ArraySpec("c", None, None),
    )
    def evaluate(
        self, samples: np.ndarray, corners: Sequence[PVTCondition]
    ) -> np.ndarray:
        """Metrics block ``(n_corners, count, n_metrics)``, memoised.

        A row already cached at *every* requested corner is served entirely
        from memory; all other rows go to the wrapped evaluator in a single
        stacked call covering all requested corners at once (recomputing a
        corner that was cached for such a row costs nothing extra in the
        broadcast and returns bit-identical values).

        The returned block — and every metric row retained in the cache —
        is **read-only** (``writeable=False``): a caller mutating a result
        in place would otherwise silently corrupt the shared cache (results
        alias cached rows), so the mutation faults at its own line instead.
        """
        samples = np.atleast_2d(np.asarray(samples, dtype=np.float64))
        corners = list(corners)
        if not corners:
            raise ValueError("evaluate needs at least one PVT corner")
        count = samples.shape[0]
        keys = self._row_keys(samples)
        stores = [self._store.setdefault(corner, {}) for corner in corners]

        # A row counts as fresh unless *every* requested corner has it; fresh
        # rows are (re)computed at all corners, so each of their pairs is a
        # miss, and each pair of a fully-cached row is a hit.
        fresh = [
            i
            for i in range(count)
            if any(keys[i] not in store for store in stores)
        ]
        hits = (count - len(fresh)) * len(corners)
        misses = len(fresh) * len(corners)
        self.hits += hits
        self.misses += misses
        event(
            "eval_cache.evaluate",
            rows=count,
            corners=len(corners),
            hits=hits,
            misses=misses,
        )

        out = np.empty((len(corners), count, self.n_metrics), dtype=np.float64)
        if fresh:
            self.engine_calls += 1
            with profiled(
                "eval_cache.engine", rows=len(fresh), corners=len(corners)
            ) as timer:
                block = np.asarray(
                    self._evaluate(samples[fresh], corners), dtype=np.float64
                )
            self.eval_seconds += timer.seconds
            out[:, fresh, :] = block
            # The stored metric rows are views into this block; freezing it
            # makes every cached row immutable for the cache's lifetime.
            block.flags.writeable = False
            for corner_index, store in enumerate(stores):
                for block_index, row_index in enumerate(fresh):
                    store[keys[row_index]] = block[corner_index, block_index]
        fresh_set = set(fresh)
        for row_index in range(count):
            if row_index in fresh_set:
                continue
            for corner_index, store in enumerate(stores):
                out[corner_index, row_index] = store[keys[row_index]]
        out.flags.writeable = False
        return out

    def state_digest(self) -> str:
        """SHA-256 over the full cache content, bit for bit.

        Every ``(corner, row-key, metric-row)`` triple enters the hash in a
        canonical order (corners by their exact field values, rows by key
        bytes), so two caches digest equal **iff** they hold bit-identical
        results for bit-identical sizings at identical corners — the
        determinism auditor's cache comparison.
        """
        digest = hashlib.sha256()
        corner_order = sorted(
            self._store,
            key=lambda corner: (
                corner.process,
                corner.voltage_factor.hex(),
                corner.temperature_c.hex(),
            ),
        )
        for corner in corner_order:
            digest.update(
                f"{corner.process}|{corner.voltage_factor.hex()}"
                f"|{corner.temperature_c.hex()}".encode("ascii")
            )
            store = self._store[corner]
            for key in sorted(store):
                digest.update(key)
                digest.update(store[key].tobytes())
        return digest.hexdigest()
