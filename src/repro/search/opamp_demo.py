"""End-to-end demo: size the two-stage Miller opamp under PVT corners.

This wires the pieces of the reproduction together — the topology registry,
the CSP specification, the trust-region agent and the progressive PVT loop —
into the paper's headline experiment.  The default spec (the ``nominal``
tier of :class:`~repro.circuits.topologies.two_stage.TwoStageOpAmp`) is
calibrated so uniform Monte-Carlo sampling satisfies it roughly once per
5000 samples at the hardest corner: hard enough that guided search matters,
small enough for a CI smoke test.

Since the topology-zoo refactor the demo is a thin wrapper over
:func:`repro.search.sizing.size_problem`; any other registered topology runs
through the exact same path (see ``python -m repro.bench``).

Run it directly::

    PYTHONPATH=src python -m repro.search.opamp_demo
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.circuits.opamp import METRIC_NAMES, TwoStageOpAmp
from repro.circuits.pvt import NOMINAL, PVTCondition
from repro.search.progressive import ProgressiveResult
from repro.search.sizing import size_problem
from repro.search.spec import Spec, Specification
from repro.search.trust_region import TrustRegionConfig

#: Demo target: a 50 MHz, 80 dB, 60-degree-margin amplifier in under 300 uW,
#: met at every sign-off corner (the topology's ``nominal`` spec tier).
DEFAULT_SPECS = TwoStageOpAmp(condition=NOMINAL).default_specs()["nominal"]


def size_two_stage_opamp(
    technology: str = "bsim45",
    load_cap: float = 2e-12,
    specs: Sequence[Spec] = DEFAULT_SPECS,
    corners: Optional[Sequence[PVTCondition]] = None,
    config: Optional[TrustRegionConfig] = None,
    seed: Optional[int] = None,
    backend: Optional[str] = None,
) -> ProgressiveResult:
    """Run the progressive trust-region sizing search for the opamp.

    ``seed`` and ``config`` can no longer disagree: an explicit ``seed``
    overrides ``config.seed`` (previously it was silently ignored), and
    ``seed=None`` defers to the config.  ``backend`` follows the same rule
    for the surrogate training backend.
    """
    return size_problem(
        "two_stage_opamp",
        technology=technology,
        load_cap=load_cap,
        specs=specs,
        corners=corners,
        config=config,
        seed=seed,
        backend=backend,
    )


def main() -> None:  # pragma: no cover - exercised manually / by README
    result = size_two_stage_opamp()
    specification = Specification(DEFAULT_SPECS, METRIC_NAMES)
    print(f"evaluations: {result.evaluations}")
    print(f"all corners pass: {result.solved_all_corners}")
    print("sizing:")
    for name, value in result.best_sizing.items():
        print(f"  {name} = {value:.4g}")
    for report in result.corner_reports:
        status = "PASS" if report.satisfied else "FAIL"
        print(f"corner {report.condition.name}: {status}")
        print(specification.report([report.metrics[name] for name in METRIC_NAMES]))


if __name__ == "__main__":
    main()
