"""End-to-end demo: size the two-stage Miller opamp under PVT corners.

This wires the pieces of the reproduction together — the analytical opamp
evaluator, the CSP specification, the trust-region agent and the progressive
PVT loop — into the paper's headline experiment.  The default spec is
calibrated so uniform Monte-Carlo sampling satisfies it roughly once per
5000 samples at the hardest corner: hard enough that guided search matters,
small enough for a CI smoke test.

Run it directly::

    PYTHONPATH=src python -m repro.search.opamp_demo
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.circuits.opamp import METRIC_NAMES, TwoStageOpAmp
from repro.circuits.pvt import PVTCondition
from repro.search.progressive import ProgressiveResult, progressive_pvt_search
from repro.search.spec import Spec, Specification
from repro.search.trust_region import TrustRegionConfig

#: Demo target: a 50 MHz, 80 dB, 60-degree-margin amplifier in under 300 uW,
#: met at every sign-off corner.
DEFAULT_SPECS = (
    Spec("dc_gain_db", ">=", 80.0),
    Spec("ugbw_hz", ">=", 50e6),
    Spec("phase_margin_deg", ">=", 60.0),
    Spec("power_w", "<=", 300e-6),
    Spec("slew_v_per_s", ">=", 20e6),
)


def size_two_stage_opamp(
    technology: str = "bsim45",
    load_cap: float = 2e-12,
    specs: Sequence[Spec] = DEFAULT_SPECS,
    corners: Optional[Sequence[PVTCondition]] = None,
    config: Optional[TrustRegionConfig] = None,
    seed: int = 0,
) -> ProgressiveResult:
    """Run the progressive trust-region sizing search for the opamp."""
    if config is None:
        config = TrustRegionConfig(seed=seed)

    def factory(condition: PVTCondition):
        return TwoStageOpAmp(technology, condition, load_cap).evaluate_batch

    design_space = TwoStageOpAmp(technology, load_cap=load_cap).design_space()
    return progressive_pvt_search(
        evaluator_factory=factory,
        design_space=design_space,
        specs=specs,
        metric_names=METRIC_NAMES,
        corners=corners,
        config=config,
    )


def main() -> None:  # pragma: no cover - exercised manually / by README
    result = size_two_stage_opamp()
    specification = Specification(DEFAULT_SPECS, METRIC_NAMES)
    print(f"evaluations: {result.evaluations}")
    print(f"all corners pass: {result.solved_all_corners}")
    print("sizing:")
    for name, value in result.best_sizing.items():
        print(f"  {name} = {value:.4g}")
    for report in result.corner_reports:
        status = "PASS" if report.satisfied else "FAIL"
        print(f"corner {report.condition.name}: {status}")
        print(specification.report([report.metrics[name] for name in METRIC_NAMES]))


if __name__ == "__main__":
    main()
