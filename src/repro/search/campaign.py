"""The Campaign driver: evaluation ownership for ask/tell optimizers.

The ask/tell redesign splits the search stack into two halves.  Optimizers
(:mod:`repro.search.optimizer`) own the *proposal* side — what to evaluate
next.  The :class:`Campaign` owns the *evaluation* side:

* the true corner evaluator (a topology's
  :meth:`~repro.circuits.topologies.base.SizingProblem.evaluate_corners`
  or the looped per-corner parity oracle), wrapped in the cross-phase
  :class:`~repro.search.eval_cache.EvaluationCache`;
* budget and wall-time accounting (``eval_seconds``, engine calls, cache
  hits/misses);
* the progressive PVT corner-hardening schedule of Section IV-E, run as a
  per-seed state machine (size at the hardest corner, verify over the full
  grid, fold failing corners back in);
* **multi-seed vectorized execution**: each round the Campaign gathers the
  pending ``ask`` batches of every live seed, groups them by corner set,
  stacks each group into a single :func:`evaluate_corners` tensor pass,
  and scatters the ``tell``\\ s back.  Per ``(row, corner)`` pair the
  stacked evaluator is bit-identical however the pass is batched, so
  trajectories never depend on how many seeds share a round — the
  multi-seed path is bit-exact versus running the seeds sequentially
  (locked by tests) and computes no extra ``(row, corner)`` pairs; it just
  issues far fewer, larger evaluator calls.

:func:`repro.search.progressive.progressive_pvt_search` and
:func:`repro.search.sizing.size_problem` are thin compatibility layers over
a single-seed Campaign and reproduce the pre-redesign behaviour bit-exactly
at a fixed seed/config.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.contracts import ArraySpec, contract
from repro.circuits.pvt import PVTCondition, nine_corner_grid, rank_by_severity
from repro.core.design_space import DesignSpace
from repro.nn.fused import FusedFitJob, fit_batched, fit_job_signature
from repro.obs import event, profiled
from repro.resilience.faults import fault_point, register_fault_site
from repro.resilience.snapshot import load_snapshot, save_snapshot
from repro.search.eval_cache import CornerEvaluator, EvaluationCache
from repro.search.optimizer import Optimizer, SearchResult, get_optimizer
from repro.search.progressive import (
    CornerReport,
    EvaluatorFactory,
    ProgressiveConfig,
    ProgressiveResult,
    _as_progressive_config,
    _looped_corner_evaluator,
    _stacked_specification,
)
from repro.search.spec import Spec, Specification
from repro.search.trust_region import TrustRegionConfig

#: Kill-and-resume drill site: dying *before* the atomic snapshot write
#: leaves the previous round's snapshot intact (that, not a half-written
#: file, is the worst case the atomic writer permits).
SITE_SNAPSHOT_WRITE = register_fault_site("snapshot.write")

#: Snapshot filename the resume path looks for in a checkpoint directory.
LATEST_SNAPSHOT = "latest.snapshot"


@dataclass(frozen=True)
class EvaluationHandle:
    """Everything a :class:`Campaign` needs to evaluate one workload.

    Produced by
    :meth:`~repro.circuits.topologies.base.SizingProblem.evaluation_handle`;
    tests and third-party problems can also build one directly around any
    pair of evaluators honouring the corner-tensor contract.

    Attributes
    ----------
    design_space:
        The gridded CSP domain shared by every optimizer of the campaign.
    metric_names:
        Single-corner metric layout (columns of the evaluator output).
    corner_evaluator:
        Vectorized ``(samples, corners) -> (n_corners, count, n_metrics)``
        stacked evaluator, or ``None`` when only the looped path exists.
    evaluator_factory:
        Per-corner batch-evaluator factory — the looped parity oracle (and
        the fallback when ``corner_evaluator`` is ``None``).
    """

    design_space: DesignSpace
    metric_names: Tuple[str, ...]
    corner_evaluator: Optional[CornerEvaluator] = None
    evaluator_factory: Optional[EvaluatorFactory] = None


@dataclass
class CampaignResult:
    """Outcome of a (possibly multi-seed) campaign, plus eval accounting."""

    #: One :class:`ProgressiveResult` per seed, in ``seeds`` order.
    results: List[ProgressiveResult]
    seeds: List[int]
    #: Number of lockstep evaluation rounds the campaign ran.
    rounds: int
    #: Invocations of the wrapped corner evaluator (the "fewer, larger
    #: calls" the multi-seed tensor batching is about).
    engine_calls: int
    #: Wall time inside the true corner evaluator, campaign-wide.
    eval_seconds: float
    #: Cross-phase evaluation-cache counters, per ``(row, corner)`` pair.
    cache_hits: int
    cache_misses: int
    #: Round the campaign resumed from (``None`` for an uninterrupted run).
    #: ``rounds`` still counts from the resumed round, matching the oracle.
    resumed_from_round: Optional[int] = None
    #: Lockstep rounds in which at least one surrogate refit ran (either
    #: dispatch mode; the deterministic denominator of the refit speedup).
    refit_rounds: int = 0
    #: Stacked multi-seed training dispatches (zero under
    #: ``refit_mode="sequential"``; single-job refits don't count).
    batched_kernel_calls: int = 0
    #: The refit dispatch mode the campaign ran with.
    refit_mode: str = "batched"

    @property
    def solved_fraction(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.solved_all_corners for r in self.results) / len(self.results)


def _receive_precondition(arguments) -> Optional[str]:
    """Contract: a received metric block must match the member's last request.

    A precondition (not a return check) because ``receive`` consumes
    ``_pending_rows`` while running — the expected shape must be read before
    the call body executes.
    """
    member = arguments["self"]
    block = arguments["block"]
    if member._state == "search":
        if member._pending_rows is None:
            return "receive() without a pending search request"
        expected = (
            len(member.active),
            member._pending_rows.shape[0],
            len(member.metric_names),
        )
    else:
        expected = (len(member.ranked), 1, len(member.metric_names))
    if block.shape != expected:
        return f"metric block shape {block.shape}, expected {expected}"
    return None


class _ProgressiveMember:
    """One seed's progressive corner-hardening search, as a state machine.

    Mirrors the historical sequential loop exactly — phase optimizer at the
    active corner set, full-grid verification of the phase winner, fold the
    worst new failing corner, repeat — but exposes it one evaluation request
    at a time so the Campaign can batch requests across seeds.
    """

    def __init__(
        self,
        seed: int,
        design_space: DesignSpace,
        specs: Sequence[Spec],
        metric_names: Sequence[str],
        ranked: Sequence[PVTCondition],
        trust_config: TrustRegionConfig,
        optimizer_name: str,
        max_phases: int,
        refit_deferred: bool = False,
    ) -> None:
        self.seed = seed
        self.design_space = design_space
        self.specs = list(specs)
        self.metric_names = list(metric_names)
        self.ranked = list(ranked)
        self.config = (
            replace(trust_config, seed=seed) if trust_config.seed != seed else trust_config
        )
        self.optimizer_name = optimizer_name
        self.optimizer_cls = get_optimizer(optimizer_name)
        self.max_phases = max_phases
        self._refit_deferred = refit_deferred
        # Per-seed evaluation accounting, attributed by the Campaign: exact
        # cache-counter deltas for this member's own requests, plus its
        # share of any multi-seed stacked pass (see Campaign._run_group).
        self.eval_seconds = 0.0
        self.cache_hits = 0
        self.cache_misses = 0
        self.engine_calls = 0
        self._single_spec = Specification(self.specs, self.metric_names)

        self.active: List[PVTCondition] = [self.ranked[0]]
        self.phase = 0
        self.total_evaluations = 0
        self.phase_results: List = []
        self.corner_reports: List[CornerReport] = []
        self.solved_all = False
        self.finished = False
        self.warm_start: Optional[np.ndarray] = None
        self.best_vector: Optional[np.ndarray] = None
        self._state = "search"
        self._pending_rows: Optional[np.ndarray] = None
        self.optimizer = self._build_optimizer()

    def _build_optimizer(self) -> Optimizer:
        specification = _stacked_specification(
            self.specs, self.metric_names, self.active
        )
        # dataclasses.replace keeps working if the config ever gains
        # non-init or derived fields, where reconstructing from __dict__
        # would silently break.
        phase_config = replace(self.config, seed=self.config.seed + self.phase)
        optimizer = self.optimizer_cls(
            None,
            self.design_space,
            specification,
            config=phase_config,
            initial_points=self.warm_start,
        )
        # Under refit_mode="batched" the optimizer queues its refits for
        # the campaign's round-level stacked dispatch (a no-op for
        # strategies without a deferrable surrogate).
        optimizer.set_refit_deferred(self._refit_deferred)
        return optimizer

    def account(
        self, hits: int, misses: int, engine_calls: int, eval_seconds: float
    ) -> None:
        """Fold one evaluation's attributed cache/engine deltas into the seed."""
        self.cache_hits += hits
        self.cache_misses += misses
        self.engine_calls += engine_calls
        self.eval_seconds += eval_seconds

    def request(self) -> Optional[Tuple[np.ndarray, List[PVTCondition]]]:
        """The member's next evaluation request, or ``None`` when finished."""
        while not self.finished:
            if self._state == "search":
                if not self.optimizer.is_done:
                    with profiled(
                        "optimizer.ask",
                        seed=self.seed,
                        phase=self.phase,
                        optimizer=self.optimizer_name,
                    ):
                        rows = self.optimizer.ask()
                    if rows.shape[0]:
                        self._pending_rows = rows
                        return rows, self.active
                    continue  # the ask flipped is_done; fall through next pass
                # Phase over: collect its result, verify over the full grid.
                result = self.optimizer.result()
                self.phase_results.append(result)
                self.total_evaluations += result.evaluations
                self.best_vector = result.best_vector
                self.warm_start = self.best_vector[np.newaxis, :]
                self._state = "verify"
                event(
                    "campaign.verify",
                    seed=self.seed,
                    phase=self.phase,
                    evaluations=result.evaluations,
                )
                return self.best_vector[np.newaxis, :], self.ranked
            raise RuntimeError(f"member in unexpected state {self._state!r}")
        return None

    @contract(args={"block": ArraySpec(None, None, None)}, pre=_receive_precondition)
    def receive(self, block: np.ndarray) -> None:
        """Consume the metric block ``(n_corners, count, n_metrics)`` of the
        member's last request."""
        if self._state == "search":
            # Reorder to the corner-major column layout of the stacked
            # specification — for each sizing row, corner 0's metrics
            # first, then corner 1's, and so on.
            flat = block.transpose(1, 0, 2).reshape(self._pending_rows.shape[0], -1)
            with profiled(
                "optimizer.tell",
                seed=self.seed,
                phase=self.phase,
                rows=int(flat.shape[0]),
            ):
                self.optimizer.tell(self._pending_rows, flat)
            self._pending_rows = None
            return
        # Verification of the phase winner across the full corner grid.
        self.corner_reports = []
        failing: List[PVTCondition] = []
        for corner, metrics in zip(self.ranked, block[:, 0, :]):
            ok = bool(self._single_spec.satisfied(metrics[np.newaxis, :])[0])
            self.corner_reports.append(
                CornerReport(
                    condition=corner,
                    metrics={
                        name: float(v) for name, v in zip(self.metric_names, metrics)
                    },
                    satisfied=ok,
                )
            )
            if not ok:
                failing.append(corner)
        if not failing:
            self.solved_all = True
            self.finished = True
            event("campaign.solved", seed=self.seed, phase=self.phase)
            return
        # Fold the worst *new* failing corner into the active set (frozen
        # dataclass identity, not the rounded display name).
        active_set = set(self.active)
        new_failures = [corner for corner in failing if corner not in active_set]
        if not new_failures:
            # The search itself could not satisfy the active set; more
            # phases would re-run the same problem.
            self.finished = True
            event(
                "campaign.finished",
                seed=self.seed,
                phase=self.phase,
                reason="no-new-failing-corner",
            )
            return
        if self.phase == self.max_phases - 1:
            # No further phase will run, so don't report a corner that was
            # never actually folded into a searched constraint set.
            self.finished = True
            event(
                "campaign.finished",
                seed=self.seed,
                phase=self.phase,
                reason="max-phases",
            )
            return
        self.active = self.active + [new_failures[0]]
        self.phase += 1
        self._state = "search"
        event(
            "campaign.phase",
            seed=self.seed,
            phase=self.phase,
            folded_corner=new_failures[0].name,
            active_corners=len(self.active),
        )
        self.optimizer = self._build_optimizer()

    # -- checkpoint/resume ---------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Serialize the member at a round boundary.

        Snapshots are only taken between lockstep rounds, where every live
        member is back in the ``search`` state with no request in flight —
        so there is deliberately no ``_pending_rows`` field here, and
        serializing mid-request is an error, not a silent wrong snapshot.
        Corners serialize as indices into the severity-ranked grid the
        member was built with, which the identity block of the campaign
        snapshot pins.
        """
        if self._pending_rows is not None:
            raise RuntimeError(
                "member state_dict mid-request; snapshots happen at round boundaries"
            )
        corner_index = {corner: i for i, corner in enumerate(self.ranked)}
        return {
            "seed": self.seed,
            "phase": self.phase,
            "active": [corner_index[corner] for corner in self.active],
            "total_evaluations": self.total_evaluations,
            "phase_results": [result.state_dict() for result in self.phase_results],
            "corner_reports": [
                (corner_index[report.condition], dict(report.metrics), report.satisfied)
                for report in self.corner_reports
            ],
            "solved_all": self.solved_all,
            "finished": self.finished,
            "state": self._state,
            # analysis: allow(hot-loop-alloc) snapshot serialization is cold
            "warm_start": self.warm_start.copy() if self.warm_start is not None else None,
            "best_vector": self.best_vector.copy() if self.best_vector is not None else None,
            "accounting": (
                self.cache_hits,
                self.cache_misses,
                self.engine_calls,
                self.eval_seconds,
            ),
            "optimizer": None if self.finished else self.optimizer.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        if state["seed"] != self.seed:
            raise ValueError(
                f"member state is for seed {state['seed']}, this member is seed {self.seed}"
            )
        self.phase = state["phase"]
        self.active = [self.ranked[index] for index in state["active"]]
        self.total_evaluations = state["total_evaluations"]
        self.phase_results = [
            SearchResult.from_state(result) for result in state["phase_results"]
        ]
        self.corner_reports = [
            CornerReport(
                condition=self.ranked[index],
                metrics=dict(metrics),
                satisfied=satisfied,
            )
            for index, metrics, satisfied in state["corner_reports"]
        ]
        self.solved_all = state["solved_all"]
        self.finished = state["finished"]
        self._state = state["state"]
        self._pending_rows = None
        warm_start = state["warm_start"]
        self.warm_start = (
            np.asarray(warm_start, dtype=np.float64).copy()
            if warm_start is not None
            else None
        )
        best_vector = state["best_vector"]
        self.best_vector = (
            np.asarray(best_vector, dtype=np.float64).copy()
            if best_vector is not None
            else None
        )
        self.cache_hits, self.cache_misses, self.engine_calls, self.eval_seconds = state[
            "accounting"
        ]
        if state["optimizer"] is not None:
            # Rebuilt for the restored phase/warm-start first (the exact
            # construction the interrupted run performed), then the mutable
            # search state lands on top.
            self.optimizer = self._build_optimizer()
            self.optimizer.load_state_dict(state["optimizer"])

    def build_result(self) -> ProgressiveResult:
        return ProgressiveResult(
            best_sizing=self.design_space.to_dict(self.best_vector),
            best_vector=self.best_vector,
            solved_all_corners=self.solved_all,
            evaluations=self.total_evaluations,
            corner_reports=self.corner_reports,
            phase_results=self.phase_results,
            active_corners=self.active,
            eval_seconds=self.eval_seconds,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            engine_calls=self.engine_calls,
        )


class Campaign:
    """Drive one or many seeds of a sizing search over shared evaluation.

    Parameters
    ----------
    handle:
        The workload's :class:`EvaluationHandle` (design space, metric
        names, corner evaluators).
    specs:
        Constraints that must hold at every sign-off corner.
    corners:
        Sign-off grid; defaults to :func:`nine_corner_grid`.
    config:
        A :class:`~repro.search.progressive.ProgressiveConfig` (or, legacy
        style, the :class:`TrustRegionConfig` shared by every phase).  Its
        ``optimizer`` field names the registered search strategy, its
        ``corner_engine`` selects the stacked tensor pass versus the looped
        parity oracle.
    seeds:
        RNG seeds, one independent progressive search each; defaults to the
        config's seed.  All seeds share one :class:`EvaluationCache`, and
        each lockstep round feeds the live seeds' pending batches through
        one stacked evaluator call per distinct corner set.
    cache_path:
        Optional persistent evaluation-cache store: computed pairs are
        appended there and preloaded on construction, so a resumed or
        repeated campaign over the same workload warm-starts across
        processes (see ``EvaluationCache(persist_path=...)``).
    cache_preload:
        Extra store files warm-loaded read-only (no repair, no write
        handle) — how a sharded worker shares the master store while
        appending its own pairs to ``cache_path``.
    """

    def __init__(
        self,
        handle: EvaluationHandle,
        specs: Sequence[Spec],
        corners: Optional[Sequence[PVTCondition]] = None,
        config: Union[TrustRegionConfig, ProgressiveConfig, None] = None,
        seeds: Optional[Sequence[int]] = None,
        cache_path: Optional[str] = None,
        cache_preload: Sequence[str] = (),
    ) -> None:
        self.handle = handle
        self.progressive = _as_progressive_config(config, None)
        if self.progressive.max_phases < 1:
            raise ValueError("max_phases must be at least 1")
        trust = self.progressive.phase_trust_region()
        self.corners = list(corners) if corners is not None else nine_corner_grid()
        self.ranked = rank_by_severity(self.corners)
        self.seeds = [int(s) for s in seeds] if seeds is not None else [trust.seed]
        if not self.seeds:
            raise ValueError("a campaign needs at least one seed")
        if self.progressive.corner_engine == "looped":
            # The looped engine is the parity oracle; silently substituting
            # the stacked engine would make it vouch for itself.
            if handle.evaluator_factory is None:
                raise ValueError(
                    "corner_engine='looped' needs the handle's "
                    "evaluator_factory (the per-corner parity oracle)"
                )
            engine = _looped_corner_evaluator(handle.evaluator_factory, self.corners)
        elif handle.corner_evaluator is not None:
            engine = handle.corner_evaluator
        elif handle.evaluator_factory is not None:
            engine = _looped_corner_evaluator(handle.evaluator_factory, self.corners)
        else:
            raise ValueError(
                "the evaluation handle provides neither a corner evaluator "
                "nor a per-corner evaluator factory"
            )
        self.cache = EvaluationCache(
            engine,
            handle.design_space.dimension,
            len(handle.metric_names),
            persist_path=cache_path,
            preload_paths=cache_preload,
        )
        self.refit_mode = self.progressive.refit_mode
        self._members = [
            _ProgressiveMember(
                seed=seed,
                design_space=handle.design_space,
                specs=specs,
                metric_names=handle.metric_names,
                ranked=self.ranked,
                trust_config=trust,
                optimizer_name=self.progressive.optimizer,
                max_phases=self.progressive.max_phases,
                refit_deferred=self.refit_mode == "batched",
            )
            for seed in self.seeds
        ]
        self.rounds = 0
        self.refit_rounds = 0
        self.batched_kernel_calls = 0

    def _counters(self) -> Tuple[int, int, int, float]:
        cache = self.cache
        return cache.hits, cache.misses, cache.engine_calls, cache.eval_seconds

    def _evaluate_for(
        self,
        member: _ProgressiveMember,
        rows: np.ndarray,
        corners: List[PVTCondition],
    ) -> np.ndarray:
        """Evaluate one member's own request, attributing the exact deltas.

        Every cache counter moved by this call belongs to ``member`` alone,
        so the attribution is the plain before/after difference — for a
        single-seed campaign this reproduces exactly the accounting the
        historical sequential loop reported.
        """
        hits0, misses0, calls0, seconds0 = self._counters()
        with profiled(
            "campaign.evaluate",
            seed=member.seed,
            phase=member.phase,
            rows=int(rows.shape[0]),
            corners=len(corners),
        ) as timer:
            block = self.cache.evaluate(rows, corners)
            hits, misses, calls, seconds = self._counters()
            timer.annotate(hits=hits - hits0, misses=misses - misses0)
        member.account(hits - hits0, misses - misses0, calls - calls0, seconds - seconds0)
        return block

    def _run_group(
        self,
        grouped: List[Tuple[_ProgressiveMember, np.ndarray, List[PVTCondition]]],
    ) -> None:
        """One stacked tensor pass for members sharing a corner set.

        Attribution of the shared pass: each member's misses are its own
        fresh ``(row, corner)`` pairs, peeked **before** the pass mutates
        the store — the stacked block's fresh rows are exactly the union of
        the members' fresh rows, so the decomposition is exact.  The engine
        wall time splits proportionally to miss share, and the single
        engine call books to every member with fresh pairs (a shared call
        serves several seeds, so per-seed ``engine_calls`` can sum to more
        than the campaign-wide counter).
        """
        cache = self.cache
        corners = grouped[0][2]
        n_corners = len(corners)
        fresh_counts = [
            cache.fresh_row_count(rows, corners) for _, rows, _ in grouped
        ]
        total_fresh = sum(fresh_counts)
        hits0, misses0, calls0, seconds0 = self._counters()
        with profiled(
            "campaign.pass",
            members=len(grouped),
            corners=n_corners,
            seeds=[m.seed for m, _, _ in grouped],
        ) as timer:
            # One stack per round is the whole point — it buys a single
            # large evaluator call.
            # analysis: allow(hot-loop-alloc) intentional per-round stack
            cache.evaluate(np.vstack([rows for _, rows, _ in grouped]), corners)
            hits, misses, calls, seconds = self._counters()
            timer.annotate(hits=hits - hits0, misses=misses - misses0)
        pass_calls = calls - calls0
        pass_seconds = seconds - seconds0
        for (member, rows, _), fresh in zip(grouped, fresh_counts):
            member.account(
                (rows.shape[0] - fresh) * n_corners,
                fresh * n_corners,
                pass_calls if fresh else 0,
                pass_seconds * (fresh / total_fresh) if total_fresh else 0.0,
            )
        # Scatter: per-member re-reads are all cache hits, attributed
        # exactly like lone requests.
        for member, rows, _ in grouped:
            member.receive(self._evaluate_for(member, rows, corners))

    # -- batched surrogate refit ---------------------------------------
    def _flush_refits(self) -> None:
        """Collect and dispatch every member's queued refit for this round.

        Jobs are grouped by :func:`fit_job_signature` (members in different
        phases have different surrogate output widths); each multi-job group
        trains through one stacked :func:`fit_batched` dispatch, lone jobs
        through the same kernel at seed count 1.  Either way the per-seed
        bits equal the sequential inline refit, so deferral is invisible to
        trajectories — only to the wall clock.
        """
        pending: List[Tuple[_ProgressiveMember, FusedFitJob]] = []
        for member in self._members:
            job = member.optimizer.take_refit_job()
            if job is not None:
                pending.append((member, job))
        if not pending:
            return
        groups: "OrderedDict[tuple, List[Tuple[_ProgressiveMember, FusedFitJob]]]" = (
            OrderedDict()
        )
        for member, job in pending:
            groups.setdefault(fit_job_signature(job), []).append((member, job))
        for grouped in groups.values():
            if len(grouped) == 1:
                self._run_refit_single(*grouped[0])
            else:
                self._run_refit_batched(grouped)

    def _run_refit_single(self, member: _ProgressiveMember, job: FusedFitJob) -> None:
        """A lone deferred refit: same accounting as the inline path."""
        with profiled(
            "trust_region.refit",
            epochs=job.epochs,
            rows=int(job.inputs.shape[0]),
            backend="fused",
        ) as timer:
            fit_batched([job])
        member.optimizer.refit_seconds += timer.seconds

    def _run_refit_batched(
        self, grouped: List[Tuple[_ProgressiveMember, FusedFitJob]]
    ) -> None:
        """One stacked training dispatch for same-signature refit jobs.

        The kernel wall time is attributed back to the members
        proportionally to each job's training volume (epochs x rows), the
        refit analogue of the eval-side miss-share attribution — so the
        per-seed ``refit_seconds`` still sum to the campaign-wide cost.
        """
        jobs = [job for _, job in grouped]
        weights = [job.epochs * int(job.inputs.shape[0]) for job in jobs]
        with profiled(
            "campaign.refit_batched",
            n_seeds=len(jobs),
            n_params=jobs[0].model.num_parameters,
            rows=sum(int(job.inputs.shape[0]) for job in jobs),
        ) as timer:
            fit_batched(jobs)
        self.batched_kernel_calls += 1
        total = sum(weights)
        for (member, _), weight in zip(grouped, weights):
            member.optimizer.refit_seconds += (
                timer.seconds * (weight / total) if total else 0.0
            )

    # -- checkpoint/resume ---------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """The campaign at a round boundary: identity, members, cache.

        The identity block pins everything the snapshot's index-based
        corner references and optimizer states assume about the campaign
        it is loaded into — seeds, optimizer, corner grid, workload shape,
        and the full resolved config (via its dataclass ``repr``, which
        covers every hyper-parameter).  :meth:`load_state_dict` refuses a
        mismatch instead of resuming a silently different search.
        """
        return {
            "identity": {
                "seeds": list(self.seeds),
                "config": repr(self.progressive),
                "dimension": self.handle.design_space.dimension,
                "metric_names": list(self.handle.metric_names),
                "corners": [
                    (corner.process, corner.voltage_factor, corner.temperature_c)
                    for corner in self.ranked
                ],
            },
            "rounds": self.rounds,
            "refit": (self.refit_rounds, self.batched_kernel_calls),
            "members": [member.state_dict() for member in self._members],
            "cache": self.cache.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        identity = state["identity"]
        expected = {
            "seeds": list(self.seeds),
            "config": repr(self.progressive),
            "dimension": self.handle.design_space.dimension,
            "metric_names": list(self.handle.metric_names),
            "corners": [
                (corner.process, corner.voltage_factor, corner.temperature_c)
                for corner in self.ranked
            ],
        }
        for field in expected:
            if identity.get(field) != expected[field]:
                raise ValueError(
                    f"snapshot identity mismatch on {field!r}: snapshot has "
                    f"{identity.get(field)!r}, this campaign has {expected[field]!r}"
                )
        self.rounds = state["rounds"]
        self.refit_rounds, self.batched_kernel_calls = state.get("refit", (0, 0))
        for member, member_state in zip(self._members, state["members"]):
            member.load_state_dict(member_state)
        self.cache.load_state_dict(state["cache"])

    def close(self) -> None:
        """Release the persistent cache store, if any."""
        self.cache.close()

    @staticmethod
    def _resolve_snapshot(resume_from: str) -> Optional[str]:
        """Map ``resume_from`` to a snapshot file, or ``None`` to cold-start.

        A directory resolves to its ``latest.snapshot`` — missing means no
        checkpoint was ever completed, which after a very early crash is
        the legitimate resume answer: start over.  An explicit file path
        must exist (a typo should not silently cold-start a long campaign).
        """
        if os.path.isdir(resume_from):
            path = os.path.join(resume_from, LATEST_SNAPSHOT)
            return path if os.path.exists(path) else None
        if not os.path.exists(resume_from):
            raise FileNotFoundError(f"snapshot {resume_from!r} does not exist")
        return resume_from

    def _write_checkpoint(self, checkpoint_dir: str, keep_history: bool) -> None:
        os.makedirs(checkpoint_dir, exist_ok=True)
        fault_point(SITE_SNAPSHOT_WRITE)
        state = self.state_dict()
        save_snapshot(os.path.join(checkpoint_dir, LATEST_SNAPSHOT), state)
        if keep_history:
            save_snapshot(
                os.path.join(checkpoint_dir, f"round-{self.rounds:05d}.snapshot"),
                state,
            )
        event("resilience.checkpoint", round=self.rounds, dir=checkpoint_dir)

    def run(
        self,
        checkpoint_dir: Optional[str] = None,
        resume_from: Optional[str] = None,
        checkpoint_every: int = 1,
        keep_history: bool = False,
    ) -> CampaignResult:
        """Run all seeds to completion in lockstep evaluation rounds.

        Parameters
        ----------
        checkpoint_dir:
            When given, a snapshot of the full campaign state is written
            (atomically) after each eligible round, as
            ``<dir>/latest.snapshot``.
        resume_from:
            A snapshot file, or a checkpoint directory whose
            ``latest.snapshot`` is used.  The campaign state is restored
            before the first round; the continued run is bit-identical to
            the uninterrupted one — trajectories, best vectors, cache
            content *and* cache accounting (locked by the determinism
            auditor's resume-parity mode and the resilience drill).  A
            directory without a snapshot (the run died before the first
            checkpoint) cold-starts.
        checkpoint_every:
            Snapshot cadence in rounds (default: every round).
        keep_history:
            Also keep one ``round-NNNNN.snapshot`` per checkpoint instead
            of only the latest (used by resume-parity audits).
        """
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1")
        if checkpoint_dir is not None:
            # Created before the first round, not at the first write: a run
            # that dies before any checkpoint leaves an *empty* directory,
            # which resume_from correctly reads as "cold-start" instead of
            # mistaking it for a mistyped snapshot path.
            os.makedirs(checkpoint_dir, exist_ok=True)
        resumed_from_round: Optional[int] = None
        if resume_from is not None:
            snapshot_path = self._resolve_snapshot(resume_from)
            if snapshot_path is not None:
                self.load_state_dict(load_snapshot(snapshot_path))
                resumed_from_round = self.rounds
                event(
                    "resilience.resume", round=self.rounds, snapshot=snapshot_path
                )
        cache = self.cache
        with profiled(
            "campaign.run",
            seeds=len(self._members),
            optimizer=self.progressive.optimizer,
            corners=len(self.ranked),
        ):
            while True:
                requests: List[Tuple[_ProgressiveMember, np.ndarray, List[PVTCondition]]] = []
                for member in self._members:
                    pending = member.request()
                    if pending is not None:
                        requests.append((member, pending[0], pending[1]))
                if not requests:
                    break
                self.rounds += 1
                # Requests are grouped by their exact corner set, and each
                # group rides one stacked tensor pass.  Grouping (rather than
                # evaluating everything at the union of all corner sets) keeps
                # the computed (row, corner) pairs exactly what the members
                # asked for — a seed verifying over the full grid never drags
                # other seeds' search batches through corners they don't need.
                # Per (row, corner) the stacked engine is bit-identical however
                # the pass is batched, so the scatter serves exact values.
                groups: "OrderedDict[Tuple[PVTCondition, ...], List[Tuple[_ProgressiveMember, np.ndarray, List[PVTCondition]]]]" = (
                    OrderedDict()
                )
                for request in requests:
                    groups.setdefault(tuple(request[2]), []).append(request)
                # Refit-round detection must survive phase transitions: a
                # receive() may rebuild a member's optimizer, so keep a
                # reference to the object whose counter we snapshotted.
                refits_before = [
                    (member.optimizer, member.optimizer.refit_count)
                    for member in self._members
                ]
                with profiled(
                    "campaign.round",
                    round=self.rounds,
                    requests=len(requests),
                    groups=len(groups),
                ):
                    for grouped in groups.values():
                        if len(grouped) == 1:
                            # Lone request: evaluate directly, which keeps the
                            # call sequence (and so the cache accounting)
                            # identical to the historical sequential loop.
                            member, rows, corners = grouped[0]
                            member.receive(self._evaluate_for(member, rows, corners))
                            continue
                        self._run_group(grouped)
                    # End of round: train every queued refit (batched mode)
                    # before the snapshot below, so checkpoints never carry
                    # a half-deferred surrogate.
                    self._flush_refits()
                if any(
                    optimizer.refit_count > count for optimizer, count in refits_before
                ):
                    self.refit_rounds += 1
                # Round boundary: every receive() has landed, so no member
                # has a request in flight — the one state a snapshot is
                # allowed to capture.
                if checkpoint_dir is not None and self.rounds % checkpoint_every == 0:
                    self._write_checkpoint(checkpoint_dir, keep_history)
        results = [member.build_result() for member in self._members]
        return CampaignResult(
            results=results,
            seeds=list(self.seeds),
            rounds=self.rounds,
            engine_calls=cache.engine_calls,
            eval_seconds=cache.eval_seconds,
            cache_hits=cache.hits,
            cache_misses=cache.misses,
            resumed_from_round=resumed_from_round,
            refit_rounds=self.refit_rounds,
            batched_kernel_calls=self.batched_kernel_calls,
            refit_mode=self.refit_mode,
        )
