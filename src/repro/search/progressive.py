"""Progressive PVT-corner hardening (Section IV-E of the paper).

Verifying every candidate sizing at every sign-off corner multiplies the
evaluation cost by the corner count.  The paper's strategy: size at the
*hardest* corner first (by the severity heuristic), then verify the result
across the full grid and fold only the corners that actually fail back into
the active constraint set, re-searching with worst-case margins until either
every corner passes or the phase budget runs out.

Since the ask/tell redesign the schedule itself lives in
:class:`~repro.search.campaign.Campaign` (as a per-seed state machine, so
many seeds can share vectorized evaluation rounds); this module keeps the
configuration and result types plus :func:`progressive_pvt_search`, the
historical entry point — now a thin compatibility layer over a single-seed
campaign that reproduces the pre-redesign trajectories bit-exactly at a
fixed seed/config.

The corner axis stays *tensorized*: every multi-corner evaluation is a
single :meth:`~repro.circuits.topologies.base.SizingProblem.evaluate_corners`
call routed through a cross-phase
:class:`~repro.search.eval_cache.EvaluationCache`.
``ProgressiveConfig.corner_engine`` selects between the ``"stacked"`` fast
path and the ``"looped"`` per-corner parity oracle; the two are
bit-identical, so the knob trades speed only, never trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.circuits.pvt import PVTCondition
from repro.core.design_space import DesignSpace
from repro.search.eval_cache import CornerEvaluator
from repro.search.optimizer import available_optimizers
from repro.search.spec import Spec, Specification
from repro.search.trust_region import (
    BatchEvaluator,
    SearchResult,
    TrustRegionConfig,
)

#: Builds a per-corner batch evaluator (e.g. a derated TwoStageOpAmp's
#: ``evaluate_batch``) together with its metric names.
EvaluatorFactory = Callable[[PVTCondition], BatchEvaluator]

#: Corner evaluation engines the progressive loop accepts: ``"stacked"``
#: broadcasts the whole corner grid in one NumPy pass, ``"looped"`` is the
#: per-corner Python loop kept as the parity oracle.
CORNER_ENGINES = ("stacked", "looped")

#: Surrogate-refit dispatch modes: ``"batched"`` collects every live seed's
#: pending refit each campaign round and trains them through one stacked
#: kernel (:func:`repro.nn.fused.fit_batched`); ``"sequential"`` trains each
#: seed inline inside its own ``tell``, the historical parity oracle.  The
#: two are bit-identical per seed, so the knob trades speed only.
REFIT_MODES = ("batched", "sequential")


@dataclass
class ProgressiveConfig:
    """Configuration of the progressive multi-corner loop.

    Bundles the per-phase optimizer hyper-parameters with the knobs that
    belong to the corner-hardening loop itself.  ``backend`` overrides the
    trust-region config's training backend when set, so callers can flip
    every phase between the fused fast path and the autodiff oracle with a
    single field.  ``corner_engine`` selects how multi-corner evaluations
    run: ``"stacked"`` (default, one broadcast over the corner grid) or
    ``"looped"`` (per-corner loop, the bit-identical parity oracle).
    ``optimizer`` names the registered search strategy each phase runs
    (``"trust_region"`` default; ``"random"`` and ``"cross_entropy"`` are
    the built-in baselines).  ``refit_mode`` selects how surrogate refits
    dispatch under a campaign: ``"batched"`` (default, one stacked training
    kernel per round across the live seeds) or ``"sequential"`` (inline
    per-seed refits, the parity oracle) — bit-identical per seed either
    way.
    """

    trust_region: TrustRegionConfig = field(default_factory=TrustRegionConfig)
    max_phases: int = 4
    backend: Optional[str] = None
    corner_engine: str = "stacked"
    optimizer: str = "trust_region"
    refit_mode: str = "batched"

    def __post_init__(self) -> None:
        if self.corner_engine not in CORNER_ENGINES:
            raise ValueError(
                f"unknown corner engine {self.corner_engine!r}; "
                f"available: {', '.join(CORNER_ENGINES)}"
            )
        if self.refit_mode not in REFIT_MODES:
            raise ValueError(
                f"unknown refit mode {self.refit_mode!r}; "
                f"available: {', '.join(REFIT_MODES)}"
            )
        if self.optimizer not in available_optimizers():
            raise ValueError(
                f"unknown optimizer {self.optimizer!r}; "
                f"available: {', '.join(available_optimizers())}"
            )

    def phase_trust_region(self) -> TrustRegionConfig:
        """The trust-region config with the backend override applied."""
        if self.backend is not None and self.backend != self.trust_region.backend:
            return replace(self.trust_region, backend=self.backend)
        return self.trust_region


def _as_progressive_config(
    config: Union[TrustRegionConfig, ProgressiveConfig, None],
    max_phases: Optional[int],
) -> ProgressiveConfig:
    """Normalise the legacy (TrustRegionConfig, max_phases) calling style."""
    if config is None:
        progressive = ProgressiveConfig()
    elif isinstance(config, ProgressiveConfig):
        progressive = config
    else:
        progressive = ProgressiveConfig(trust_region=config)
    if max_phases is not None:
        progressive = replace(progressive, max_phases=max_phases)
    return progressive


@dataclass
class CornerReport:
    """Verification outcome of one PVT corner."""

    condition: PVTCondition
    metrics: Dict[str, float]
    satisfied: bool


@dataclass
class ProgressiveResult:
    """Outcome of the progressive multi-corner search."""

    best_sizing: Dict[str, float]
    best_vector: np.ndarray
    solved_all_corners: bool
    evaluations: int
    corner_reports: List[CornerReport] = field(default_factory=list)
    phase_results: List[SearchResult] = field(default_factory=list)
    active_corners: List[PVTCondition] = field(default_factory=list)
    #: Wall time inside the true corner evaluator, across all phases and
    #: verifications (the ``eval_seconds`` the benchmark records).  Under a
    #: multi-seed campaign a shared stacked pass's engine time is split
    #: across the seeds proportionally to each seed's fresh (cache-missing)
    #: pairs, so the per-seed values sum to the campaign-wide total on
    #: :class:`~repro.search.campaign.CampaignResult`.
    eval_seconds: float = 0.0
    #: Cross-phase evaluation-cache counters, per ``(row, corner)`` pair —
    #: exact per seed (a shared pass's pairs decompose exactly by who
    #: requested them), summing to the campaign totals.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Invocations of the wrapped corner evaluator serving this search.  A
    #: stacked pass shared by several seeds books one call to **every**
    #: seed it computed fresh pairs for, so per-seed values can sum to more
    #: than the campaign-wide counter.
    engine_calls: int = 0

    def failing_corners(self) -> List[PVTCondition]:
        return [report.condition for report in self.corner_reports if not report.satisfied]

    @property
    def refit_seconds(self) -> float:
        """Total surrogate-refit wall time across all phases."""
        return sum(result.refit_seconds for result in self.phase_results)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable summary (used by the ``repro.bench`` artifacts).

        ``solved`` is :attr:`solved_all_corners` (a progressive search is
        solved only when every sign-off corner passes); per-phase details
        are summarised to the phase count — use :attr:`phase_results` and
        :meth:`SearchResult.to_dict` for the full per-phase story.
        """
        return {
            "solved": bool(self.solved_all_corners),
            "evaluations": int(self.evaluations),
            "phases": len(self.phase_results),
            "best_sizing": {k: float(v) for k, v in self.best_sizing.items()},
            "failing_corners": [c.name for c in self.failing_corners()],
            "refit_seconds": float(self.refit_seconds),
            "eval_seconds": float(self.eval_seconds),
            "cache_hits": int(self.cache_hits),
            "cache_misses": int(self.cache_misses),
            "engine_calls": int(self.engine_calls),
        }


def _corner_metric_names(metric_names: Sequence[str], corner: PVTCondition) -> List[str]:
    return [f"{name}@{corner.name}" for name in metric_names]


def _stacked_specification(
    specs: Sequence[Spec], metric_names: Sequence[str], corners: Sequence[PVTCondition]
) -> Specification:
    """Replicate the specs across corners over a concatenated metric vector."""
    stacked_names: List[str] = []
    stacked_specs: List[Spec] = []
    for corner in corners:
        names = _corner_metric_names(metric_names, corner)
        stacked_names.extend(names)
        for spec in specs:
            stacked_specs.append(
                Spec(
                    metric=f"{spec.metric}@{corner.name}",
                    sense=spec.sense,
                    bound=spec.bound,
                    scale=spec.scale,
                )
            )
    return Specification(stacked_specs, stacked_names)


def _looped_corner_evaluator(
    evaluator_factory: EvaluatorFactory, corners: Sequence[PVTCondition]
) -> CornerEvaluator:
    """The per-corner parity oracle: one factory-built evaluator per corner.

    Keyed by the (frozen, hashable) conditions themselves — the display name
    rounds voltage/temperature, so two distinct corners can share it.
    """
    evaluators = {corner: evaluator_factory(corner) for corner in corners}

    def evaluate(samples: np.ndarray, subset: Sequence[PVTCondition]) -> np.ndarray:
        return np.stack(
            [
                np.atleast_2d(
                    np.asarray(evaluators[corner](samples), dtype=np.float64)
                )
                for corner in subset
            ],
            axis=0,
        )

    return evaluate


def progressive_pvt_search(
    evaluator_factory: EvaluatorFactory,
    design_space: DesignSpace,
    specs: Sequence[Spec],
    metric_names: Sequence[str],
    corners: Optional[Sequence[PVTCondition]] = None,
    config: Union[TrustRegionConfig, ProgressiveConfig, None] = None,
    max_phases: Optional[int] = None,
    corner_evaluator: Optional[CornerEvaluator] = None,
) -> ProgressiveResult:
    """Size at the hardest corner first, then harden across the grid.

    Compatibility layer: builds a single-seed
    :class:`~repro.search.campaign.Campaign` around the supplied evaluators
    and returns its one :class:`ProgressiveResult`.  Trajectories, cache
    accounting and corner reports are bit-exact versus the historical
    sequential implementation at a fixed seed/config.

    Parameters
    ----------
    evaluator_factory:
        Called once per corner to build that corner's batch evaluator; the
        basis of the ``"looped"`` parity oracle (and the fallback when no
        ``corner_evaluator`` is supplied).
    design_space, specs, metric_names:
        The CSP: single-corner metric layout plus the constraints that must
        hold at *every* corner.
    corners:
        Sign-off grid; defaults to :func:`nine_corner_grid`.
    config:
        Either a :class:`ProgressiveConfig`, or (legacy style) the
        :class:`TrustRegionConfig` shared by every phase.
    max_phases:
        Upper bound on re-search rounds (each adds the worst failing
        corner); overrides the :class:`ProgressiveConfig` value when given.
    corner_evaluator:
        Vectorized ``(samples, corners) -> (n_corners, count, n_metrics)``
        evaluator (e.g. a topology's
        :meth:`~repro.circuits.topologies.base.SizingProblem.evaluate_corners`),
        used when the config's ``corner_engine`` is ``"stacked"``.  Must be
        bit-identical to the per-corner loop over ``evaluator_factory``.
    """
    # Imported lazily: campaign.py imports this module's config/result
    # types, so a module-level import here would be circular.
    from repro.search.campaign import Campaign, EvaluationHandle

    progressive = _as_progressive_config(config, max_phases)
    handle = EvaluationHandle(
        design_space=design_space,
        metric_names=tuple(metric_names),
        corner_evaluator=corner_evaluator,
        evaluator_factory=evaluator_factory,
    )
    campaign = Campaign(
        handle,
        specs,
        corners=corners,
        config=progressive,
        seeds=[progressive.phase_trust_region().seed],
    )
    return campaign.run().results[0]
