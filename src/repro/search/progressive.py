"""Progressive PVT-corner hardening (Section IV-E of the paper).

Verifying every candidate sizing at every sign-off corner multiplies the
evaluation cost by the corner count.  The paper's strategy: size at the
*hardest* corner first (by the severity heuristic), then verify the result
across the full grid and fold only the corners that actually fail back into
the active constraint set, re-searching with worst-case margins until either
every corner passes or the phase budget runs out.

The corner axis is *tensorized*: each phase's multi-corner evaluator and its
full-grid verification are single
:meth:`~repro.circuits.topologies.base.SizingProblem.evaluate_corners` calls
(one NumPy broadcast over the whole corner set), routed through a cross-phase
:class:`~repro.search.eval_cache.EvaluationCache` so warm-start points and
repeat verifications never recompute.  ``ProgressiveConfig.corner_engine``
selects between the ``"stacked"`` fast path and the ``"looped"`` per-corner
parity oracle; the two are bit-identical, so the knob trades speed only,
never trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.circuits.pvt import PVTCondition, nine_corner_grid, rank_by_severity
from repro.core.design_space import DesignSpace
from repro.search.eval_cache import CornerEvaluator, EvaluationCache
from repro.search.spec import Spec, Specification
from repro.search.trust_region import (
    BatchEvaluator,
    SearchResult,
    TrustRegionConfig,
    TrustRegionSearch,
)

#: Builds a per-corner batch evaluator (e.g. a derated TwoStageOpAmp's
#: ``evaluate_batch``) together with its metric names.
EvaluatorFactory = Callable[[PVTCondition], BatchEvaluator]

#: Corner evaluation engines the progressive loop accepts: ``"stacked"``
#: broadcasts the whole corner grid in one NumPy pass, ``"looped"`` is the
#: per-corner Python loop kept as the parity oracle.
CORNER_ENGINES = ("stacked", "looped")


@dataclass
class ProgressiveConfig:
    """Configuration of the progressive multi-corner loop.

    Bundles the per-phase trust-region hyper-parameters with the knobs that
    belong to the corner-hardening loop itself.  ``backend`` overrides the
    trust-region config's training backend when set, so callers can flip
    every phase between the fused fast path and the autodiff oracle with a
    single field.  ``corner_engine`` selects how multi-corner evaluations
    run: ``"stacked"`` (default, one broadcast over the corner grid) or
    ``"looped"`` (per-corner loop, the bit-identical parity oracle).
    """

    trust_region: TrustRegionConfig = field(default_factory=TrustRegionConfig)
    max_phases: int = 4
    backend: Optional[str] = None
    corner_engine: str = "stacked"

    def __post_init__(self) -> None:
        if self.corner_engine not in CORNER_ENGINES:
            raise ValueError(
                f"unknown corner engine {self.corner_engine!r}; "
                f"available: {', '.join(CORNER_ENGINES)}"
            )

    def phase_trust_region(self) -> TrustRegionConfig:
        """The trust-region config with the backend override applied."""
        if self.backend is not None and self.backend != self.trust_region.backend:
            return replace(self.trust_region, backend=self.backend)
        return self.trust_region


def _as_progressive_config(
    config: Union[TrustRegionConfig, ProgressiveConfig, None],
    max_phases: Optional[int],
) -> ProgressiveConfig:
    """Normalise the legacy (TrustRegionConfig, max_phases) calling style."""
    if config is None:
        progressive = ProgressiveConfig()
    elif isinstance(config, ProgressiveConfig):
        progressive = config
    else:
        progressive = ProgressiveConfig(trust_region=config)
    if max_phases is not None:
        progressive = replace(progressive, max_phases=max_phases)
    return progressive


@dataclass
class CornerReport:
    """Verification outcome of one PVT corner."""

    condition: PVTCondition
    metrics: Dict[str, float]
    satisfied: bool


@dataclass
class ProgressiveResult:
    """Outcome of the progressive multi-corner search."""

    best_sizing: Dict[str, float]
    best_vector: np.ndarray
    solved_all_corners: bool
    evaluations: int
    corner_reports: List[CornerReport] = field(default_factory=list)
    phase_results: List[SearchResult] = field(default_factory=list)
    active_corners: List[PVTCondition] = field(default_factory=list)
    #: Wall time inside the true corner evaluator, across all phases and
    #: verifications (the ``eval_seconds`` the benchmark records).
    eval_seconds: float = 0.0
    #: Cross-phase evaluation-cache counters, per ``(row, corner)`` pair.
    cache_hits: int = 0
    cache_misses: int = 0

    def failing_corners(self) -> List[PVTCondition]:
        return [report.condition for report in self.corner_reports if not report.satisfied]

    @property
    def refit_seconds(self) -> float:
        """Total surrogate-refit wall time across all phases."""
        return sum(result.refit_seconds for result in self.phase_results)


def _corner_metric_names(metric_names: Sequence[str], corner: PVTCondition) -> List[str]:
    return [f"{name}@{corner.name}" for name in metric_names]


def _stacked_specification(
    specs: Sequence[Spec], metric_names: Sequence[str], corners: Sequence[PVTCondition]
) -> Specification:
    """Replicate the specs across corners over a concatenated metric vector."""
    stacked_names: List[str] = []
    stacked_specs: List[Spec] = []
    for corner in corners:
        names = _corner_metric_names(metric_names, corner)
        stacked_names.extend(names)
        for spec in specs:
            stacked_specs.append(
                Spec(
                    metric=f"{spec.metric}@{corner.name}",
                    sense=spec.sense,
                    bound=spec.bound,
                    scale=spec.scale,
                )
            )
    return Specification(stacked_specs, stacked_names)


def _looped_corner_evaluator(
    evaluator_factory: EvaluatorFactory, corners: Sequence[PVTCondition]
) -> CornerEvaluator:
    """The per-corner parity oracle: one factory-built evaluator per corner.

    Keyed by the (frozen, hashable) conditions themselves — the display name
    rounds voltage/temperature, so two distinct corners can share it.
    """
    evaluators = {corner: evaluator_factory(corner) for corner in corners}

    def evaluate(samples: np.ndarray, subset: Sequence[PVTCondition]) -> np.ndarray:
        return np.stack(
            [
                np.atleast_2d(
                    np.asarray(evaluators[corner](samples), dtype=np.float64)
                )
                for corner in subset
            ],
            axis=0,
        )

    return evaluate


def _phase_evaluator(
    cache: EvaluationCache, corners: Sequence[PVTCondition]
) -> BatchEvaluator:
    """Adapt the cached corner tensor to the flat trust-region metric layout.

    The ``(n_corners, count, n_metrics)`` block is reordered to the
    corner-major column layout of :func:`_stacked_specification` — for each
    sizing row, corner 0's metrics first, then corner 1's, and so on —
    exactly the layout the historical per-corner concatenation produced.
    """
    corners = list(corners)

    def evaluate(samples: np.ndarray) -> np.ndarray:
        samples = np.atleast_2d(samples)
        block = cache.evaluate(samples, corners)
        return block.transpose(1, 0, 2).reshape(samples.shape[0], -1)

    return evaluate


def progressive_pvt_search(
    evaluator_factory: EvaluatorFactory,
    design_space: DesignSpace,
    specs: Sequence[Spec],
    metric_names: Sequence[str],
    corners: Optional[Sequence[PVTCondition]] = None,
    config: Union[TrustRegionConfig, ProgressiveConfig, None] = None,
    max_phases: Optional[int] = None,
    corner_evaluator: Optional[CornerEvaluator] = None,
) -> ProgressiveResult:
    """Size at the hardest corner first, then harden across the grid.

    Parameters
    ----------
    evaluator_factory:
        Called once per corner to build that corner's batch evaluator; the
        basis of the ``"looped"`` parity oracle (and the fallback when no
        ``corner_evaluator`` is supplied).
    design_space, specs, metric_names:
        The CSP: single-corner metric layout plus the constraints that must
        hold at *every* corner.
    corners:
        Sign-off grid; defaults to :func:`nine_corner_grid`.
    config:
        Either a :class:`ProgressiveConfig`, or (legacy style) the
        :class:`TrustRegionConfig` shared by every phase.
    max_phases:
        Upper bound on re-search rounds (each adds the worst failing
        corner); overrides the :class:`ProgressiveConfig` value when given.
    corner_evaluator:
        Vectorized ``(samples, corners) -> (n_corners, count, n_metrics)``
        evaluator (e.g. a topology's
        :meth:`~repro.circuits.topologies.base.SizingProblem.evaluate_corners`),
        used when the config's ``corner_engine`` is ``"stacked"``.  Must be
        bit-identical to the per-corner loop over ``evaluator_factory``.

    Whichever engine runs, every evaluation is routed through a cross-phase
    :class:`~repro.search.eval_cache.EvaluationCache`, so phase warm-starts
    and repeat grid verifications are served from memory.
    """
    progressive = _as_progressive_config(config, max_phases)
    if progressive.max_phases < 1:
        raise ValueError("max_phases must be at least 1")
    max_phases = progressive.max_phases
    config = progressive.phase_trust_region()
    corners = list(corners) if corners is not None else nine_corner_grid()
    ranked = rank_by_severity(corners)
    if progressive.corner_engine == "stacked" and corner_evaluator is not None:
        engine = corner_evaluator
    else:
        engine = _looped_corner_evaluator(evaluator_factory, corners)
    cache = EvaluationCache(engine, design_space.dimension, len(metric_names))

    active: List[PVTCondition] = [ranked[0]]
    total_evaluations = 0
    phase_results: List[SearchResult] = []
    warm_start: Optional[np.ndarray] = None
    best_vector: Optional[np.ndarray] = None
    corner_reports: List[CornerReport] = []
    solved_all = False

    for phase in range(max_phases):
        specification = _stacked_specification(specs, metric_names, active)
        evaluator = _phase_evaluator(cache, active)
        # dataclasses.replace keeps working if the config ever gains
        # non-init or derived fields, where reconstructing from __dict__
        # would silently break.
        phase_config = replace(config, seed=config.seed + phase)
        search = TrustRegionSearch(
            evaluator,
            design_space,
            specification,
            config=phase_config,
            initial_points=warm_start,
        )
        result = search.run()
        phase_results.append(result)
        total_evaluations += result.evaluations
        best_vector = result.best_vector
        warm_start = best_vector[np.newaxis, :]

        # Verify the phase winner across the full corner grid: one stacked
        # call over every corner (the active ones come straight from cache).
        single_spec = Specification(specs, metric_names)
        grid = cache.evaluate(best_vector[np.newaxis, :], ranked)
        corner_reports = []
        failing: List[PVTCondition] = []
        for corner, metrics in zip(ranked, grid[:, 0, :]):
            ok = bool(single_spec.satisfied(metrics[np.newaxis, :])[0])
            corner_reports.append(
                CornerReport(
                    condition=corner,
                    metrics={name: float(v) for name, v in zip(metric_names, metrics)},
                    satisfied=ok,
                )
            )
            if not ok:
                failing.append(corner)

        if not failing:
            solved_all = True
            break
        # Fold the worst *new* failing corner into the active set (frozen
        # dataclass identity, not the rounded display name).
        active_set = set(active)
        new_failures = [corner for corner in failing if corner not in active_set]
        if not new_failures:
            # The search itself could not satisfy the active set; more
            # phases would re-run the same problem.
            break
        if phase == max_phases - 1:
            # No further phase will run, so don't report a corner that was
            # never actually folded into a searched constraint set.
            break
        active = active + [new_failures[0]]

    design_dict = design_space.to_dict(best_vector)
    return ProgressiveResult(
        best_sizing=design_dict,
        best_vector=best_vector,
        solved_all_corners=solved_all,
        evaluations=total_evaluations,
        corner_reports=corner_reports,
        phase_results=phase_results,
        active_corners=active,
        eval_seconds=cache.eval_seconds,
        cache_hits=cache.hits,
        cache_misses=cache.misses,
    )
