"""Progressive PVT-corner hardening (Section IV-E of the paper).

Verifying every candidate sizing at every sign-off corner multiplies the
evaluation cost by the corner count.  The paper's strategy: size at the
*hardest* corner first (by the severity heuristic), then verify the result
across the full grid and fold only the corners that actually fail back into
the active constraint set, re-searching with worst-case margins until either
every corner passes or the phase budget runs out.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.circuits.pvt import PVTCondition, nine_corner_grid, rank_by_severity
from repro.core.design_space import DesignSpace
from repro.search.spec import Spec, Specification
from repro.search.trust_region import (
    BatchEvaluator,
    SearchResult,
    TrustRegionConfig,
    TrustRegionSearch,
)

#: Builds a per-corner batch evaluator (e.g. a derated TwoStageOpAmp's
#: ``evaluate_batch``) together with its metric names.
EvaluatorFactory = Callable[[PVTCondition], BatchEvaluator]


@dataclass
class ProgressiveConfig:
    """Configuration of the progressive multi-corner loop.

    Bundles the per-phase trust-region hyper-parameters with the knobs that
    belong to the corner-hardening loop itself.  ``backend`` overrides the
    trust-region config's training backend when set, so callers can flip
    every phase between the fused fast path and the autodiff oracle with a
    single field.
    """

    trust_region: TrustRegionConfig = field(default_factory=TrustRegionConfig)
    max_phases: int = 4
    backend: Optional[str] = None

    def phase_trust_region(self) -> TrustRegionConfig:
        """The trust-region config with the backend override applied."""
        if self.backend is not None and self.backend != self.trust_region.backend:
            return replace(self.trust_region, backend=self.backend)
        return self.trust_region


def _as_progressive_config(
    config: Union[TrustRegionConfig, ProgressiveConfig, None],
    max_phases: Optional[int],
) -> ProgressiveConfig:
    """Normalise the legacy (TrustRegionConfig, max_phases) calling style."""
    if config is None:
        progressive = ProgressiveConfig()
    elif isinstance(config, ProgressiveConfig):
        progressive = config
    else:
        progressive = ProgressiveConfig(trust_region=config)
    if max_phases is not None:
        progressive = replace(progressive, max_phases=max_phases)
    return progressive


@dataclass
class CornerReport:
    """Verification outcome of one PVT corner."""

    condition: PVTCondition
    metrics: Dict[str, float]
    satisfied: bool


@dataclass
class ProgressiveResult:
    """Outcome of the progressive multi-corner search."""

    best_sizing: Dict[str, float]
    best_vector: np.ndarray
    solved_all_corners: bool
    evaluations: int
    corner_reports: List[CornerReport] = field(default_factory=list)
    phase_results: List[SearchResult] = field(default_factory=list)
    active_corners: List[PVTCondition] = field(default_factory=list)

    def failing_corners(self) -> List[PVTCondition]:
        return [report.condition for report in self.corner_reports if not report.satisfied]

    @property
    def refit_seconds(self) -> float:
        """Total surrogate-refit wall time across all phases."""
        return sum(result.refit_seconds for result in self.phase_results)


def _corner_metric_names(metric_names: Sequence[str], corner: PVTCondition) -> List[str]:
    return [f"{name}@{corner.name}" for name in metric_names]


def _stacked_specification(
    specs: Sequence[Spec], metric_names: Sequence[str], corners: Sequence[PVTCondition]
) -> Specification:
    """Replicate the specs across corners over a concatenated metric vector."""
    stacked_names: List[str] = []
    stacked_specs: List[Spec] = []
    for corner in corners:
        names = _corner_metric_names(metric_names, corner)
        stacked_names.extend(names)
        for spec in specs:
            stacked_specs.append(
                Spec(
                    metric=f"{spec.metric}@{corner.name}",
                    sense=spec.sense,
                    bound=spec.bound,
                    scale=spec.scale,
                )
            )
    return Specification(stacked_specs, stacked_names)


def _stacked_evaluator(evaluators: Sequence[BatchEvaluator]) -> BatchEvaluator:
    def evaluate(samples: np.ndarray) -> np.ndarray:
        return np.concatenate([evaluator(samples) for evaluator in evaluators], axis=1)

    return evaluate


def progressive_pvt_search(
    evaluator_factory: EvaluatorFactory,
    design_space: DesignSpace,
    specs: Sequence[Spec],
    metric_names: Sequence[str],
    corners: Optional[Sequence[PVTCondition]] = None,
    config: Union[TrustRegionConfig, ProgressiveConfig, None] = None,
    max_phases: Optional[int] = None,
) -> ProgressiveResult:
    """Size at the hardest corner first, then harden across the grid.

    Parameters
    ----------
    evaluator_factory:
        Called once per corner to build that corner's batch evaluator.
    design_space, specs, metric_names:
        The CSP: single-corner metric layout plus the constraints that must
        hold at *every* corner.
    corners:
        Sign-off grid; defaults to :func:`nine_corner_grid`.
    config:
        Either a :class:`ProgressiveConfig`, or (legacy style) the
        :class:`TrustRegionConfig` shared by every phase.
    max_phases:
        Upper bound on re-search rounds (each adds the worst failing
        corner); overrides the :class:`ProgressiveConfig` value when given.
    """
    progressive = _as_progressive_config(config, max_phases)
    if progressive.max_phases < 1:
        raise ValueError("max_phases must be at least 1")
    max_phases = progressive.max_phases
    config = progressive.phase_trust_region()
    corners = list(corners) if corners is not None else nine_corner_grid()
    ranked = rank_by_severity(corners)
    evaluators = {corner.name: evaluator_factory(corner) for corner in corners}

    active: List[PVTCondition] = [ranked[0]]
    total_evaluations = 0
    phase_results: List[SearchResult] = []
    warm_start: Optional[np.ndarray] = None
    best_vector: Optional[np.ndarray] = None
    corner_reports: List[CornerReport] = []
    solved_all = False

    for phase in range(max_phases):
        specification = _stacked_specification(specs, metric_names, active)
        evaluator = _stacked_evaluator([evaluators[corner.name] for corner in active])
        # dataclasses.replace keeps working if the config ever gains
        # non-init or derived fields, where reconstructing from __dict__
        # would silently break.
        phase_config = replace(config, seed=config.seed + phase)
        search = TrustRegionSearch(
            evaluator,
            design_space,
            specification,
            config=phase_config,
            initial_points=warm_start,
        )
        result = search.run()
        phase_results.append(result)
        total_evaluations += result.evaluations
        best_vector = result.best_vector
        warm_start = best_vector[np.newaxis, :]

        # Verify the phase winner across the full corner grid.
        single_spec = Specification(specs, metric_names)
        corner_reports = []
        failing: List[PVTCondition] = []
        for corner in ranked:
            metrics = np.atleast_2d(evaluators[corner.name](best_vector[np.newaxis, :]))[0]
            ok = bool(single_spec.satisfied(metrics[np.newaxis, :])[0])
            corner_reports.append(
                CornerReport(
                    condition=corner,
                    metrics={name: float(v) for name, v in zip(metric_names, metrics)},
                    satisfied=ok,
                )
            )
            if not ok:
                failing.append(corner)

        if not failing:
            solved_all = True
            break
        # Fold the worst *new* failing corner into the active set.
        active_names = {corner.name for corner in active}
        new_failures = [corner for corner in failing if corner.name not in active_names]
        if not new_failures:
            # The search itself could not satisfy the active set; more
            # phases would re-run the same problem.
            break
        if phase == max_phases - 1:
            # No further phase will run, so don't report a corner that was
            # never actually folded into a searched constraint set.
            break
        active = active + [new_failures[0]]

    design_dict = design_space.to_dict(best_vector)
    return ProgressiveResult(
        best_sizing=design_dict,
        best_vector=best_vector,
        solved_all_corners=solved_all,
        evaluations=total_evaluations,
        corner_reports=corner_reports,
        phase_results=phase_results,
        active_corners=active,
    )
