"""Surrogate-assisted trust-region search (Algorithm 1 of the paper).

The agent alternates between

1. *Monte-Carlo exploration* — uniform sampling of the gridded design space
   to seed the dataset and to escape when the trust region goes stale;
2. *surrogate refit* — an on-the-fly MLP (the "SPICE approximator" of
   Eq. 3) incrementally refit on all evaluated sizings, keeping the Adam
   moments across refits so each iteration is a cheap warm-started pass;
3. *trust-region proposal* — a candidate pool sampled inside the L-infinity
   ball of Eq. (5) around the incumbent, ranked by the surrogate's predicted
   constraint-satisfaction score, with only the top few candidates sent to
   the (expensive) true evaluator;
4. *radius adaptation* — the trust region expands after an improving step
   and shrinks otherwise, in the classic trust-region fashion.

Every proposed point is snapped to the design grid, so the agent only ever
evaluates legal CSP assignments, and evaluated points are deduplicated so
the budget is never spent on a repeat.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.design_space import DesignSpace
from repro.nn.modules import MLP
from repro.nn.optim import Adam
from repro.nn.scalers import StandardScaler
from repro.nn.training import train_regressor
from repro.search.spec import Specification

#: An evaluator maps a ``(count, dim)`` sizing array to ``(count, n_metrics)``.
BatchEvaluator = Callable[[np.ndarray], np.ndarray]


@dataclass
class TrustRegionConfig:
    """Hyper-parameters of Algorithm 1."""

    initial_samples: int = 48
    batch_size: int = 8
    candidate_pool: int = 512
    max_evaluations: int = 400
    initial_radius: float = 0.25
    min_radius: float = 0.02
    max_radius: float = 0.5
    expand: float = 1.6
    shrink: float = 0.5
    surrogate_hidden: Sequence[int] = (48, 48)
    initial_epochs: int = 120
    refit_epochs: int = 25
    learning_rate: float = 3e-3
    seed: int = 0


@dataclass
class IterationRecord:
    """One trust-region iteration, for diagnostics and tests."""

    evaluations: int
    radius: float
    best_score: float
    improved: bool


@dataclass
class SearchResult:
    """Outcome of a trust-region search."""

    best_sizing: Dict[str, float]
    best_vector: np.ndarray
    best_metrics: Dict[str, float]
    best_score: float
    solved: bool
    evaluations: int
    history: List[IterationRecord] = field(default_factory=list)
    #: Wall time spent refitting the surrogate, for benchmark accounting.
    refit_seconds: float = 0.0

    def __repr__(self) -> str:
        status = "solved" if self.solved else "unsolved"
        return (
            f"SearchResult({status}, score={self.best_score:.4g}, "
            f"evaluations={self.evaluations})"
        )


class TrustRegionSearch:
    """Algorithm 1: surrogate-assisted trust-region CSP search.

    Parameters
    ----------
    evaluator:
        Batch evaluator mapping ``(count, dim)`` sizings to metrics.
    design_space:
        The gridded CSP domain.
    specification:
        The constraints to satisfy; its ``metric_names`` must match the
        evaluator's output columns.
    config:
        Hyper-parameters; the RNG seed makes runs reproducible.
    initial_points:
        Optional extra sizings (natural units) evaluated up-front — used by
        the progressive PVT loop to warm-start later phases from the best
        sizing of an earlier phase.
    """

    def __init__(
        self,
        evaluator: BatchEvaluator,
        design_space: DesignSpace,
        specification: Specification,
        config: Optional[TrustRegionConfig] = None,
        initial_points: Optional[np.ndarray] = None,
    ) -> None:
        self.evaluator = evaluator
        self.design_space = design_space
        self.specification = specification
        self.config = config or TrustRegionConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self._initial_points = (
            np.atleast_2d(np.asarray(initial_points, dtype=np.float64))
            if initial_points is not None
            else None
        )
        # Dataset of evaluated points (natural units + unit cube + metrics).
        self._inputs: List[np.ndarray] = []
        self._metrics: List[np.ndarray] = []
        self._seen: set = set()
        # Surrogate state persists across refits (warm-started Adam).
        self._surrogate: Optional[MLP] = None
        self._optimizer: Optional[Adam] = None
        self._output_scaler: Optional[StandardScaler] = None
        # Cumulative surrogate-refit wall time (the repro.bench accounting).
        self.refit_seconds: float = 0.0

    # ------------------------------------------------------------------
    @property
    def evaluations(self) -> int:
        return len(self._inputs)

    def _evaluate_new(self, candidates: np.ndarray, limit: Optional[int] = None) -> int:
        """Evaluate up to ``limit`` not-yet-seen rows; return how many.

        Snapping and true evaluation both run once on the whole block, so
        the per-candidate cost in the hot loop stays vectorized.
        """
        snapped = self.design_space.snap(np.atleast_2d(candidates))
        fresh = []
        for row in snapped:
            key = row.tobytes()
            if key in self._seen:
                continue
            self._seen.add(key)
            fresh.append(row)
            if limit is not None and len(fresh) >= limit:
                break
        if not fresh:
            return 0
        block = np.array(fresh)
        metrics = np.atleast_2d(self.evaluator(block))
        for row, metric_row in zip(block, metrics):
            self._inputs.append(row)
            self._metrics.append(np.asarray(metric_row, dtype=np.float64))
        return len(fresh)

    def _dataset(self) -> tuple:
        inputs = np.array(self._inputs)
        metrics = np.array(self._metrics)
        scores = self.specification.score(metrics)
        return inputs, metrics, scores

    # ------------------------------------------------------------------
    def _refit_surrogate(self, inputs: np.ndarray, metrics: np.ndarray, epochs: int) -> None:
        started = time.perf_counter()
        unit_inputs = self.design_space.to_unit(inputs)
        if self._surrogate is None:
            self._surrogate = MLP(
                in_features=self.design_space.dimension,
                hidden=tuple(self.config.surrogate_hidden),
                out_features=len(self.specification.metric_names),
                rng=np.random.default_rng(self.config.seed + 1),
            )
            self._optimizer = Adam(self._surrogate.parameters(), lr=self.config.learning_rate)
            # The output scaler is fitted once on the Monte-Carlo seed and
            # then frozen: retargeting it every refit would silently shift
            # the regression problem under the persistent Adam moments.
            self._output_scaler = StandardScaler().fit(metrics)
        train_regressor(
            self._surrogate,
            unit_inputs,
            self._output_scaler.transform(metrics),
            epochs=epochs,
            batch_size=32,
            optimizer=self._optimizer,
            rng=self.rng,
        )
        self.refit_seconds += time.perf_counter() - started

    def _predict_scores(self, candidates: np.ndarray) -> np.ndarray:
        unit = self.design_space.to_unit(candidates)
        predicted = self._surrogate.predict(unit)
        metrics = self._output_scaler.inverse_transform(predicted)
        return self.specification.score(metrics)

    # ------------------------------------------------------------------
    def run(self) -> SearchResult:
        """Run Algorithm 1 until the spec is met or the budget is spent."""
        config = self.config
        # Line 1-3: Monte-Carlo exploration of the full design space.  The
        # seed stage honours the evaluation budget too (warm-start points
        # are placed first so they always make the cut).
        seed_points = self.design_space.sample(self.rng, config.initial_samples)
        if self._initial_points is not None:
            seed_points = np.vstack([self._initial_points, seed_points])
        self._evaluate_new(seed_points, limit=config.max_evaluations)

        inputs, metrics, scores = self._dataset()
        best = int(np.argmax(scores))
        radius = config.initial_radius
        history: List[IterationRecord] = []
        if scores[best] < -1e-9:
            # Only worth fitting a surrogate when a search will actually run.
            self._refit_surrogate(inputs, metrics, epochs=config.initial_epochs)

        # Feasibility tolerance matches Specification.satisfied, so a design
        # feasible up to float round-off stops the search instead of burning
        # the remaining budget.
        while scores[best] < -1e-9 and self.evaluations < config.max_evaluations:
            center = inputs[best]
            # Line 5: sample the trust region (L-infinity ball, grid-snapped).
            candidates = self.design_space.sample_ball(
                self.rng, center, radius, config.candidate_pool
            )
            # Line 6-7: rank by predicted satisfaction score, evaluate the top
            # few for real (drawing replacements for duplicates from the next
            # best-ranked candidates, all in one batched call).
            predicted = self._predict_scores(candidates)
            order = np.argsort(predicted)[::-1]
            proposed = candidates[order[: 4 * config.batch_size]]
            added = self._evaluate_new(proposed, limit=config.batch_size)
            if added == 0:
                # The whole region is already evaluated — fall back to
                # Monte-Carlo exploration so the budget is never wasted.
                added = self._evaluate_new(self.design_space.sample(self.rng, config.batch_size))
                if added == 0:
                    break

            previous_best_score = scores[best]
            inputs, metrics, scores = self._dataset()
            best = int(np.argmax(scores))
            improved = scores[best] > previous_best_score + 1e-12
            # Line 8: incremental surrogate refit with persistent moments.
            self._refit_surrogate(inputs, metrics, epochs=config.refit_epochs)
            # Line 9-10: adapt the trust-region radius.
            if improved:
                radius = min(radius * config.expand, config.max_radius)
            else:
                radius = max(radius * config.shrink, config.min_radius)
            history.append(
                IterationRecord(
                    evaluations=self.evaluations,
                    radius=radius,
                    best_score=float(scores[best]),
                    improved=bool(improved),
                )
            )

        best_vector = inputs[best]
        best_metrics = metrics[best]
        return SearchResult(
            best_sizing=self.design_space.to_dict(best_vector),
            best_vector=best_vector,
            best_metrics={
                name: float(value)
                for name, value in zip(self.specification.metric_names, best_metrics)
            },
            best_score=float(scores[best]),
            solved=bool(self.specification.satisfied(best_metrics[np.newaxis, :])[0]),
            evaluations=self.evaluations,
            history=history,
            refit_seconds=self.refit_seconds,
        )
