"""Surrogate-assisted trust-region search (Algorithm 1 of the paper).

The agent alternates between

1. *Monte-Carlo exploration* — uniform sampling of the gridded design space
   to seed the dataset and to escape when the trust region goes stale;
2. *surrogate refit* — an on-the-fly MLP (the "SPICE approximator" of
   Eq. 3) incrementally refit on all evaluated sizings, keeping the Adam
   moments across refits so each iteration is a cheap warm-started pass;
3. *trust-region proposal* — a candidate pool sampled inside the L-infinity
   ball of Eq. (5) around the incumbent, ranked by the surrogate's predicted
   constraint-satisfaction score, with only the top few candidates sent to
   the (expensive) true evaluator;
4. *radius adaptation* — the trust region expands after an improving step
   and shrinks otherwise, in the classic trust-region fashion.

Every proposed point is snapped to the design grid, so the agent only ever
evaluates legal CSP assignments, and evaluated points are deduplicated so
the budget is never spent on a repeat.

Hot-path design (this is the inner loop of every benchmark case):

* The dataset of evaluated points lives in amortized-doubling arrays —
  natural units, unit-cube coordinates, metrics, satisfaction scores and
  dedup keys are all appended in blocks, never rebuilt, and only *new* rows
  are scored.  The incumbent is tracked incrementally.
* Dedup runs as a single vectorized pass: snapped candidate rows are viewed
  as fixed-width void scalars, first-occurrence-filtered with ``np.unique``
  and membership-checked against the stored key array with ``np.isin`` — no
  per-row Python loop, no per-row ``tobytes``.
* Candidate ranking uses ``np.argpartition`` to pull the top ``4 *
  batch_size`` of the pool before ordering just that slice, so ranking cost
  stays O(pool) as the pool grows.
* The surrogate refit runs on the fused NumPy backend by default
  (:mod:`repro.nn.fused`), which is step-for-step bit-identical to the
  autodiff reference — switching ``backend`` never changes a trajectory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.design_space import DesignSpace
from repro.nn.fused import FusedAdam, FusedMLP
from repro.nn.modules import MLP
from repro.nn.optim import Adam
from repro.nn.scalers import StandardScaler
from repro.nn.training import train_regressor
from repro.search.spec import Specification

#: An evaluator maps a ``(count, dim)`` sizing array to ``(count, n_metrics)``.
BatchEvaluator = Callable[[np.ndarray], np.ndarray]

#: Training backends the search accepts (no "auto" here: the search builds
#: the surrogate itself, so the choice must be explicit).
SEARCH_BACKENDS = ("fused", "autodiff")


@dataclass
class TrustRegionConfig:
    """Hyper-parameters of Algorithm 1."""

    initial_samples: int = 48
    batch_size: int = 8
    candidate_pool: int = 512
    max_evaluations: int = 400
    initial_radius: float = 0.25
    min_radius: float = 0.02
    max_radius: float = 0.5
    expand: float = 1.6
    shrink: float = 0.5
    surrogate_hidden: Sequence[int] = (48, 48)
    initial_epochs: int = 120
    refit_epochs: int = 25
    learning_rate: float = 3e-3
    seed: int = 0
    #: Training backend for the surrogate refits: ``"fused"`` (default, the
    #: flat-buffer NumPy fast path) or ``"autodiff"`` (the Tensor-graph
    #: reference oracle).  The two are bit-identical per training step, so
    #: this knob trades speed only, never trajectories.
    backend: str = "fused"
    #: Minibatch size of the surrogate refits.  The refit cost is dominated
    #: by per-step dispatch overhead (the matrices are tiny), so fewer,
    #: larger batches are strictly cheaper; 64 was chosen by measuring the
    #: smoke suite — identical success rates and evaluations-to-feasible
    #: within noise of 32, at roughly half the refit wall time.
    surrogate_batch_size: int = 64

    def __post_init__(self) -> None:
        if self.backend not in SEARCH_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; available: {', '.join(SEARCH_BACKENDS)}"
            )
        for name in ("initial_samples", "batch_size", "candidate_pool", "max_evaluations"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be at least 1")


@dataclass
class IterationRecord:
    """One trust-region iteration, for diagnostics and tests."""

    evaluations: int
    radius: float
    best_score: float
    improved: bool


@dataclass
class SearchResult:
    """Outcome of a trust-region search."""

    best_sizing: Dict[str, float]
    best_vector: np.ndarray
    best_metrics: Dict[str, float]
    best_score: float
    solved: bool
    evaluations: int
    history: List[IterationRecord] = field(default_factory=list)
    #: Wall time spent refitting the surrogate, for benchmark accounting.
    refit_seconds: float = 0.0

    def __repr__(self) -> str:
        status = "solved" if self.solved else "unsolved"
        return (
            f"SearchResult({status}, score={self.best_score:.4g}, "
            f"evaluations={self.evaluations})"
        )


class TrustRegionSearch:
    """Algorithm 1: surrogate-assisted trust-region CSP search.

    Parameters
    ----------
    evaluator:
        Batch evaluator mapping ``(count, dim)`` sizings to metrics.
    design_space:
        The gridded CSP domain.
    specification:
        The constraints to satisfy; its ``metric_names`` must match the
        evaluator's output columns.
    config:
        Hyper-parameters; the RNG seed makes runs reproducible.
    initial_points:
        Optional extra sizings (natural units) evaluated up-front — used by
        the progressive PVT loop to warm-start later phases from the best
        sizing of an earlier phase.
    """

    def __init__(
        self,
        evaluator: BatchEvaluator,
        design_space: DesignSpace,
        specification: Specification,
        config: Optional[TrustRegionConfig] = None,
        initial_points: Optional[np.ndarray] = None,
    ) -> None:
        self.evaluator = evaluator
        self.design_space = design_space
        self.specification = specification
        self.config = config or TrustRegionConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self._initial_points = (
            np.atleast_2d(np.asarray(initial_points, dtype=np.float64))
            if initial_points is not None
            else None
        )
        # Dataset of evaluated points in amortized-doubling buffers:
        # natural-unit rows, unit-cube rows, metric rows, satisfaction
        # scores, and the void-view dedup keys.  ``_count`` rows are live.
        dim = design_space.dimension
        self._key_dtype = np.dtype((np.void, dim * np.dtype(np.float64).itemsize))
        self._capacity = 0
        self._count = 0
        self._X = np.empty((0, dim))
        self._U = np.empty((0, dim))
        self._M = np.empty((0, len(specification.metric_names)))
        self._scores = np.empty(0)
        self._keys = np.empty(0, dtype=self._key_dtype)
        # Index of the incumbent (earliest row attaining the best score,
        # matching np.argmax tie-breaking on the full score array).
        self._best = -1
        # Surrogate state persists across refits (warm-started Adam).
        self._surrogate: Optional[Union[MLP, FusedMLP]] = None
        self._optimizer: Optional[Union[Adam, FusedAdam]] = None
        self._output_scaler: Optional[StandardScaler] = None
        # Cumulative surrogate-refit wall time (the repro.bench accounting).
        self.refit_seconds: float = 0.0

    # ------------------------------------------------------------------
    @property
    def evaluations(self) -> int:
        return self._count

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._count + extra
        if needed <= self._capacity:
            return
        capacity = max(self._capacity, 64)
        while capacity < needed:
            capacity *= 2
        for name in ("_X", "_U", "_M", "_scores", "_keys"):
            old = getattr(self, name)
            shape = (capacity,) + old.shape[1:]
            grown = np.empty(shape, dtype=old.dtype)
            grown[: self._count] = old[: self._count]
            setattr(self, name, grown)
        self._capacity = capacity

    def _row_keys(self, block: np.ndarray) -> np.ndarray:
        """Fixed-width void view of each row, the vectorized dedup key."""
        return np.ascontiguousarray(block).view(self._key_dtype).ravel()

    def _evaluate_new(self, candidates: np.ndarray, limit: Optional[int] = None) -> int:
        """Evaluate up to ``limit`` not-yet-seen rows; return how many.

        Snapping, dedup and true evaluation all run once on the whole block:
        rows are keyed by a void view, first occurrences are kept in
        candidate order (``np.unique`` + index sort), and membership against
        everything already evaluated is one ``np.isin`` pass.
        """
        snapped = self.design_space.snap(np.atleast_2d(candidates))
        keys = self._row_keys(snapped)
        _, first = np.unique(keys, return_index=True)
        first.sort()
        if self._count:
            first = first[~np.isin(keys[first], self._keys[: self._count])]
        if limit is not None:
            first = first[:limit]
        if first.size == 0:
            return 0
        block = snapped[first]
        metrics = np.atleast_2d(np.asarray(self.evaluator(block), dtype=np.float64))
        self._append(block, keys[first], metrics)
        return int(first.size)

    def _append(self, rows: np.ndarray, keys: np.ndarray, metrics: np.ndarray) -> None:
        """Append an evaluated block, scoring and ranking only the new rows."""
        added = rows.shape[0]
        self._ensure_capacity(added)
        start, stop = self._count, self._count + added
        self._X[start:stop] = rows
        self._U[start:stop] = self.design_space.to_unit(rows)
        self._M[start:stop] = metrics
        self._keys[start:stop] = keys
        scores = self.specification.score(metrics)
        self._scores[start:stop] = scores
        self._count = stop
        block_best = int(np.argmax(scores))
        if self._best < 0 or scores[block_best] > self._scores[self._best]:
            self._best = start + block_best

    # ------------------------------------------------------------------
    def _refit_surrogate(self, epochs: int) -> None:
        started = time.perf_counter()
        metrics = self._M[: self._count]
        if self._surrogate is None:
            template = MLP(
                in_features=self.design_space.dimension,
                hidden=tuple(self.config.surrogate_hidden),
                out_features=len(self.specification.metric_names),
                rng=np.random.default_rng(self.config.seed + 1),
            )
            if self.config.backend == "fused":
                self._surrogate = FusedMLP.from_module(template)
                self._optimizer = FusedAdam(self._surrogate, lr=self.config.learning_rate)
            else:
                self._surrogate = template
                self._optimizer = Adam(template.parameters(), lr=self.config.learning_rate)
            # The output scaler is fitted once on the Monte-Carlo seed and
            # then frozen: retargeting it every refit would silently shift
            # the regression problem under the persistent Adam moments.
            self._output_scaler = StandardScaler().fit(metrics)
        train_regressor(
            self._surrogate,
            self._U[: self._count],
            self._output_scaler.transform(metrics),
            epochs=epochs,
            batch_size=self.config.surrogate_batch_size,
            optimizer=self._optimizer,
            rng=self.rng,
            backend=self.config.backend,
        )
        self.refit_seconds += time.perf_counter() - started

    def _rank_candidates(self, candidates: np.ndarray, keep: int) -> np.ndarray:
        """Indices of the predicted-best ``keep`` candidates, best first.

        The satisfaction score saturates at 0 for every predicted-feasible
        candidate, so inside a converged trust region large parts of the
        pool tie exactly.  Ranking is therefore lexicographic: the clipped
        score first, the *worst* predicted margin as the tie-break — among
        candidates predicted feasible, prefer the one most robustly so
        (maximin), instead of an arbitrary sort-order accident.

        ``np.argpartition`` pre-selects by score so the bulk of the pool is
        never fully sorted; when score ties straddle the partition boundary
        the slice is widened to *all* boundary-tied candidates before the
        tie-break, so the maximin choice is taken over every candidate
        with an equal claim, not an arbitrary partition accident.
        """
        unit = self.design_space.to_unit(candidates)
        predicted = self._surrogate.predict(unit)
        metrics = self._output_scaler.inverse_transform(predicted)
        margins = self.specification.margins(metrics)
        scores = np.minimum(margins, 0.0).sum(axis=1)
        worst = margins.min(axis=1)
        if keep < scores.shape[0]:
            top = np.argpartition(scores, -keep)[-keep:]
            threshold = scores[top].min()
            tied = np.flatnonzero(scores >= threshold)
            if tied.size > keep:
                top = tied
        else:
            top = np.arange(scores.shape[0])
        # lexsort is ascending on the last key first: negate both keys to
        # get score-descending with worst-margin-descending tie-breaks.
        return top[np.lexsort((-worst[top], -scores[top]))][:keep]

    # ------------------------------------------------------------------
    def run(self) -> SearchResult:
        """Run Algorithm 1 until the spec is met or the budget is spent."""
        config = self.config
        # Line 1-3: Monte-Carlo exploration of the full design space.  The
        # seed stage honours the evaluation budget too (warm-start points
        # are placed first so they always make the cut).
        seed_points = self.design_space.sample(self.rng, config.initial_samples)
        if self._initial_points is not None:
            seed_points = np.vstack([self._initial_points, seed_points])
        self._evaluate_new(seed_points, limit=config.max_evaluations)

        radius = config.initial_radius
        history: List[IterationRecord] = []
        if self._scores[self._best] < -1e-9:
            # Only worth fitting a surrogate when a search will actually run.
            self._refit_surrogate(epochs=config.initial_epochs)

        # Feasibility tolerance matches Specification.satisfied, so a design
        # feasible up to float round-off stops the search instead of burning
        # the remaining budget.
        while self._scores[self._best] < -1e-9 and self._count < config.max_evaluations:
            center = self._X[self._best]
            # Line 5: sample the trust region (L-infinity ball, grid-snapped).
            candidates = self.design_space.sample_ball(
                self.rng, center, radius, config.candidate_pool
            )
            # Line 6-7: rank by predicted satisfaction score (maximin
            # tie-breaks, argpartition top-k — see _rank_candidates) and
            # evaluate the top few for real (drawing replacements for
            # duplicates from the next best-ranked candidates, all in one
            # batched call).
            order = self._rank_candidates(candidates, keep=4 * config.batch_size)
            previous_best_score = self._scores[self._best]
            # The final iteration may have less budget left than a full
            # batch; never evaluate past max_evaluations.
            step = min(config.batch_size, config.max_evaluations - self._count)
            added = self._evaluate_new(candidates[order], limit=step)
            if added == 0:
                # The whole region is already evaluated — fall back to
                # Monte-Carlo exploration so the budget is never wasted.
                added = self._evaluate_new(
                    self.design_space.sample(self.rng, config.batch_size), limit=step
                )
                if added == 0:
                    break

            improved = self._scores[self._best] > previous_best_score + 1e-12
            # Line 8: incremental surrogate refit with persistent moments —
            # but only when another iteration will actually consume it.  If
            # this batch met the spec or exhausted the budget, a refit would
            # train a surrogate nobody ever queries (the RNG draws it would
            # consume are equally dead, so skipping cannot shift a
            # trajectory).
            will_continue = (
                self._scores[self._best] < -1e-9 and self._count < config.max_evaluations
            )
            if will_continue:
                self._refit_surrogate(epochs=config.refit_epochs)
            # Line 9-10: adapt the trust-region radius.
            if improved:
                radius = min(radius * config.expand, config.max_radius)
            else:
                radius = max(radius * config.shrink, config.min_radius)
            history.append(
                IterationRecord(
                    evaluations=self._count,
                    radius=radius,
                    best_score=float(self._scores[self._best]),
                    improved=bool(improved),
                )
            )

        best = self._best
        best_vector = self._X[best].copy()
        best_metrics = self._M[best].copy()
        return SearchResult(
            best_sizing=self.design_space.to_dict(best_vector),
            best_vector=best_vector,
            best_metrics={
                name: float(value)
                for name, value in zip(self.specification.metric_names, best_metrics)
            },
            best_score=float(self._scores[best]),
            solved=bool(self.specification.satisfied(best_metrics[np.newaxis, :])[0]),
            evaluations=self._count,
            history=history,
            refit_seconds=self.refit_seconds,
        )
