"""Surrogate-assisted trust-region search (Algorithm 1 of the paper).

The agent alternates between

1. *Monte-Carlo exploration* — uniform sampling of the gridded design space
   to seed the dataset and to escape when the trust region goes stale;
2. *surrogate refit* — an on-the-fly MLP (the "SPICE approximator" of
   Eq. 3) incrementally refit on all evaluated sizings, keeping the Adam
   moments across refits so each iteration is a cheap warm-started pass;
3. *trust-region proposal* — a candidate pool sampled inside the L-infinity
   ball of Eq. (5) around the incumbent, ranked by the surrogate's predicted
   constraint-satisfaction score, with only the top few candidates sent to
   the (expensive) true evaluator;
4. *radius adaptation* — the trust region expands after an improving step
   and shrinks otherwise, in the classic trust-region fashion.

Since the ask/tell redesign the algorithm is expressed on the
:class:`~repro.search.optimizer.Optimizer` protocol: :meth:`ask` runs the
proposal side (Monte-Carlo seeding, trust-region sampling, surrogate
ranking, grid snapping, dedup, budget clamping) and :meth:`tell` the update
side (dataset append, surrogate refit with persistent Adam moments, radius
adaptation).  ``run()`` is the thin self-driving loop inherited from
:class:`~repro.search.optimizer.DatasetOptimizer`; evaluation ownership can
equally live outside, in a :class:`~repro.search.campaign.Campaign`.  The
split is **bit-identical** to the historical monolithic loop — same RNG
draw order, same refit schedule, same trajectories — and is locked by the
parity tests against the pre-refactor oracle.

Hot-path notes (this is the inner loop of every benchmark case): the
evaluated-point dataset (amortized-doubling buffers, vectorized void-view
dedup, incremental incumbent) lives in the shared
:class:`~repro.search.optimizer.DatasetOptimizer` base; candidate ranking
uses ``np.argpartition`` to keep ranking cost O(pool); the surrogate refit
runs on the fused NumPy backend by default (:mod:`repro.nn.fused`), which is
step-for-step bit-identical to the autodiff reference — switching
``backend`` never changes a trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.core.design_space import DesignSpace
from repro.obs import profiled
from repro.resilience.faults import fault_point, register_fault_site
from repro.nn.fused import FusedAdam, FusedFitJob, FusedMLP
from repro.nn.modules import MLP
from repro.nn.optim import Adam
from repro.nn.scalers import StandardScaler
from repro.nn.training import train_regressor
from repro.analysis.contracts import contract
from repro.search.optimizer import (
    FEASIBLE_TOL,
    BatchEvaluator,
    DatasetOptimizer,
    IterationRecord,
    SearchResult,
    register_optimizer,
    tell_precondition,
)
from repro.search.spec import Specification

__all__ = [
    "BatchEvaluator",
    "IterationRecord",
    "SEARCH_BACKENDS",
    "SearchResult",
    "TrustRegionConfig",
    "TrustRegionSearch",
]

#: Training backends the search accepts (no "auto" here: the search builds
#: the surrogate itself, so the choice must be explicit).
SEARCH_BACKENDS = ("fused", "autodiff")

#: Kill-and-resume drill site: a crash inside a surrogate refit loses the
#: half-updated Adam moments, which resume must reconstruct exactly.
SITE_REFIT = register_fault_site("optimizer.refit")


@dataclass
class TrustRegionConfig:
    """Hyper-parameters of Algorithm 1 (and the shared optimizer knobs).

    The baseline optimizers (:class:`~repro.search.optimizer.RandomSearch`,
    :class:`~repro.search.optimizer.CrossEntropySearch`) reuse the common
    subset — ``seed``, ``initial_samples``, ``batch_size``,
    ``max_evaluations`` — so one config type drives any registered
    optimizer.
    """

    initial_samples: int = 48
    batch_size: int = 8
    candidate_pool: int = 512
    max_evaluations: int = 400
    initial_radius: float = 0.25
    min_radius: float = 0.02
    max_radius: float = 0.5
    expand: float = 1.6
    shrink: float = 0.5
    surrogate_hidden: Sequence[int] = (48, 48)
    initial_epochs: int = 120
    refit_epochs: int = 25
    learning_rate: float = 3e-3
    seed: int = 0
    #: Training backend for the surrogate refits: ``"fused"`` (default, the
    #: flat-buffer NumPy fast path) or ``"autodiff"`` (the Tensor-graph
    #: reference oracle).  The two are bit-identical per training step, so
    #: this knob trades speed only, never trajectories.
    backend: str = "fused"
    #: Minibatch size of the surrogate refits.  The refit cost is dominated
    #: by per-step dispatch overhead (the matrices are tiny), so fewer,
    #: larger batches are strictly cheaper; 64 was chosen by measuring the
    #: smoke suite — identical success rates and evaluations-to-feasible
    #: within noise of 32, at roughly half the refit wall time.
    surrogate_batch_size: int = 64

    def __post_init__(self) -> None:
        if self.backend not in SEARCH_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; available: {', '.join(SEARCH_BACKENDS)}"
            )
        for name in ("initial_samples", "batch_size", "candidate_pool", "max_evaluations"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be at least 1")


class TrustRegionSearch(DatasetOptimizer):
    """Algorithm 1: surrogate-assisted trust-region CSP search.

    Parameters
    ----------
    evaluator:
        Batch evaluator mapping ``(count, dim)`` sizings to metrics, for
        standalone ``run()`` use; ``None`` when a driver (e.g. a
        :class:`~repro.search.campaign.Campaign`) owns evaluation and
        drives the optimizer through ``ask``/``tell``.
    design_space:
        The gridded CSP domain.
    specification:
        The constraints to satisfy; its ``metric_names`` must match the
        evaluator's output columns.
    config:
        Hyper-parameters; the RNG seed makes runs reproducible.
    initial_points:
        Optional extra sizings (natural units) evaluated up-front — used by
        the progressive PVT loop to warm-start later phases from the best
        sizing of an earlier phase.
    """

    def __init__(
        self,
        evaluator: Optional[BatchEvaluator],
        design_space: DesignSpace,
        specification: Specification,
        config: Optional[TrustRegionConfig] = None,
        initial_points: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(
            evaluator,
            design_space,
            specification,
            config=config or TrustRegionConfig(),
            initial_points=initial_points,
        )
        # Ask/tell phase tracking: the first ask is the Monte-Carlo seed
        # stage, the first tell processes it (initial surrogate fit).
        self._seeded = False
        self._iterating = False
        self._radius = self.config.initial_radius
        # Surrogate state persists across refits (warm-started Adam).
        self._surrogate: Optional[Union[MLP, FusedMLP]] = None
        self._optimizer: Optional[Union[Adam, FusedAdam]] = None
        self._output_scaler: Optional[StandardScaler] = None
        # Batched-refit deferral (campaign refit_mode="batched"): when set,
        # tell() queues the refit instead of training, and the driver pops
        # it via take_refit_job() at the end of the round.
        self._refit_deferred = False
        self._pending_refit_epochs: Optional[int] = None

    # ------------------------------------------------------------------
    def set_refit_deferred(self, deferred: bool) -> None:
        """Queue refits for a round-level batched dispatch instead of
        training inline.

        Only the fused backend is deferrable (the batched kernel stacks
        flat parameter vectors); with ``backend="autodiff"`` the optimizer
        keeps training inline and the campaign's batched mode degrades
        gracefully to the sequential behaviour for this member.

        Deferral cannot shift a trajectory: the refit is the only RNG
        consumer inside ``tell`` and the next RNG use is the next ``ask``,
        which the campaign only reaches after flushing the queued refits —
        so the draw order is exactly the sequential one.
        """
        self._refit_deferred = bool(deferred) and self.config.backend == "fused"

    def take_refit_job(self) -> Optional[FusedFitJob]:
        """Pop this round's queued refit as a fit job, or ``None``.

        Runs the tell-side bookkeeping the inline path would have run
        (fault site, refit counter, lazy surrogate build) at pop time, so
        kill-and-resume drills cover the batched path too.
        """
        if self._pending_refit_epochs is None:
            return None
        epochs = self._pending_refit_epochs
        self._pending_refit_epochs = None
        fault_point(SITE_REFIT)
        self.refit_count += 1
        metrics = self._M[: self._count]
        self._ensure_surrogate(metrics)
        return FusedFitJob(
            model=self._surrogate,
            adam=self._optimizer,
            inputs=self._U[: self._count],
            targets=self._output_scaler.transform(metrics),
            epochs=epochs,
            batch_size=self.config.surrogate_batch_size,
            rng=self.rng,
        )

    def _refit_surrogate(self, epochs: int) -> None:
        if self._refit_deferred:
            self._pending_refit_epochs = epochs
            return
        fault_point(SITE_REFIT)
        self.refit_count += 1
        with profiled(
            "trust_region.refit",
            epochs=epochs,
            rows=self._count,
            backend=self.config.backend,
        ) as timer:
            self._refit_surrogate_inner(epochs)
        self.refit_seconds += timer.seconds

    def _ensure_surrogate(self, metrics: np.ndarray) -> None:
        """Lazily build the surrogate, its optimizer and the output scaler."""
        if self._surrogate is not None:
            return
        template = MLP(
            in_features=self.design_space.dimension,
            hidden=tuple(self.config.surrogate_hidden),
            out_features=len(self.specification.metric_names),
            rng=np.random.default_rng(self.config.seed + 1),
        )
        if self.config.backend == "fused":
            self._surrogate = FusedMLP.from_module(template)
            self._optimizer = FusedAdam(self._surrogate, lr=self.config.learning_rate)
        else:
            self._surrogate = template
            self._optimizer = Adam(template.parameters(), lr=self.config.learning_rate)
        # The output scaler is fitted once on the Monte-Carlo seed and
        # then frozen: retargeting it every refit would silently shift
        # the regression problem under the persistent Adam moments.
        self._output_scaler = StandardScaler().fit(metrics)

    def _refit_surrogate_inner(self, epochs: int) -> None:
        metrics = self._M[: self._count]
        self._ensure_surrogate(metrics)
        train_regressor(
            self._surrogate,
            self._U[: self._count],
            self._output_scaler.transform(metrics),
            epochs=epochs,
            batch_size=self.config.surrogate_batch_size,
            optimizer=self._optimizer,
            rng=self.rng,
            backend=self.config.backend,
        )

    # -- checkpoint/resume ---------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Dataset state plus the trust-region and surrogate extras.

        The surrogate bundle stores only what the builder cannot
        reconstruct: parameter values, Adam moments/step and the frozen
        output-scaler statistics.  The network *shape* and its
        initialization RNG are derived from the config, so restore rebuilds
        the surrogate exactly the way :meth:`_refit_surrogate_inner` does
        and then overwrites the trained values.
        """
        if self._pending_refit_epochs is not None:
            raise RuntimeError(
                "cannot snapshot with a deferred refit still pending; "
                "flush the round's refit jobs first"
            )
        state = super().state_dict()
        state["seeded"] = self._seeded
        state["iterating"] = self._iterating
        state["radius"] = self._radius
        if self._surrogate is None:
            state["surrogate"] = None
        else:
            state["surrogate"] = {
                "params": self._surrogate.state_dict(),
                "adam": self._optimizer.state_dict(),
                "scaler_mean": self._output_scaler.mean_.copy(),
                "scaler_std": self._output_scaler.std_.copy(),
            }
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self._seeded = state["seeded"]
        self._iterating = state["iterating"]
        self._radius = state["radius"]
        bundle = state["surrogate"]
        if bundle is None:
            self._surrogate = None
            self._optimizer = None
            self._output_scaler = None
            return
        # The same construction sequence as the first refit: template MLP
        # from the derived seed, optionally fused, fresh Adam — then the
        # checkpointed values land on top.
        template = MLP(
            in_features=self.design_space.dimension,
            hidden=tuple(self.config.surrogate_hidden),
            out_features=len(self.specification.metric_names),
            rng=np.random.default_rng(self.config.seed + 1),
        )
        if self.config.backend == "fused":
            self._surrogate = FusedMLP.from_module(template)
            self._optimizer = FusedAdam(self._surrogate, lr=self.config.learning_rate)
        else:
            self._surrogate = template
            self._optimizer = Adam(template.parameters(), lr=self.config.learning_rate)
        self._surrogate.load_state_dict(bundle["params"])
        self._optimizer.load_state_dict(bundle["adam"])
        scaler = StandardScaler()
        scaler.mean_ = np.asarray(bundle["scaler_mean"], dtype=np.float64).copy()
        scaler.std_ = np.asarray(bundle["scaler_std"], dtype=np.float64).copy()
        self._output_scaler = scaler

    def _rank_candidates(self, candidates: np.ndarray, keep: int) -> np.ndarray:
        """Indices of the predicted-best ``keep`` candidates, best first.

        The satisfaction score saturates at 0 for every predicted-feasible
        candidate, so inside a converged trust region large parts of the
        pool tie exactly.  Ranking is therefore lexicographic: the clipped
        score first, the *worst* predicted margin as the tie-break — among
        candidates predicted feasible, prefer the one most robustly so
        (maximin), instead of an arbitrary sort-order accident.

        ``np.argpartition`` pre-selects by score so the bulk of the pool is
        never fully sorted; when score ties straddle the partition boundary
        the slice is widened to *all* boundary-tied candidates before the
        tie-break, so the maximin choice is taken over every candidate
        with an equal claim, not an arbitrary partition accident.
        """
        unit = self.design_space.to_unit(candidates)
        predicted = self._surrogate.predict(unit)
        metrics = self._output_scaler.inverse_transform(predicted)
        margins = self.specification.margins(metrics)
        scores = np.minimum(margins, 0.0).sum(axis=1)
        worst = margins.min(axis=1)
        if keep < scores.shape[0]:
            top = np.argpartition(scores, -keep)[-keep:]
            threshold = scores[top].min()
            tied = np.flatnonzero(scores >= threshold)
            if tied.size > keep:
                top = tied
        else:
            top = np.arange(scores.shape[0])
        # lexsort is ascending on the last key first: negate both keys to
        # get score-descending with worst-margin-descending tie-breaks.
        return top[np.lexsort((-worst[top], -scores[top]))][:keep]

    # -- ask/tell protocol ---------------------------------------------
    def ask(self) -> np.ndarray:
        """Next batch: Monte-Carlo seed first, trust-region proposals after.

        Line 1-3 of Algorithm 1 on the first call (uniform exploration,
        warm-start points placed first so they always make the cut); lines
        5-7 afterwards (L-infinity ball around the incumbent, surrogate
        ranking with maximin tie-breaks, duplicates replaced by the next
        best-ranked candidates).  When the whole region is already
        evaluated the ask falls back to Monte-Carlo exploration so the
        budget is never wasted; an empty batch means even that is
        exhausted.
        """
        config = self.config
        if self._done:
            return self._empty_batch()
        if not self._seeded:
            self._seeded = True
            seed_points = self.design_space.sample(self.rng, config.initial_samples)
            if self._initial_points is not None:
                seed_points = np.vstack([self._initial_points, seed_points])
            rows, _ = self._select_new(seed_points, limit=config.max_evaluations)
            if rows.shape[0] == 0:
                self._done = True
            return rows
        center = self._X[self._best]
        candidates = self.design_space.sample_ball(
            self.rng, center, self._radius, config.candidate_pool
        )
        order = self._rank_candidates(candidates, keep=4 * config.batch_size)
        # The final iteration may have less budget left than a full batch;
        # never propose past max_evaluations.
        step = min(config.batch_size, config.max_evaluations - self._count)
        rows, _ = self._select_new(candidates[order], limit=step)
        if rows.shape[0] == 0:
            rows, _ = self._select_new(
                self.design_space.sample(self.rng, config.batch_size), limit=step
            )
            if rows.shape[0] == 0:
                self._done = True
        return rows

    @contract(pre=tell_precondition)
    def tell(self, samples: np.ndarray, metrics: np.ndarray) -> None:
        """Fold evaluated metrics back in: dataset, surrogate, radius.

        The first tell processes the Monte-Carlo seed (initial surrogate
        fit, line 4); later tells run line 8-10 — incremental refit with
        persistent Adam moments, but only when another iteration will
        actually consume it (a refit after the deciding batch would train a
        surrogate nobody queries, and the RNG draws it would consume are
        equally dead, so skipping cannot shift a trajectory) — then the
        trust-region radius update and the history record.
        """
        config = self.config
        samples = np.atleast_2d(np.asarray(samples, dtype=np.float64))
        metrics = np.atleast_2d(np.asarray(metrics, dtype=np.float64))
        previous = self._scores[self._best] if self._best >= 0 else -np.inf
        self._append(samples, self._row_keys(samples), metrics)
        if not self._iterating:
            self._iterating = True
            self._radius = config.initial_radius
            self._update_done()
            # Only worth fitting a surrogate when a search will actually run.
            if self._scores[self._best] < FEASIBLE_TOL:
                self._refit_surrogate(epochs=config.initial_epochs)
            return
        improved = self._scores[self._best] > previous + 1e-12
        self._update_done()
        if not self._done:
            self._refit_surrogate(epochs=config.refit_epochs)
        if improved:
            self._radius = min(self._radius * config.expand, config.max_radius)
        else:
            self._radius = max(self._radius * config.shrink, config.min_radius)
        self._history.append(
            IterationRecord(
                evaluations=self._count,
                radius=self._radius,
                best_score=float(self._scores[self._best]),
                improved=bool(improved),
            )
        )


register_optimizer("trust_region", TrustRegionSearch)
