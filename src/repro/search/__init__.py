"""Surrogate-assisted trust-region sizing search (Algorithm 1 + Section IV-E)."""

from repro.search.eval_cache import CornerEvaluator, EvaluationCache
from repro.search.progressive import (
    CORNER_ENGINES,
    CornerReport,
    ProgressiveConfig,
    ProgressiveResult,
    progressive_pvt_search,
)
from repro.search.sizing import size_problem
from repro.search.spec import Spec, Specification
from repro.search.trust_region import (
    SEARCH_BACKENDS,
    IterationRecord,
    SearchResult,
    TrustRegionConfig,
    TrustRegionSearch,
)

__all__ = [
    "CORNER_ENGINES",
    "CornerEvaluator",
    "CornerReport",
    "EvaluationCache",
    "IterationRecord",
    "ProgressiveConfig",
    "ProgressiveResult",
    "SEARCH_BACKENDS",
    "SearchResult",
    "Spec",
    "Specification",
    "TrustRegionConfig",
    "TrustRegionSearch",
    "progressive_pvt_search",
    "size_problem",
]
