"""Surrogate-assisted trust-region sizing search (Algorithm 1 + Section IV-E).

Layered since the ask/tell redesign: optimizers (``Optimizer`` protocol —
``TrustRegionSearch``, ``RandomSearch``, ``CrossEntropySearch``) own the
proposal side; the ``Campaign`` driver owns evaluation (budget, the
cross-phase ``EvaluationCache``, multi-seed vectorized corner passes);
``progressive_pvt_search`` and ``size_problem`` are the historical entry
points, kept bit-exact as single-seed campaign compat layers.
"""

from repro.search.campaign import Campaign, CampaignResult, EvaluationHandle
from repro.search.eval_cache import CornerEvaluator, EvaluationCache
from repro.search.optimizer import (
    CrossEntropySearch,
    DatasetOptimizer,
    Incumbent,
    IterationRecord,
    Optimizer,
    RandomSearch,
    SearchResult,
    available_optimizers,
    get_optimizer,
    register_optimizer,
)
from repro.search.progressive import (
    CORNER_ENGINES,
    CornerReport,
    ProgressiveConfig,
    ProgressiveResult,
    progressive_pvt_search,
)
from repro.search.sizing import build_campaign, resolve_config, size_problem
from repro.search.spec import Spec, Specification
from repro.search.trust_region import (
    SEARCH_BACKENDS,
    TrustRegionConfig,
    TrustRegionSearch,
)

__all__ = [
    "CORNER_ENGINES",
    "Campaign",
    "CampaignResult",
    "CornerEvaluator",
    "CornerReport",
    "CrossEntropySearch",
    "DatasetOptimizer",
    "EvaluationCache",
    "EvaluationHandle",
    "Incumbent",
    "IterationRecord",
    "Optimizer",
    "ProgressiveConfig",
    "ProgressiveResult",
    "RandomSearch",
    "SEARCH_BACKENDS",
    "SearchResult",
    "Spec",
    "Specification",
    "TrustRegionConfig",
    "TrustRegionSearch",
    "available_optimizers",
    "build_campaign",
    "get_optimizer",
    "progressive_pvt_search",
    "register_optimizer",
    "resolve_config",
    "size_problem",
]
