"""Generic entry point: size any registered :class:`SizingProblem`.

The ask/tell optimizers and the Campaign driver are already generic over
evaluation handles; this module closes the loop with the topology registry
so one call sizes *any* workload in the zoo::

    from repro.search.sizing import size_problem
    result = size_problem("folded_cascode", tier="smoke", seed=0)

It is the layer both the opamp demo and the ``repro.bench`` harness sit on,
which keeps their RNG behaviour identical: a benchmark run of
``two_stage_opamp`` at the ``nominal`` tier reproduces the historical demo
bit-for-bit at the same seed.  :func:`build_campaign` is the multi-seed
sibling: the same problem resolution, returning the ready-to-run
:class:`~repro.search.campaign.Campaign` instead of running one seed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Optional, Sequence, Type, Union

from repro.circuits.pvt import PVTCondition
from repro.search.progressive import (
    ProgressiveConfig,
    ProgressiveResult,
    _as_progressive_config,
)
from repro.search.spec import Spec
from repro.search.trust_region import TrustRegionConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuits.topologies import SizingProblem
    from repro.search.campaign import Campaign


def _with_overrides(config, **overrides):
    """Explicit-wins/``None``-defers override application, deduplicated.

    Every keyword whose value is not ``None`` and differs from the config's
    current field is applied in one :func:`dataclasses.replace`; when
    nothing changes the config is returned untouched (no gratuitous copy).
    """
    changed = {
        name: value
        for name, value in overrides.items()
        if value is not None and value != getattr(config, name)
    }
    return replace(config, **changed) if changed else config


def resolve_config(
    config: Union[TrustRegionConfig, ProgressiveConfig, None] = None,
    seed: Optional[int] = None,
    backend: Optional[str] = None,
    corner_engine: Optional[str] = None,
    optimizer: Optional[str] = None,
    max_phases: Optional[int] = None,
    refit_mode: Optional[str] = None,
) -> ProgressiveConfig:
    """Combine the config object with the scalar override knobs.

    Every override follows the same rule: an explicit value always wins
    (via :func:`dataclasses.replace`), ``None`` defers to the config.
    ``seed`` and ``backend`` land on the per-phase
    :class:`TrustRegionConfig`; ``corner_engine``, ``optimizer``,
    ``max_phases`` and ``refit_mode`` on the :class:`ProgressiveConfig`.  A bare
    :class:`TrustRegionConfig` (or ``None``) is wrapped without copying, so
    ``resolve_config(config).trust_region is config`` holds when nothing
    changes.
    """
    progressive = _as_progressive_config(config, None)
    trust = _with_overrides(progressive.trust_region, seed=seed, backend=backend)
    return _with_overrides(
        progressive,
        trust_region=trust if trust is not progressive.trust_region else None,
        corner_engine=corner_engine,
        optimizer=optimizer,
        max_phases=max_phases,
        refit_mode=refit_mode,
    )


def build_campaign(
    topology: Union[str, Type["SizingProblem"]],
    technology: str = "bsim45",
    load_cap: float = 2e-12,
    specs: Optional[Sequence[Spec]] = None,
    tier: str = "nominal",
    corners: Optional[Sequence[PVTCondition]] = None,
    config: Union[TrustRegionConfig, ProgressiveConfig, None] = None,
    seeds: Optional[Sequence[int]] = None,
    cache_path: Optional[str] = None,
    cache_preload: Sequence[str] = (),
    **overrides,
) -> "Campaign":
    """Resolve a topology into a ready-to-run multi-seed Campaign.

    ``overrides`` are the scalar knobs of :func:`resolve_config` (``seed``,
    ``backend``, ``corner_engine``, ``optimizer``, ``max_phases``,
    ``refit_mode``), each
    explicit-wins/``None``-defers against ``config``.  ``seeds`` selects
    the campaign members (defaulting to the resolved config's seed); the
    spec set defaults to the topology's ``default_specs()`` at ``tier``.
    ``cache_path`` points the campaign's evaluation cache at a persistent
    on-disk store (warm starts across processes); ``cache_preload`` adds
    read-only stores to warm from (the sharded executor's master store).
    """
    # Imported lazily: the topology modules import repro.search.spec, so a
    # module-level import here would be circular.
    from repro.circuits.topologies import get_topology
    from repro.search.campaign import Campaign

    problem_cls = get_topology(topology) if isinstance(topology, str) else topology
    problem = problem_cls(technology, load_cap=load_cap)
    if specs is None:
        ladder = problem.default_specs()
        try:
            specs = ladder[tier]
        except KeyError:
            raise KeyError(
                f"topology {problem.name!r} has no spec tier {tier!r}; "
                f"available: {', '.join(sorted(ladder))}"
            ) from None
    progressive = resolve_config(config, **overrides)
    return Campaign(
        problem.evaluation_handle(),
        specs,
        corners=corners,
        config=progressive,
        seeds=seeds,
        cache_path=cache_path,
        cache_preload=cache_preload,
    )


def size_problem(
    topology: Union[str, Type["SizingProblem"]],
    technology: str = "bsim45",
    load_cap: float = 2e-12,
    specs: Optional[Sequence[Spec]] = None,
    tier: str = "nominal",
    corners: Optional[Sequence[PVTCondition]] = None,
    config: Union[TrustRegionConfig, ProgressiveConfig, None] = None,
    seed: Optional[int] = None,
    max_phases: Optional[int] = None,
    backend: Optional[str] = None,
    corner_engine: Optional[str] = None,
    optimizer: Optional[str] = None,
    refit_mode: Optional[str] = None,
) -> ProgressiveResult:
    """Run the progressive sizing search on one topology (single seed).

    Compatibility layer over a single-seed
    :class:`~repro.search.campaign.Campaign`; bit-exact versus the
    historical sequential implementation at a fixed seed/config.

    Parameters
    ----------
    topology:
        Registry name (see :func:`repro.circuits.topologies.available_topologies`)
        or a :class:`SizingProblem` subclass.
    technology, load_cap:
        Forwarded to the topology constructor at every corner.
    specs:
        Explicit constraint set; defaults to the topology's ``default_specs()``
        at the requested ``tier``.
    tier:
        Spec-ladder tier used when ``specs`` is not given.
    corners:
        Sign-off corner set; defaults to the nine-corner grid.
    config, seed:
        Search hyper-parameters; an explicit ``seed`` overrides the
        config's seed (see :func:`resolve_config`).
    max_phases:
        Progressive corner-hardening round budget; ``None`` defers to the
        config (:class:`ProgressiveConfig` default: 4).
    backend:
        Surrogate training backend (``"fused"`` or ``"autodiff"``); an
        explicit value overrides the config's ``backend`` field.
    corner_engine:
        Multi-corner evaluation engine: ``"stacked"`` (default, the whole
        corner grid as one NumPy broadcast) or ``"looped"`` (per-corner
        loop, the bit-identical parity oracle).  ``None`` defers to the
        config.
    optimizer:
        Registered search strategy each phase runs (``"trust_region"``
        default; ``"random"``/``"cross_entropy"`` baselines).  ``None``
        defers to the config.
    refit_mode:
        Surrogate-refit dispatch under the campaign: ``"batched"`` (one
        stacked training kernel per round) or ``"sequential"`` (inline
        per-seed refits) — bit-identical per seed.  ``None`` defers to the
        config.
    """
    campaign = build_campaign(
        topology,
        technology=technology,
        load_cap=load_cap,
        specs=specs,
        tier=tier,
        corners=corners,
        config=config,
        seeds=None,
        seed=seed,
        backend=backend,
        corner_engine=corner_engine,
        optimizer=optimizer,
        max_phases=max_phases,
        refit_mode=refit_mode,
    )
    return campaign.run().results[0]
