"""Generic entry point: size any registered :class:`SizingProblem`.

The trust-region agent and the progressive PVT loop are already generic over
batch evaluators; this module closes the loop with the topology registry so
one call sizes *any* workload in the zoo::

    from repro.search.sizing import size_problem
    result = size_problem("folded_cascode", tier="smoke", seed=0)

It is the layer both the opamp demo and the ``repro.bench`` harness sit on,
which keeps their RNG behaviour identical: a benchmark run of
``two_stage_opamp`` at the ``nominal`` tier reproduces the historical demo
bit-for-bit at the same seed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Optional, Sequence, Type, Union

from repro.circuits.pvt import PVTCondition
from repro.search.progressive import (
    ProgressiveConfig,
    ProgressiveResult,
    progressive_pvt_search,
)
from repro.search.spec import Spec
from repro.search.trust_region import TrustRegionConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuits.topologies import SizingProblem


def resolve_config(
    config: Optional[TrustRegionConfig],
    seed: Optional[int],
    backend: Optional[str] = None,
) -> TrustRegionConfig:
    """Combine the ``config``/``seed``/``backend`` knobs without conflicts.

    ``seed`` used to be silently ignored whenever an explicit ``config`` was
    passed; now an explicit ``seed`` always wins (via
    :func:`dataclasses.replace`), and ``seed=None`` means "use the config's
    seed".  ``backend`` follows the same rule: an explicit value overrides
    the config's training backend, ``None`` defers to it.
    """
    if config is None:
        config = TrustRegionConfig(seed=0 if seed is None else seed)
        if backend is not None:
            config = replace(config, backend=backend)
        return config
    overrides = {}
    if seed is not None and seed != config.seed:
        overrides["seed"] = seed
    if backend is not None and backend != config.backend:
        overrides["backend"] = backend
    return replace(config, **overrides) if overrides else config


def size_problem(
    topology: Union[str, Type[SizingProblem]],
    technology: str = "bsim45",
    load_cap: float = 2e-12,
    specs: Optional[Sequence[Spec]] = None,
    tier: str = "nominal",
    corners: Optional[Sequence[PVTCondition]] = None,
    config: Optional[TrustRegionConfig] = None,
    seed: Optional[int] = None,
    max_phases: int = 4,
    backend: Optional[str] = None,
    corner_engine: Optional[str] = None,
) -> ProgressiveResult:
    """Run the progressive trust-region sizing search on one topology.

    Parameters
    ----------
    topology:
        Registry name (see :func:`repro.circuits.topologies.available_topologies`)
        or a :class:`SizingProblem` subclass.
    technology, load_cap:
        Forwarded to the topology constructor at every corner.
    specs:
        Explicit constraint set; defaults to the topology's ``default_specs()``
        at the requested ``tier``.
    tier:
        Spec-ladder tier used when ``specs`` is not given.
    corners:
        Sign-off corner set; defaults to the nine-corner grid.
    config, seed:
        Trust-region hyper-parameters; an explicit ``seed`` overrides the
        config's seed (see :func:`resolve_config`).
    max_phases:
        Progressive corner-hardening round budget.
    backend:
        Surrogate training backend (``"fused"`` or ``"autodiff"``); an
        explicit value overrides the config's ``backend`` field.
    corner_engine:
        Multi-corner evaluation engine: ``"stacked"`` (default, the whole
        corner grid as one NumPy broadcast) or ``"looped"`` (per-corner
        loop, the bit-identical parity oracle).  ``None`` defers to the
        :class:`~repro.search.progressive.ProgressiveConfig` default.
    """
    # Imported lazily: the topology modules import repro.search.spec, so a
    # module-level import here would be circular.
    from repro.circuits.topologies import get_topology

    problem_cls = get_topology(topology) if isinstance(topology, str) else topology

    def factory(condition: PVTCondition):
        return problem_cls(technology, condition, load_cap).evaluate_batch

    nominal_problem = problem_cls(technology, load_cap=load_cap)
    if specs is None:
        ladder = nominal_problem.default_specs()
        try:
            specs = ladder[tier]
        except KeyError:
            raise KeyError(
                f"topology {nominal_problem.name!r} has no spec tier {tier!r}; "
                f"available: {', '.join(sorted(ladder))}"
            ) from None
    progressive = ProgressiveConfig(
        trust_region=resolve_config(config, seed, backend),
        max_phases=max_phases,
    )
    if corner_engine is not None:
        progressive = replace(progressive, corner_engine=corner_engine)
    return progressive_pvt_search(
        evaluator_factory=factory,
        design_space=nominal_problem.design_space(),
        specs=specs,
        metric_names=nominal_problem.METRIC_NAMES,
        corners=corners,
        config=progressive,
        corner_evaluator=nominal_problem.evaluate_corners,
    )
