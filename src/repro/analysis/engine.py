"""Lint engine: file discovery, pragma suppression, rule dispatch.

The engine parses each Python source once with stdlib :mod:`ast`, wraps it
in a :class:`ModuleSource` (path, tree, raw lines, and the repo-specific
classification the rules key on — "is this a test file", "is this a hot
module"), runs every selected rule from :mod:`repro.analysis.rules`, and
filters findings through the ``# analysis: allow(rule-id)`` pragma on the
offending line or the line directly above.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.rules import Finding, iter_rules

#: ``# analysis: allow(rule-a, rule-b)`` — optionally followed by free text.
_PRAGMA = re.compile(r"#\s*analysis:\s*allow\(([^)]*)\)")


@dataclass(frozen=True)
class AnalysisConfig:
    """What the rules consider "hot" and which paths are skipped entirely.

    The defaults encode this repo's layout; substring matching on
    forward-slashed paths keeps the config portable.
    """

    #: Modules whose *every* function is allocation-sensitive (the fused
    #: training backend, the evaluation cache, the Campaign round loop).
    hot_modules: Tuple[str, ...] = (
        "repro/nn/fused.py",
        "repro/search/eval_cache.py",
        "repro/search/campaign.py",
    )
    #: Function names that are hot wherever they are defined (the stacked
    #: corner-engine entry points and per-topology hooks).
    hot_functions: Tuple[str, ...] = (
        "evaluate_corners",
        "evaluate_batch",
        "_small_signal_parts",
        "_metrics_from_parts",
    )
    #: Directory names never descended into.
    exclude_dirs: Tuple[str, ...] = (
        ".git",
        "__pycache__",
        ".pytest_cache",
        "build",
        "dist",
        ".eggs",
    )
    #: Path substrings marking test code (some rules only apply to library code).
    test_markers: Tuple[str, ...] = ("tests/", "test_", "conftest.py")
    #: Modules sanctioned to read wall clocks directly (the observability
    #: layer everything else is expected to time through).
    timing_modules: Tuple[str, ...] = ("repro/obs/",)
    #: Modules sanctioned to open files in write mode directly (the atomic
    #: write-temp + fsync + rename helpers everything else routes through,
    #: and the CRC-framed append-only cache store).
    durable_write_modules: Tuple[str, ...] = ("repro/resilience/",)
    #: Restrict linting to these rule ids (``None`` = all registered rules).
    select: Optional[Tuple[str, ...]] = None

    def is_hot_module(self, path: str) -> bool:
        normalized = path.replace(os.sep, "/")
        return any(marker in normalized for marker in self.hot_modules)

    def is_timing_module(self, path: str) -> bool:
        normalized = path.replace(os.sep, "/")
        return any(marker in normalized for marker in self.timing_modules)

    def is_durable_write_module(self, path: str) -> bool:
        normalized = path.replace(os.sep, "/")
        return any(marker in normalized for marker in self.durable_write_modules)

    def is_test_path(self, path: str) -> bool:
        normalized = path.replace(os.sep, "/")
        basename = normalized.rsplit("/", 1)[-1]
        for marker in self.test_markers:
            if marker.endswith("/"):
                if marker in normalized:
                    return True
            elif basename == marker or basename.startswith(marker):
                return True
        return False


@dataclass
class ModuleSource:
    """One parsed module plus everything a rule needs to classify it."""

    path: str
    tree: ast.Module
    lines: List[str]
    config: AnalysisConfig

    @property
    def is_test(self) -> bool:
        return self.config.is_test_path(self.path)

    @property
    def is_hot_module(self) -> bool:
        return self.config.is_hot_module(self.path)

    @property
    def is_timing_module(self) -> bool:
        return self.config.is_timing_module(self.path)

    @property
    def is_durable_write_module(self) -> bool:
        return self.config.is_durable_write_module(self.path)

    def allowed_rules(self, line: int) -> Set[str]:
        """Rule ids suppressed at ``line`` (pragma there or on the line above)."""
        allowed: Set[str] = set()
        for lineno in (line, line - 1):
            if 1 <= lineno <= len(self.lines):
                match = _PRAGMA.search(self.lines[lineno - 1])
                if match:
                    allowed.update(
                        token.strip() for token in match.group(1).split(",") if token.strip()
                    )
        return allowed


def lint_source(
    source: str,
    path: str = "<string>",
    config: Optional[AnalysisConfig] = None,
) -> List[Finding]:
    """Lint one source string; findings are pragma-filtered and line-sorted."""
    config = config or AnalysisConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Finding(
                "syntax-error",
                path,
                error.lineno or 0,
                f"could not parse: {error.msg}",
            )
        ]
    module = ModuleSource(path, tree, source.splitlines(), config)
    findings: List[Finding] = []
    for rule in iter_rules(config.select):
        for finding in rule.check(module):
            if finding.rule not in module.allowed_rules(finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def _python_files(paths: Sequence[str], config: AnalysisConfig) -> Iterable[str]:
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for root, dirs, names in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d not in config.exclude_dirs)
            for name in sorted(names):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def lint_paths(
    paths: Sequence[str],
    config: Optional[AnalysisConfig] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directory trees)."""
    config = config or AnalysisConfig()
    findings: List[Finding] = []
    for filename in _python_files(paths, config):
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
        findings.extend(lint_source(source, filename, config))
    return findings
