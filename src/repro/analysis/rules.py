"""The repo-specific lint rules and their registry.

Each rule encodes one invariant the reproduction's correctness story leans
on (see the rule docstrings for the rationale).  Rules are plain classes
walking a parsed module's AST and yielding :class:`Finding`\\ s; they
register themselves with :func:`register_rule`, mirroring the optimizer and
topology registries, so third-party checks plug in the same way::

    from repro.analysis import LintRule, register_rule

    @register_rule
    class MyRule(LintRule):
        id = "my-rule"
        summary = "one-line rationale"
        def check(self, module): ...

Findings are suppressed per line with a pragma comment —
``# analysis: allow(rule-id)`` on the offending line (or the line above) —
so intentional exceptions stay visible and greppable in the source.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Set, Tuple, Type

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.engine import ModuleSource


@dataclass(frozen=True)
class Finding:
    """One lint violation: rule id, location, human-readable message."""

    rule: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class LintRule:
    """Base class: subclasses set ``id``/``summary`` and implement ``check``."""

    #: Stable rule identifier used in CLI output, ``--select`` and pragmas.
    id: str = ""
    #: One-line rationale shown by ``python -m repro.analysis rules``.
    summary: str = ""

    def check(self, module: "ModuleSource") -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(self, module: "ModuleSource", node: ast.AST, message: str) -> Finding:
        return Finding(self.id, module.path, getattr(node, "lineno", 0), message)


# ----------------------------------------------------------------------
# Rule registry (mirrors the optimizer/topology registries).

_RULES: Dict[str, Type[LintRule]] = {}


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the registry."""
    if not cls.id:
        raise ValueError(f"rule class {cls.__name__} must set a non-empty 'id'")
    if cls.id in _RULES and _RULES[cls.id] is not cls:
        raise ValueError(f"lint rule {cls.id!r} already registered")
    _RULES[cls.id] = cls
    return cls


def available_rules() -> Tuple[str, ...]:
    """Ids of all registered rules, sorted."""
    return tuple(sorted(_RULES))


def get_rule(rule_id: str) -> Type[LintRule]:
    """Look up a rule class by id; the error lists the available ids."""
    try:
        return _RULES[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown lint rule {rule_id!r}; available: {', '.join(available_rules())}"
        ) from None


# ----------------------------------------------------------------------
# AST helpers shared by the rules.


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _walk_within(node: ast.AST, stop: Tuple[type, ...]) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested ``stop`` scopes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, stop):
            stack.extend(ast.iter_child_nodes(child))


def _function_defs(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _class_is_stacked(node: ast.ClassDef) -> bool:
    """Whether the class body sets ``supports_stacked_corners = True``."""
    for stmt in node.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "supports_stacked_corners"
                and isinstance(value, ast.Constant)
                and value.value is True
            ):
                return True
    return False


# ----------------------------------------------------------------------
# The rules.


@register_rule
class UnseededRngRule(LintRule):
    """No RNG may draw from hidden or OS-seeded state outside tests.

    ``np.random.default_rng()`` without arguments seeds itself from OS
    entropy, and the legacy ``np.random.*`` functions draw from the hidden
    process-global generator — either one anywhere in a search/training
    code path silently breaks the bit-exact trajectory locks every backend
    and engine knob is verified against.
    """

    id = "unseeded-rng"
    summary = "unseeded default_rng() or legacy global np.random.* outside tests"

    LEGACY = frozenset(
        {
            "rand",
            "randn",
            "random",
            "random_sample",
            "standard_normal",
            "normal",
            "uniform",
            "randint",
            "integers",
            "choice",
            "permutation",
            "shuffle",
            "seed",
        }
    )

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        if module.is_test:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if parts[-1] == "default_rng" and not node.args and not node.keywords:
                yield self.finding(
                    module,
                    node,
                    "default_rng() without an explicit seed/Generator is "
                    "nondeterministic (seeds from OS entropy); pass a seed or "
                    "thread an rng through",
                )
            elif (
                len(parts) >= 3
                and parts[0] in ("np", "numpy")
                and parts[-2] == "random"
                and parts[-1] in self.LEGACY
            ):
                yield self.finding(
                    module,
                    node,
                    f"legacy np.random.{parts[-1]} draws from hidden process-global "
                    "state; use an explicit np.random.Generator",
                )


@register_rule
class FloatEqualityRule(LintRule):
    """No ``==`` / ``!=`` against float values in library code.

    The engine-parity and cache stories are *bit*-exact: identity is keyed
    on byte patterns (``tobytes`` / void views / ``np.array_equal``), never
    on float comparison semantics, where a NaN-bearing row or a negative
    zero makes ``==`` lie about identity.
    """

    id = "float-equality"
    summary = "== / != on float-typed expressions (use np.array_equal/tobytes keys)"

    FLOAT_CALLS = frozenset({"float", "np.float64", "numpy.float64"})

    def _is_floaty(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.UnaryOp):
            return self._is_floaty(node.operand)
        if isinstance(node, ast.BinOp):
            return self._is_floaty(node.left) or self._is_floaty(node.right)
        if isinstance(node, ast.Call):
            return (dotted_name(node.func) or "") in self.FLOAT_CALLS
        return False

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        if module.is_test:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            if any(self._is_floaty(operand) for operand in [node.left] + node.comparators):
                yield self.finding(
                    module,
                    node,
                    "float equality comparison; bit-exact identity uses "
                    "np.array_equal or tobytes keys, tolerances use margins",
                )


@register_rule
class HotLoopAllocRule(LintRule):
    """No array allocation inside ``for``/``while`` bodies on hot paths.

    The fused backend, the evaluation cache and the Campaign round loop are
    deliberately allocation-free in their inner loops (scratch buffers,
    ``out=`` rewrites, single stacked passes); a stray ``np.zeros`` or
    ``astype`` inside one of those loops reintroduces per-iteration heap
    traffic that the PR-3/PR-4 overhauls measured and removed.  Applies to
    functions marked ``@hot_path``, to every function in the configured
    hot-module list, and to the stacked-engine hook names wherever they are
    defined.  Calls passing ``out=`` are exempt (they write into reused
    buffers); intentional one-time allocations take a pragma.
    """

    id = "hot-loop-alloc"
    summary = "array-allocating call inside a loop body of a hot-path function"

    ALLOC_FUNCS = frozenset(
        {
            "array",
            "asarray",
            "ascontiguousarray",
            "asfortranarray",
            "atleast_1d",
            "atleast_2d",
            "column_stack",
            "concatenate",
            "copy",
            "empty",
            "empty_like",
            "full",
            "full_like",
            "hstack",
            "linspace",
            "ones",
            "ones_like",
            "repeat",
            "stack",
            "tile",
            "vstack",
            "zeros",
            "zeros_like",
        }
    )
    ALLOC_METHODS = frozenset({"astype", "copy"})

    def _is_hot_function(self, module: "ModuleSource", node: ast.FunctionDef) -> bool:
        if module.is_hot_module or node.name in module.config.hot_functions:
            return True
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            name = dotted_name(target)
            if name is not None and name.split(".")[-1] == "hot_path":
                return True
        return False

    def _alloc_calls(self, loop: ast.AST) -> Iterator[Tuple[ast.Call, str]]:
        scopes = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        for node in _walk_within(loop, scopes):
            if not isinstance(node, ast.Call):
                continue
            if any(keyword.arg == "out" for keyword in node.keywords):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if parts[0] in ("np", "numpy") and parts[-1] in self.ALLOC_FUNCS:
                yield node, name
            elif len(parts) > 1 and parts[0] not in ("np", "numpy") and parts[-1] in self.ALLOC_METHODS:
                yield node, name

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        if module.is_test:
            return
        scopes = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        for function in _function_defs(module.tree):
            if not self._is_hot_function(module, function):
                continue
            # A call nested in several loops is still one finding.
            seen: Set[int] = set()
            for node in _walk_within(function, scopes):
                if not isinstance(node, (ast.For, ast.While)):
                    continue
                for call, name in self._alloc_calls(node):
                    if id(call) in seen:
                        continue
                    seen.add(id(call))
                    yield self.finding(
                        module,
                        call,
                        f"{name}(...) allocates inside a loop of hot-path "
                        f"function {function.name!r}; hoist into a reused "
                        "buffer or pass out=",
                    )


@register_rule
class CornerPythonLoopRule(LintRule):
    """No Python-level iteration over the corner axis in stacked topologies.

    A topology that sets ``supports_stacked_corners = True`` promises that
    the PVT grid rides a single NumPy broadcast; a ``for corner in
    corners`` anywhere in such a class silently reintroduces the per-corner
    Python loop the tensorized engine exists to remove — and its cost scales
    with the corner count (45x on the full grid).  The ``*_looped`` parity
    oracles are exempt by naming convention.
    """

    id = "corner-python-loop"
    summary = "Python loop over a corners axis inside a stacked-corner topology"

    CORNER_NAMES = ("corners", "corner_grid")

    def _is_corner_iterable(self, node: ast.expr) -> bool:
        name = dotted_name(node)
        if name is None:
            return False
        tail = name.split(".")[-1]
        return tail in self.CORNER_NAMES or tail.endswith("_corners")

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        if module.is_test:
            return
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef) or not _class_is_stacked(cls):
                continue
            for function in cls.body:
                if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if "looped" in function.name:
                    continue
                for node in _walk_within(function, (ast.ClassDef,)):
                    iterables: List[ast.expr] = []
                    if isinstance(node, ast.For):
                        iterables.append(node.iter)
                    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                        iterables.extend(gen.iter for gen in node.generators)
                    for iterable in iterables:
                        if self._is_corner_iterable(iterable):
                            yield self.finding(
                                module,
                                node,
                                f"Python iteration over corners in {function.name!r} "
                                "of a supports_stacked_corners topology; the corner "
                                "grid must ride the stacked tensor axis",
                            )


@register_rule
class NakedExceptRule(LintRule):
    """No bare ``except:`` — it swallows everything, including exit signals.

    A bare handler catches ``KeyboardInterrupt``/``SystemExit`` and masks
    contract violations and shape errors as ordinary control flow, which is
    exactly how a broken invariant survives to corrupt a cache.
    """

    id = "naked-except"
    summary = "bare except: handler (catches SystemExit/KeyboardInterrupt too)"

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module, node, "bare except:; catch a concrete exception type"
                )


@register_rule
class MutableDefaultRule(LintRule):
    """No mutable default arguments.

    A list/dict/set default is created once at definition time and shared
    across calls — hidden cross-call state, the exact opposite of the
    reproducibility story every config dataclass here is built around
    (note ``dataclasses.field(default_factory=...)``).
    """

    id = "mutable-default"
    summary = "mutable default argument (shared across calls)"

    BUILDER_CALLS = frozenset({"list", "dict", "set"})

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call):
            return (dotted_name(node.func) or "") in self.BUILDER_CALLS
        return False

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        for function in _function_defs(module.tree):
            defaults = list(function.args.defaults) + [
                default for default in function.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        module,
                        default,
                        f"mutable default argument in {function.name!r}; "
                        "default to None (or use a dataclass default_factory)",
                    )


@register_rule
class MissingParityOracleRule(LintRule):
    """Every stacked evaluator must keep its looped parity oracle.

    The stacked corner engine is only trustworthy because a bit-identical
    per-corner Python loop exists to check it against.  A class defining
    ``evaluate_corners`` without ``evaluate_corners_looped`` — or opting
    into ``supports_stacked_corners`` without both stacked-engine hooks —
    ships a fast path that nothing can vouch for.
    """

    id = "missing-parity-oracle"
    summary = "stacked evaluate_corners without a looped parity oracle / hooks"

    STACKED_HOOKS = ("_small_signal_parts", "_metrics_from_parts")

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        if module.is_test:
            return
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            methods = {
                stmt.name
                for stmt in cls.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "evaluate_corners" in methods and "evaluate_corners_looped" not in methods:
                yield self.finding(
                    module,
                    cls,
                    f"class {cls.name!r} defines evaluate_corners without an "
                    "evaluate_corners_looped parity oracle",
                )
            if _class_is_stacked(cls):
                missing = [hook for hook in self.STACKED_HOOKS if hook not in methods]
                if missing:
                    yield self.finding(
                        module,
                        cls,
                        f"class {cls.name!r} sets supports_stacked_corners = True "
                        f"but does not define {', '.join(missing)}",
                    )


@register_rule
class AdHocTimingRule(LintRule):
    """All wall-clock reads go through :mod:`repro.obs`, not raw ``time``.

    Scattered ``time.perf_counter()`` pairs are exactly how the pre-obs
    codebase accumulated unlabelled, un-aggregatable timings: each one is
    invisible to the trace report, double-counts nothing consistently, and
    bit-rots when the code around it moves.  The ``profiled(...)`` context
    manager and ``@span`` decorator record the same duration *and* feed the
    structured trace/metrics registry, so library code must use those.  The
    observability layer itself (``repro/obs/``) is the sanctioned home of
    the raw clock reads; tests are exempt too.
    """

    id = "ad-hoc-timing"
    summary = "direct time.perf_counter()/time.time() outside repro.obs"

    CLOCKS = frozenset(
        {
            "perf_counter",
            "perf_counter_ns",
            "time",
            "monotonic",
            "monotonic_ns",
            "process_time",
            "process_time_ns",
        }
    )

    def _clock_imports(self, module: "ModuleSource") -> Set[str]:
        """Local names bound to clock functions via ``from time import ...``."""
        names: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in self.CLOCKS:
                        names.add(alias.asname or alias.name)
        return names

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        if module.is_test or module.is_timing_module:
            return
        bare_clocks = self._clock_imports(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            is_dotted_clock = (
                len(parts) == 2 and parts[0] == "time" and parts[1] in self.CLOCKS
            )
            is_bare_clock = len(parts) == 1 and parts[0] in bare_clocks
            if is_dotted_clock or is_bare_clock:
                yield self.finding(
                    module,
                    node,
                    f"{name}() reads the wall clock directly; time through "
                    "repro.obs (profiled(...) context manager or @span) so "
                    "the duration lands in the trace and metrics registry",
                )


@register_rule
class NonAtomicArtifactWriteRule(LintRule):
    """Artifact writes go through :mod:`repro.resilience.atomic`.

    A raw ``open(path, "w")`` truncates the destination before the new
    content exists — a crash mid-dump leaves a half-written (or empty)
    BENCH JSON, trace, or snapshot where a complete previous version used
    to be.  The atomic helpers (write-temp + fsync + ``os.replace``) make
    every committed artifact all-or-nothing, so library code outside
    ``repro/resilience/`` must not open files in a write/append mode
    directly.  Deliberate streaming sinks (e.g. the tracer's ``.partial``
    sidecar, finalized by rename on close) take a pragma.
    """

    id = "non-atomic-artifact-write"
    summary = "raw open(..., 'w'/'a') outside repro/resilience (use atomic_write_*)"

    #: Mode characters that truncate or mutate the destination in place.
    WRITE_CHARS = frozenset("wax+")

    def _write_mode(self, node: ast.Call) -> Optional[str]:
        """The call's constant mode string when it writes, else ``None``."""
        mode: Optional[ast.expr] = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if not isinstance(mode, ast.Constant) or not isinstance(mode.value, str):
            return None
        if self.WRITE_CHARS & set(mode.value):
            return mode.value
        return None

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        if module.is_test or module.is_durable_write_module:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or name.split(".")[-1] not in ("open", "fdopen"):
                continue
            mode = self._write_mode(node)
            if mode is not None:
                yield self.finding(
                    module,
                    node,
                    f"open(..., {mode!r}) writes an artifact non-atomically; "
                    "a crash mid-write leaves a torn file — route through "
                    "repro.resilience.atomic (atomic_write_bytes/text/json)",
                )


@register_rule
class SpawnUnsafeRule(LintRule):
    """All :mod:`multiprocessing` use goes through ``get_context("spawn")``.

    The engine process holds NumPy thread pools, open store file handles
    and a module-level tracer; ``fork`` duplicates all of that into the
    child in undefined states (the classic deadlocked-after-fork lock, or
    two processes appending to one store handle).  A bare ``Pool()`` /
    ``Process()`` inherits the platform default start method — ``fork`` on
    Linux — so the only sanctioned construction is an explicit
    ``multiprocessing.get_context("spawn")`` and factories called on that
    context (how :class:`repro.shard.ShardedExecutor` spawns workers).
    ``set_start_method`` is flagged unless it pins ``"spawn"``: mutating
    the *global* default still leaves every bare factory ambiguous to
    readers, and it collides with libraries doing the same.
    """

    id = "spawn-unsafe"
    summary = 'multiprocessing use without an explicit get_context("spawn")'

    #: Module-level factories whose bare use inherits the platform start
    #: method (fork on Linux) instead of an explicit spawn context.
    FACTORIES = frozenset(
        {
            "Pool",
            "Process",
            "Queue",
            "SimpleQueue",
            "JoinableQueue",
            "Manager",
            "Pipe",
            "Value",
            "Array",
        }
    )

    def _aliases(self, module: "ModuleSource") -> Tuple[Set[str], Set[str], Set[str]]:
        """(module aliases, bare factory names, bare get_context names)."""
        modules: Set[str] = set()
        factories: Set[str] = set()
        contexts: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "multiprocessing":
                        modules.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom) and node.module and (
                node.module.split(".")[0] == "multiprocessing"
            ):
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if alias.name in self.FACTORIES:
                        factories.add(bound)
                    elif alias.name == "get_context":
                        contexts.add(bound)
        return modules, factories, contexts

    def _spawn_argument(self, node: ast.Call) -> bool:
        """Whether the call pins the ``"spawn"`` start method as a constant."""
        candidates: List[ast.expr] = list(node.args[:1])
        candidates.extend(
            keyword.value for keyword in node.keywords if keyword.arg == "method"
        )
        return any(
            isinstance(arg, ast.Constant) and arg.value == "spawn"
            for arg in candidates
        )

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        if module.is_test:
            return
        modules, factories, contexts = self._aliases(module)
        if not (modules or factories or contexts):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            dotted = len(parts) == 2 and parts[0] in modules
            bare = len(parts) == 1
            if (dotted and parts[1] in self.FACTORIES) or (
                bare and parts[0] in factories
            ):
                yield self.finding(
                    module,
                    node,
                    f"{name}() inherits the platform start method (fork on "
                    "Linux); build workers from an explicit "
                    'multiprocessing.get_context("spawn") context',
                )
            elif (
                (dotted and parts[1] == "get_context")
                or (bare and parts[0] in contexts)
            ) and not self._spawn_argument(node):
                yield self.finding(
                    module,
                    node,
                    f'{name}() without "spawn" resolves to the platform '
                    "default start method (fork on Linux); pin "
                    'get_context("spawn") explicitly',
                )
            elif dotted and parts[1] == "set_start_method" and not self._spawn_argument(
                node
            ):
                yield self.finding(
                    module,
                    node,
                    f"{name}() mutates the global start method; use a local "
                    'get_context("spawn") context instead',
                )


def iter_rules(select: Optional[Iterable[str]] = None) -> List[LintRule]:
    """Instantiate the selected rules (all registered rules by default)."""
    ids = available_rules() if select is None else list(select)
    return [get_rule(rule_id)() for rule_id in ids]
