"""CLI for the analysis subsystem.

Subcommands::

    python -m repro.analysis lint [PATHS...] [--select rule-a,rule-b]
    python -m repro.analysis determinism [--suite tiny] [--seeds N] [...]
    python -m repro.analysis rules

``lint`` exits 1 on any finding, ``determinism`` exits 1 on any
fingerprint mismatch — both are wired as the CI ``analysis`` job.
"""

from __future__ import annotations

import argparse
import logging
from dataclasses import replace
from typing import Optional, Sequence

from repro.analysis.engine import AnalysisConfig, lint_paths
from repro.analysis.rules import available_rules, get_rule
from repro.obs.logs import add_logging_flags, configure_cli_logging

module_logger = logging.getLogger(__name__)


def _cmd_lint(args: argparse.Namespace) -> int:
    config = AnalysisConfig()
    if args.select:
        selected = tuple(
            token.strip() for token in args.select.split(",") if token.strip()
        )
        for rule_id in selected:
            get_rule(rule_id)  # fail fast with the available-rules message
        config = replace(config, select=selected)
    module_logger.info("linting %s", ", ".join(args.paths))
    findings = lint_paths(args.paths, config)
    # Findings and the count line are the machine-readable output: stdout.
    for finding in findings:
        print(finding.format())
    plural = "" if len(findings) == 1 else "s"
    print(f"{len(findings)} finding{plural} in {', '.join(args.paths)}")
    return 1 if findings else 0


def _cmd_determinism(args: argparse.Namespace) -> int:
    # Imported lazily: linting must work even where the search stack's
    # dependencies are unavailable.
    from repro.analysis.determinism import audit_suite

    if args.resume_parity and args.execution == "sharded":
        module_logger.error(
            "--resume-parity and --execution sharded are exclusive audit modes"
        )
        return 2
    mode = ""
    if args.resume_parity:
        mode = ", resume-parity mode"
    elif args.execution == "sharded":
        mode = f", sharded-parity mode ({args.workers} workers)"
    module_logger.info(
        "auditing suite %r twice with %d seed(s)%s", args.suite, args.seeds, mode
    )
    report = audit_suite(
        suite=args.suite,
        seeds=range(args.seeds),
        backend=args.backend,
        corner_engine=args.corner_engine,
        optimizer=args.optimizer,
        with_contracts=not args.no_contracts,
        resume_parity=args.resume_parity,
        refit_mode=args.refit_mode,
        execution=args.execution,
        workers=args.workers,
    )
    print(report.format())
    return 0 if report.ok else 1


def _cmd_rules(args: argparse.Namespace) -> int:
    for rule_id in available_rules():
        print(f"{rule_id:24s} {get_rule(rule_id).summary}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-specific static analysis, runtime contracts and "
        "determinism auditing.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    lint = subparsers.add_parser(
        "lint", help="run the AST lint rules over source files/trees"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all; see 'rules')",
    )
    add_logging_flags(lint)
    lint.set_defaults(func=_cmd_lint)

    determinism = subparsers.add_parser(
        "determinism",
        help="run each case of a bench suite twice in-process and "
        "byte-diff trajectories, metrics and cache content",
    )
    determinism.add_argument(
        "--suite", default="tiny", help="bench suite to audit (default: tiny)"
    )
    determinism.add_argument(
        "--seeds",
        type=int,
        default=3,
        metavar="N",
        help="number of seeds (0..N-1) per case (default: 3)",
    )
    determinism.add_argument(
        "--backend",
        default=None,
        choices=("fused", "autodiff"),
        help="surrogate training backend override",
    )
    determinism.add_argument(
        "--corner-engine",
        default=None,
        choices=("stacked", "looped"),
        help="multi-corner evaluation engine override",
    )
    determinism.add_argument(
        "--optimizer",
        default=None,
        help="search-strategy override for every case",
    )
    determinism.add_argument(
        "--refit-mode",
        default=None,
        choices=("batched", "sequential"),
        help="surrogate-refit dispatch override (batched: one stacked "
        "multi-seed training kernel per campaign round)",
    )
    determinism.add_argument(
        "--execution",
        default="campaign",
        choices=("campaign", "sharded"),
        help="what the compared runs are: 'campaign' (default) runs the "
        "multi-seed campaign twice in-process; 'sharded' byte-diffs a "
        "multi-process sharded run against the in-process sequential "
        "oracle over the same shard specs",
    )
    determinism.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="worker process count for --execution sharded (default: 2)",
    )
    determinism.add_argument(
        "--resume-parity",
        action="store_true",
        help="second run resumes a fresh campaign from the first run's "
        "mid-round snapshot instead of starting cold — the same byte-diff "
        "then gates checkpoint/resume bit-exactness",
    )
    determinism.add_argument(
        "--no-contracts",
        action="store_true",
        help="audit without enabling the runtime invariant contracts "
        "(default: contracts on, so violations fault loudly)",
    )
    add_logging_flags(determinism)
    determinism.set_defaults(func=_cmd_determinism)

    rules = subparsers.add_parser("rules", help="list the registered lint rules")
    add_logging_flags(rules)
    rules.set_defaults(func=_cmd_rules)

    args = parser.parse_args(argv)
    configure_cli_logging(quiet=args.quiet, verbose=args.verbose)
    return args.func(args)
