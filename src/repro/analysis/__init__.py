"""Repo-specific static analysis and runtime invariant contracts.

Four consecutive PRs shipped hand-written "bit-identical trajectory" locks,
and everything the ROADMAP queues next (sharded execution, a persistent
on-disk EvaluationCache, batched-across-seeds refits) *depends* on those
invariants surviving refactors.  This package makes them cheap to keep:

* :mod:`repro.analysis.rules` + :mod:`repro.analysis.engine` — an AST lint
  engine (stdlib :mod:`ast`, pluggable rule registry mirroring the optimizer
  registry) with rules encoding this repo's determinism, bit-exactness and
  broadcast contracts: no unseeded RNGs, no float ``==``, no allocation in
  hot loops, no Python loop over the corner tensor axis, no stacked engine
  without its looped parity oracle.
* :mod:`repro.analysis.contracts` — a zero-cost-by-default runtime
  ``@contract`` decorator (enabled via ``REPRO_CONTRACTS=1``) asserting
  shape/dtype agreement at the tensor-engine entry points and freezing
  arrays to catch aliasing mutations at the fault site.
* :mod:`repro.analysis.determinism` — the determinism auditor: run a bench
  suite twice in-process and byte-diff trajectories, metrics and cache
  content, replacing the per-PR hand-written locks with a reusable gate.

CLI: ``python -m repro.analysis lint src`` and
``python -m repro.analysis determinism --suite tiny``.
"""

from repro.analysis.contracts import (
    ArraySpec,
    ContractViolation,
    SeqLen,
    contract,
    contracts,
    contracts_enabled,
    hot_path,
    set_contracts,
)
from repro.analysis.engine import (
    AnalysisConfig,
    Finding,
    lint_paths,
    lint_source,
)
from repro.analysis.rules import LintRule, available_rules, get_rule, register_rule

__all__ = [
    "AnalysisConfig",
    "ArraySpec",
    "ContractViolation",
    "Finding",
    "LintRule",
    "SeqLen",
    "available_rules",
    "contract",
    "contracts",
    "contracts_enabled",
    "get_rule",
    "hot_path",
    "lint_paths",
    "lint_source",
    "register_rule",
    "set_contracts",
]
