"""Runtime invariant contracts for the tensor-engine entry points.

The stacked corner engine, the evaluation cache and the multi-seed Campaign
all rest on a handful of array contracts — ``evaluate_corners`` returns
``(n_corners, count, n_metrics)``, a stacked technology card carries
``(n_corners, 1)`` columns, a cache hit is bit-identical to a recompute —
that nothing enforced at runtime.  :func:`contract` is the enforcement
point: a decorator that, **only** when contracts are enabled, binds the
call, validates declared shape/dtype specs (with symbolic dimensions that
must agree across arguments and return value), temporarily freezes selected
input arrays (``writeable=False``) so an in-place mutation faults at the
mutation site instead of corrupting shared state three calls later, and
runs custom pre/post condition hooks.

Contracts are **off by default and free when off**: the wrapper's disabled
path is a single flag test before delegating, and none of the decorated
entry points sit inside per-row loops — so BENCH numbers are unchanged.
Enable with the ``REPRO_CONTRACTS=1`` environment variable, or in-process
with :func:`set_contracts` / the :func:`contracts` context manager (what
the determinism auditor and the contract tests use).

:func:`hot_path` is a zero-runtime marker consumed by the ``hot-loop-alloc``
lint rule: functions carrying it may not allocate arrays inside ``for`` /
``while`` bodies.
"""

from __future__ import annotations

import functools
import inspect
import os
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Sequence, Tuple, Union

import numpy as np


class ContractViolation(AssertionError):
    """A runtime invariant contract did not hold."""


def _env_enabled() -> bool:
    return os.environ.get("REPRO_CONTRACTS", "0").strip().lower() not in ("", "0", "false", "no")


_ENABLED = _env_enabled()


def contracts_enabled() -> bool:
    """Whether :func:`contract`-decorated entry points are checking."""
    return _ENABLED


def set_contracts(enabled: bool) -> bool:
    """Turn contract checking on or off; returns the previous state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def contracts(enabled: bool = True) -> Iterator[None]:
    """Context manager scoping contract checking (restores prior state)."""
    previous = set_contracts(enabled)
    try:
        yield
    finally:
        set_contracts(previous)


def hot_path(fn: Callable) -> Callable:
    """Mark ``fn`` allocation-sensitive for the ``hot-loop-alloc`` lint rule.

    Purely a static marker — the function is returned unchanged, and the
    lint engine matches the decorator by name in the AST.
    """
    fn.__hot_path__ = True
    return fn


# ----------------------------------------------------------------------
# Shape/dtype specs

#: One axis of an :class:`ArraySpec`: an exact size, a symbolic name that
#: must agree wherever it reappears in the same call, or ``None`` (any).
Dim = Union[int, str, None]


def _bind(bindings: Dict[str, int], symbol: str, value: int, where: str) -> None:
    known = bindings.setdefault(symbol, value)
    if known != value:
        raise ContractViolation(
            f"{where}: dimension {symbol!r} is {value} here but {known} elsewhere in the call"
        )


class ArraySpec:
    """Shape/dtype contract for one array argument or return value.

    ``ArraySpec("c", "n", None)`` accepts any 3-D float64 array whose
    leading two axes agree with every other use of the symbols ``"c"`` /
    ``"n"`` in the same call (e.g. ``len(corners)`` bound by a
    :class:`SeqLen`).  Pass ``dtype=None`` to skip the dtype check.
    """

    def __init__(self, *dims: Dim, dtype: Optional[Any] = np.float64) -> None:
        self.dims: Tuple[Dim, ...] = dims
        self.dtype = np.dtype(dtype) if dtype is not None else None

    def __repr__(self) -> str:
        return f"ArraySpec({', '.join(map(repr, self.dims))}, dtype={self.dtype})"

    def validate(self, where: str, value: Any, bindings: Dict[str, int]) -> None:
        if not isinstance(value, np.ndarray):
            raise ContractViolation(
                f"{where}: expected an ndarray, got {type(value).__name__}"
            )
        if self.dtype is not None and value.dtype != self.dtype:
            raise ContractViolation(
                f"{where}: expected dtype {self.dtype}, got {value.dtype}"
            )
        if value.ndim != len(self.dims):
            raise ContractViolation(
                f"{where}: expected {len(self.dims)} axes, got shape {value.shape}"
            )
        for axis, dim in enumerate(self.dims):
            if dim is None:
                continue
            size = value.shape[axis]
            if isinstance(dim, str):
                _bind(bindings, dim, size, f"{where} axis {axis}")
            elif size != dim:
                raise ContractViolation(
                    f"{where}: axis {axis} has size {size}, expected {dim}"
                )


class SeqLen:
    """Binds the length of a sized argument (e.g. a corner list) to a symbol."""

    def __init__(self, symbol: str) -> None:
        self.symbol = symbol

    def __repr__(self) -> str:
        return f"SeqLen({self.symbol!r})"

    def validate(self, where: str, value: Any, bindings: Dict[str, int]) -> None:
        try:
            length = len(value)
        except TypeError:
            raise ContractViolation(
                f"{where}: expected a sized sequence, got {type(value).__name__}"
            ) from None
        _bind(bindings, self.symbol, length, where)


# ----------------------------------------------------------------------
# The decorator

#: Custom condition hooks: receive the bound arguments (by parameter name,
#: including ``self`` for methods) and — for post-conditions — the return
#: value; return an error message to fail the contract, or ``None``.
PreCheck = Callable[[Mapping[str, Any]], Optional[str]]
PostCheck = Callable[[Mapping[str, Any], Any], Optional[str]]


def contract(
    *,
    args: Optional[Mapping[str, Union[ArraySpec, SeqLen]]] = None,
    returns: Optional[ArraySpec] = None,
    frozen: Sequence[str] = (),
    freeze_result: bool = False,
    pre: Optional[PreCheck] = None,
    check: Optional[PostCheck] = None,
) -> Callable[[Callable], Callable]:
    """Declare runtime invariants for one tensor-engine entry point.

    Parameters
    ----------
    args:
        Per-parameter :class:`ArraySpec` / :class:`SeqLen` specs, validated
        before the call with one shared symbolic-dimension binding table.
    returns:
        :class:`ArraySpec` for the return value, validated against the same
        bindings — so ``corners=SeqLen("c")`` + ``returns=ArraySpec("c",
        None, None)`` asserts the result's leading axis is the corner count.
    frozen:
        Parameter names whose ndarray values are made read-only for the
        duration of the call (original writeability restored afterwards):
        any in-place mutation inside raises at the exact faulting line.
    freeze_result:
        Mark a returned ndarray read-only, so downstream aliasing mutations
        fault instead of silently corrupting shared/cached state.
    pre, check:
        Custom condition hooks run before / after the call; they return an
        error message (contract fails) or ``None``.

    When contracts are disabled the wrapper is a single flag test plus the
    delegated call — no signature binding, no validation.
    """
    specs = dict(args or {})
    frozen = tuple(frozen)

    def decorate(fn: Callable) -> Callable:
        signature = inspect.signature(fn)
        where = f"{fn.__module__}.{fn.__qualname__}"
        unknown = [name for name in list(specs) + list(frozen) if name not in signature.parameters]
        if unknown:
            raise TypeError(
                f"contract on {where} names unknown parameters: {', '.join(unknown)}"
            )

        @functools.wraps(fn)
        def wrapper(*call_args, **call_kwargs):
            if not _ENABLED:
                return fn(*call_args, **call_kwargs)
            bound = signature.bind(*call_args, **call_kwargs)
            bound.apply_defaults()
            arguments = bound.arguments
            bindings: Dict[str, int] = {}
            for name, spec in specs.items():
                spec.validate(f"{where} argument {name!r}", arguments[name], bindings)
            if pre is not None:
                message = pre(arguments)
                if message:
                    raise ContractViolation(f"{where}: {message}")
            thawed = []
            for name in frozen:
                value = arguments.get(name)
                if isinstance(value, np.ndarray) and value.flags.writeable:
                    value.flags.writeable = False
                    thawed.append(value)
            try:
                result = fn(*call_args, **call_kwargs)
            finally:
                for array in thawed:
                    array.flags.writeable = True
            if returns is not None:
                returns.validate(f"{where} return value", result, bindings)
            if check is not None:
                message = check(arguments, result)
                if message:
                    raise ContractViolation(f"{where}: {message}")
            if freeze_result and isinstance(result, np.ndarray):
                result.flags.writeable = False
            return result

        wrapper.__contract__ = True
        wrapper.__wrapped__ = fn
        return wrapper

    return decorate
