"""Determinism auditor: double-run bench cases and byte-diff everything.

Four PRs in a row shipped hand-written "bit-identical trajectory" locks;
this module turns them into one reusable gate.  For every case of a bench
suite the auditor builds the same multi-seed
:class:`~repro.search.campaign.Campaign` the benchmark harness runs, runs
it **twice in-process**, and compares byte-level fingerprints of everything
except wall time: the per-seed trajectories (winning sizing, evaluation
counts, phase counts, failing corners, the raw ``best_vector`` bytes), the
campaign's evaluation accounting (rounds, engine calls, cache hits/misses),
and a digest of the full :class:`~repro.search.eval_cache.EvaluationCache`
content — every ``(corner, row-key, metric-row)`` triple, bit for bit.

Any nondeterminism anywhere in the stack — an unseeded RNG, dict-ordering
dependence, an uninitialised buffer read, a mutated cached array — shows up
as a fingerprint mismatch.  Contracts (``repro.analysis.contracts``) are
enabled for the audited runs by default, so shape violations and aliasing
mutations fault loudly instead of corrupting the comparison.

**Resume-parity mode** (``--resume-parity``) swaps the second run for a
kill-and-resume one: the first run checkpoints every round
(:meth:`Campaign.run` with ``keep_history=True``), the second starts a
fresh campaign and resumes it from the mid-run snapshot.  The same
byte-diff then proves a resumed campaign is bit-identical to the
uninterrupted one — including the cache content digest *and* the hit/miss
accounting, which snapshot restore carries exactly.

**Sharded mode** (``--execution sharded``) swaps both runs: the first is
a multi-process :class:`~repro.shard.ShardedExecutor` run (``--workers``
spawned workers), the second the in-process sequential oracle over the
same shard specs (:func:`repro.shard.parity.run_sequential`).  The
byte-diff then proves process placement changes nothing: trajectories,
summed counters, and the cross-process union cache digest
(:func:`repro.shard.parity.union_state_digest`) all match bit for bit.
Contracts guard the in-process oracle only — spawned workers run without
them, which is itself part of the point: the comparison would catch a
worker behaving differently for any reason, contracts included.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.contracts import contracts

#: ``ProgressiveResult.to_dict`` keys that measure wall time, not behaviour.
_TIMING_FIELDS = ("refit_seconds", "eval_seconds", "wall_seconds")


def fingerprint_outcome(
    outcome: Any, cache_digest: str, seeds: Sequence[int]
) -> Dict[str, Any]:
    """Deterministic fingerprint of a :class:`CampaignResult`.

    Everything behavioural, nothing timed: per-seed trajectories (with the
    raw ``best_vector`` bytes hashed), campaign-wide evaluation accounting,
    and the full cache-content digest.  Shared by the double-run auditor
    and the resilience drill so "bit-identical" means the same bytes in
    both gates.  ``resumed_from_round`` is deliberately absent — it is the
    one field a resumed run legitimately differs on.
    """
    per_seed: List[Dict[str, Any]] = []
    for seed, result in zip(seeds, outcome.results):
        record = result.to_dict()
        for field in _TIMING_FIELDS:
            record.pop(field, None)
        record["seed"] = int(seed)
        record["best_vector_sha256"] = hashlib.sha256(
            result.best_vector.tobytes()
        ).hexdigest()
        per_seed.append(record)
    return {
        "per_seed": per_seed,
        "rounds": outcome.rounds,
        "engine_calls": outcome.engine_calls,
        "cache_hits": outcome.cache_hits,
        "cache_misses": outcome.cache_misses,
        "refit_rounds": outcome.refit_rounds,
        "batched_kernel_calls": outcome.batched_kernel_calls,
        "cache_sha256": cache_digest,
    }


def _run_fingerprint(
    case: Any,
    seeds: Sequence[int],
    backend: Optional[str],
    corner_engine: Optional[str],
    optimizer: Optional[str],
    checkpoint_dir: Optional[str] = None,
    keep_history: bool = False,
    resume_from: Optional[str] = None,
    refit_mode: Optional[str] = None,
) -> Tuple[Dict[str, Any], int]:
    """Run one bench case once; returns (fingerprint, rounds run)."""
    campaign = case.build_campaign(
        seeds,
        backend=backend,
        corner_engine=corner_engine,
        optimizer=optimizer,
        refit_mode=refit_mode,
    )
    outcome = campaign.run(
        checkpoint_dir=checkpoint_dir,
        keep_history=keep_history,
        resume_from=resume_from,
    )
    digest = campaign.cache.state_digest()
    return fingerprint_outcome(outcome, digest, seeds), outcome.rounds


def _first_divergence(first: Any, second: Any, path: str = "$") -> str:
    """Human-readable pointer to the first differing leaf of two payloads."""
    if type(first) is not type(second):
        return f"{path}: type {type(first).__name__} vs {type(second).__name__}"
    if isinstance(first, dict):
        for key in first:
            if key not in second:
                return f"{path}.{key}: missing in second run"
            if first[key] != second[key]:
                return _first_divergence(first[key], second[key], f"{path}.{key}")
        return f"{path}: second run has extra keys"
    if isinstance(first, list):
        if len(first) != len(second):
            return f"{path}: length {len(first)} vs {len(second)}"
        for index, (a, b) in enumerate(zip(first, second)):
            if a != b:
                return _first_divergence(a, b, f"{path}[{index}]")
    return f"{path}: {first!r} vs {second!r}"


@dataclass(frozen=True)
class CaseAudit:
    """Double-run comparison of one bench case."""

    name: str
    identical: bool
    fingerprint_sha256: str
    #: Pointer to the first differing field when the runs diverged.
    divergence: Optional[str] = None

    def format(self) -> str:
        status = "OK  " if self.identical else "DIFF"
        line = f"{status} {self.name}  fingerprint {self.fingerprint_sha256[:16]}"
        if self.divergence:
            line += f"\n     first divergence: {self.divergence}"
        return line


@dataclass(frozen=True)
class AuditReport:
    """Outcome of a suite-level determinism audit."""

    suite: str
    seeds: Tuple[int, ...]
    cases: Tuple[CaseAudit, ...]
    #: ``"double-run"``, ``"resume-parity"`` or ``"sharded-parity"``
    #: (what the two compared runs were).
    mode: str = "double-run"

    @property
    def ok(self) -> bool:
        return all(case.identical for case in self.cases)

    def format(self) -> str:
        comparison = {
            "double-run": "double-run byte-diff",
            "resume-parity": "uninterrupted vs mid-run-resumed byte-diff",
            "sharded-parity": "sharded vs sequential-oracle byte-diff",
        }.get(self.mode, self.mode)
        lines = [
            f"determinism audit: suite {self.suite!r}, seeds {list(self.seeds)}, "
            f"{comparison}"
        ]
        lines.extend(case.format() for case in self.cases)
        verdict = "all runs byte-identical" if self.ok else "NONDETERMINISM DETECTED"
        lines.append(verdict)
        return "\n".join(lines)


def audit_case(
    case: Any,
    seeds: Sequence[int],
    backend: Optional[str] = None,
    corner_engine: Optional[str] = None,
    optimizer: Optional[str] = None,
    with_contracts: bool = True,
    resume_parity: bool = False,
    refit_mode: Optional[str] = None,
    execution: str = "campaign",
    workers: int = 2,
) -> CaseAudit:
    """Run one case twice and byte-compare the fingerprints.

    With ``resume_parity`` the second run resumes a fresh campaign from
    the first run's mid-round snapshot instead of starting cold, turning
    the same byte-diff into the checkpoint/resume correctness gate.  With
    ``execution="sharded"`` the first run shards the seeds across
    ``workers`` spawned processes and the second is the in-process
    sequential oracle over the same shard specs — the multi-process
    parity gate (exclusive with ``resume_parity``; contracts apply to the
    oracle run only, see the module docstring).
    """
    seeds = [int(seed) for seed in seeds]
    if execution == "sharded":
        if resume_parity:
            raise ValueError(
                "resume_parity and the sharded execution are exclusive "
                "audit modes; the worker-kill resilience drill covers "
                "sharded resume"
            )
        from repro.shard import ShardedExecutor, run_sequential

        specs = case.shard_specs(
            seeds,
            backend=backend,
            corner_engine=corner_engine,
            optimizer=optimizer,
            refit_mode=refit_mode,
        )
        sharded = ShardedExecutor(
            specs, workers=workers, collect_cache_content=True
        ).run()
        first = fingerprint_outcome(sharded, sharded.cache_digest, seeds)
        with contracts(with_contracts):
            oracle = run_sequential(specs)
        second = fingerprint_outcome(oracle, oracle.cache_digest, seeds)
        first_bytes = json.dumps(first, sort_keys=True).encode("utf-8")
        second_bytes = json.dumps(second, sort_keys=True).encode("utf-8")
        identical = first_bytes == second_bytes
        return CaseAudit(
            name=case.name,
            identical=identical,
            fingerprint_sha256=hashlib.sha256(first_bytes).hexdigest(),
            divergence=None if identical else _first_divergence(first, second),
        )
    if execution != "campaign":
        raise ValueError(
            f"unknown audit execution {execution!r}; "
            "available: campaign, sharded"
        )
    with contracts(with_contracts):
        if resume_parity:
            with tempfile.TemporaryDirectory(prefix="repro-audit-") as ckpt_dir:
                first, rounds = _run_fingerprint(
                    case,
                    seeds,
                    backend,
                    corner_engine,
                    optimizer,
                    checkpoint_dir=ckpt_dir,
                    keep_history=True,
                    refit_mode=refit_mode,
                )
                mid = max(1, rounds // 2)
                second, _ = _run_fingerprint(
                    case,
                    seeds,
                    backend,
                    corner_engine,
                    optimizer,
                    resume_from=os.path.join(ckpt_dir, f"round-{mid:05d}.snapshot"),
                    refit_mode=refit_mode,
                )
        else:
            first, _ = _run_fingerprint(
                case, seeds, backend, corner_engine, optimizer, refit_mode=refit_mode
            )
            second, _ = _run_fingerprint(
                case, seeds, backend, corner_engine, optimizer, refit_mode=refit_mode
            )
    first_bytes = json.dumps(first, sort_keys=True).encode("utf-8")
    second_bytes = json.dumps(second, sort_keys=True).encode("utf-8")
    identical = first_bytes == second_bytes
    return CaseAudit(
        name=case.name,
        identical=identical,
        fingerprint_sha256=hashlib.sha256(first_bytes).hexdigest(),
        divergence=None if identical else _first_divergence(first, second),
    )


def audit_suite(
    suite: str = "tiny",
    seeds: Sequence[int] = (0, 1, 2),
    backend: Optional[str] = None,
    corner_engine: Optional[str] = None,
    optimizer: Optional[str] = None,
    with_contracts: bool = True,
    resume_parity: bool = False,
    refit_mode: Optional[str] = None,
    execution: str = "campaign",
    workers: int = 2,
) -> AuditReport:
    """Audit every case of a bench suite; see :class:`AuditReport`."""
    from repro.bench.registry import get_suite

    if execution == "sharded":
        mode = "sharded-parity"
    elif resume_parity:
        mode = "resume-parity"
    else:
        mode = "double-run"
    return AuditReport(
        suite=suite,
        seeds=tuple(int(seed) for seed in seeds),
        cases=tuple(
            audit_case(
                case,
                seeds,
                backend=backend,
                corner_engine=corner_engine,
                optimizer=optimizer,
                with_contracts=with_contracts,
                resume_parity=resume_parity,
                refit_mode=refit_mode,
                execution=execution,
                workers=workers,
            )
            for case in get_suite(suite)
        ),
        mode=mode,
    )
