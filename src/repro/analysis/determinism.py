"""Determinism auditor: double-run bench cases and byte-diff everything.

Four PRs in a row shipped hand-written "bit-identical trajectory" locks;
this module turns them into one reusable gate.  For every case of a bench
suite the auditor builds the same multi-seed
:class:`~repro.search.campaign.Campaign` the benchmark harness runs, runs
it **twice in-process**, and compares byte-level fingerprints of everything
except wall time: the per-seed trajectories (winning sizing, evaluation
counts, phase counts, failing corners, the raw ``best_vector`` bytes), the
campaign's evaluation accounting (rounds, engine calls, cache hits/misses),
and a digest of the full :class:`~repro.search.eval_cache.EvaluationCache`
content — every ``(corner, row-key, metric-row)`` triple, bit for bit.

Any nondeterminism anywhere in the stack — an unseeded RNG, dict-ordering
dependence, an uninitialised buffer read, a mutated cached array — shows up
as a fingerprint mismatch.  Contracts (``repro.analysis.contracts``) are
enabled for the audited runs by default, so shape violations and aliasing
mutations fault loudly instead of corrupting the comparison.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.contracts import contracts

#: ``ProgressiveResult.to_dict`` keys that measure wall time, not behaviour.
_TIMING_FIELDS = ("refit_seconds", "eval_seconds", "wall_seconds")


def _case_fingerprint(
    case: Any,
    seeds: Sequence[int],
    backend: Optional[str],
    corner_engine: Optional[str],
    optimizer: Optional[str],
) -> Dict[str, Any]:
    """Run one bench case once; everything deterministic, nothing timed."""
    from repro.search.sizing import build_campaign

    campaign = build_campaign(
        case.topology,
        technology=case.technology,
        load_cap=case.load_cap,
        tier=case.tier,
        corners=case.corners(),
        config=case.config(seeds[0]),
        seeds=list(seeds),
        backend=backend,
        corner_engine=corner_engine,
        optimizer=optimizer if optimizer is not None else case.optimizer,
        max_phases=case.max_phases,
    )
    outcome = campaign.run()
    per_seed: List[Dict[str, Any]] = []
    for seed, result in zip(seeds, outcome.results):
        record = result.to_dict()
        for field in _TIMING_FIELDS:
            record.pop(field, None)
        record["seed"] = int(seed)
        record["best_vector_sha256"] = hashlib.sha256(
            result.best_vector.tobytes()
        ).hexdigest()
        per_seed.append(record)
    return {
        "per_seed": per_seed,
        "rounds": outcome.rounds,
        "engine_calls": outcome.engine_calls,
        "cache_hits": outcome.cache_hits,
        "cache_misses": outcome.cache_misses,
        "cache_sha256": campaign.cache.state_digest(),
    }


def _first_divergence(first: Any, second: Any, path: str = "$") -> str:
    """Human-readable pointer to the first differing leaf of two payloads."""
    if type(first) is not type(second):
        return f"{path}: type {type(first).__name__} vs {type(second).__name__}"
    if isinstance(first, dict):
        for key in first:
            if key not in second:
                return f"{path}.{key}: missing in second run"
            if first[key] != second[key]:
                return _first_divergence(first[key], second[key], f"{path}.{key}")
        return f"{path}: second run has extra keys"
    if isinstance(first, list):
        if len(first) != len(second):
            return f"{path}: length {len(first)} vs {len(second)}"
        for index, (a, b) in enumerate(zip(first, second)):
            if a != b:
                return _first_divergence(a, b, f"{path}[{index}]")
    return f"{path}: {first!r} vs {second!r}"


@dataclass(frozen=True)
class CaseAudit:
    """Double-run comparison of one bench case."""

    name: str
    identical: bool
    fingerprint_sha256: str
    #: Pointer to the first differing field when the runs diverged.
    divergence: Optional[str] = None

    def format(self) -> str:
        status = "OK  " if self.identical else "DIFF"
        line = f"{status} {self.name}  fingerprint {self.fingerprint_sha256[:16]}"
        if self.divergence:
            line += f"\n     first divergence: {self.divergence}"
        return line


@dataclass(frozen=True)
class AuditReport:
    """Outcome of a suite-level determinism audit."""

    suite: str
    seeds: Tuple[int, ...]
    cases: Tuple[CaseAudit, ...]

    @property
    def ok(self) -> bool:
        return all(case.identical for case in self.cases)

    def format(self) -> str:
        lines = [
            f"determinism audit: suite {self.suite!r}, seeds {list(self.seeds)}, "
            f"double-run byte-diff"
        ]
        lines.extend(case.format() for case in self.cases)
        verdict = "all runs byte-identical" if self.ok else "NONDETERMINISM DETECTED"
        lines.append(verdict)
        return "\n".join(lines)


def audit_case(
    case: Any,
    seeds: Sequence[int],
    backend: Optional[str] = None,
    corner_engine: Optional[str] = None,
    optimizer: Optional[str] = None,
    with_contracts: bool = True,
) -> CaseAudit:
    """Run one case twice in-process and byte-compare the fingerprints."""
    seeds = [int(seed) for seed in seeds]
    with contracts(with_contracts):
        first = _case_fingerprint(case, seeds, backend, corner_engine, optimizer)
        second = _case_fingerprint(case, seeds, backend, corner_engine, optimizer)
    first_bytes = json.dumps(first, sort_keys=True).encode("utf-8")
    second_bytes = json.dumps(second, sort_keys=True).encode("utf-8")
    identical = first_bytes == second_bytes
    return CaseAudit(
        name=case.name,
        identical=identical,
        fingerprint_sha256=hashlib.sha256(first_bytes).hexdigest(),
        divergence=None if identical else _first_divergence(first, second),
    )


def audit_suite(
    suite: str = "tiny",
    seeds: Sequence[int] = (0, 1, 2),
    backend: Optional[str] = None,
    corner_engine: Optional[str] = None,
    optimizer: Optional[str] = None,
    with_contracts: bool = True,
) -> AuditReport:
    """Audit every case of a bench suite; see :class:`AuditReport`."""
    from repro.bench.registry import get_suite

    return AuditReport(
        suite=suite,
        seeds=tuple(int(seed) for seed in seeds),
        cases=tuple(
            audit_case(
                case,
                seeds,
                backend=backend,
                corner_engine=corner_engine,
                optimizer=optimizer,
                with_contracts=with_contracts,
            )
            for case in get_suite(suite)
        ),
    )
