"""Reproduction of conf_dac_YangTSCTWTYL21: surrogate-assisted analog sizing."""

__all__ = ["autodiff", "circuits", "core", "nn", "search"]
