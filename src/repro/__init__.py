"""Reproduction of conf_dac_YangTSCTWTYL21: surrogate-assisted analog sizing."""

__all__ = ["analysis", "autodiff", "bench", "circuits", "core", "nn", "obs", "search"]
