"""First-order MOSFET device model.

A square-law model with weak-inversion (sub-threshold) continuation is enough
to reproduce the qualitative sizing trade-offs the paper's agent exploits:
transconductance rising with width and current, output resistance falling with
current, parasitic capacitance rising with area.  The model consumes a
(possibly PVT-derated) :class:`~repro.circuits.process.TechnologyCard`.

All quantities are SI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

from repro.circuits.process import TechnologyCard

DeviceType = Literal["nmos", "pmos"]

#: Sub-threshold slope factor (typical 1.2-1.6).
SUBTHRESHOLD_SLOPE_FACTOR = 1.4


@dataclass(frozen=True)
class OperatingPoint:
    """Small-signal operating point of a single MOSFET.

    Attributes
    ----------
    ids:
        Drain current in amperes (always positive magnitude).
    gm:
        Transconductance in siemens.
    gds:
        Output conductance in siemens (``1/ro``).
    vov:
        Overdrive voltage ``Vgs - Vth`` in volts (may be negative in weak
        inversion).
    vdsat:
        Saturation voltage in volts.
    cgs, cgd, cdb:
        Small-signal capacitances in farads.
    region:
        ``"saturation"``, ``"triode"`` or ``"subthreshold"``.
    """

    ids: float
    gm: float
    gds: float
    vov: float
    vdsat: float
    cgs: float
    cgd: float
    cdb: float
    region: str

    @property
    def ro(self) -> float:
        """Small-signal output resistance in ohms."""
        return 1.0 / self.gds if self.gds > 0 else math.inf

    @property
    def gm_over_id(self) -> float:
        """Transconductance efficiency (1/V)."""
        return self.gm / self.ids if self.ids > 0 else 0.0


class MOSFET:
    """A sized MOS transistor evaluated against a technology card.

    Parameters
    ----------
    device_type:
        ``"nmos"`` or ``"pmos"``.
    width, length:
        Drawn dimensions in metres.
    card:
        Technology card (already PVT-derated if applicable).
    """

    def __init__(
        self,
        device_type: DeviceType,
        width: float,
        length: float,
        card: TechnologyCard,
    ) -> None:
        if device_type not in ("nmos", "pmos"):
            raise ValueError(f"device_type must be 'nmos' or 'pmos', got {device_type!r}")
        if width <= 0 or length <= 0:
            raise ValueError("width and length must be positive")
        if length < card.min_length:
            raise ValueError(
                f"length {length:.3e} below the {card.name} minimum {card.min_length:.3e}"
            )
        if width < card.min_width:
            raise ValueError(
                f"width {width:.3e} below the {card.name} minimum {card.min_width:.3e}"
            )
        self.device_type = device_type
        self.width = width
        self.length = length
        self.card = card

    # ------------------------------------------------------------------
    @property
    def kp(self) -> float:
        return self.card.kp_n if self.device_type == "nmos" else self.card.kp_p

    @property
    def vth(self) -> float:
        return self.card.vth_n if self.device_type == "nmos" else self.card.vth_p

    @property
    def channel_length_modulation(self) -> float:
        base = self.card.lambda_n if self.device_type == "nmos" else self.card.lambda_p
        # Longer channels exhibit less channel-length modulation (roughly 1/L).
        return base * (self.card.min_length / self.length)

    @property
    def beta(self) -> float:
        """Device transconductance factor ``kp * W / L``."""
        return self.kp * self.width / self.length

    @property
    def gate_area(self) -> float:
        return self.width * self.length

    # ------------------------------------------------------------------
    def capacitances(self) -> tuple:
        """Return (cgs, cgd, cdb) using simple area/overlap estimates."""
        cox_total = self.card.cox * self.gate_area
        cgs = (2.0 / 3.0) * cox_total
        cgd = 0.15 * cox_total
        # Drain junction approximated as a strip of the drawn width.
        cdb = self.card.cj * self.width * 4.0 * self.card.min_length
        return cgs, cgd, cdb

    def operating_point(self, vgs: float, vds: float, temperature_c: float = 27.0) -> OperatingPoint:
        """Evaluate the device at the given bias.

        ``vgs`` and ``vds`` are magnitudes (source-referenced for NMOS,
        |values| for PMOS), so the same expressions serve both polarities.
        """
        vgs = abs(vgs)
        vds = abs(vds)
        vov = vgs - self.vth
        lam = self.channel_length_modulation
        cgs, cgd, cdb = self.capacitances()
        phi_t = self.card.thermal_voltage(temperature_c)

        if vov <= 0.0:
            # Weak inversion: exponential characteristic.
            i0 = self.beta * (SUBTHRESHOLD_SLOPE_FACTOR * phi_t) ** 2 * math.exp(1.0)
            ids = i0 * math.exp(vov / (SUBTHRESHOLD_SLOPE_FACTOR * phi_t))
            gm = ids / (SUBTHRESHOLD_SLOPE_FACTOR * phi_t)
            gds = lam * ids + 1e-15
            return OperatingPoint(
                ids=ids,
                gm=gm,
                gds=gds,
                vov=vov,
                vdsat=3.0 * phi_t,
                cgs=cgs,
                cgd=cgd,
                cdb=cdb,
                region="subthreshold",
            )

        vdsat = vov
        if vds >= vdsat:
            ids = 0.5 * self.beta * vov ** 2 * (1.0 + lam * vds)
            gm = self.beta * vov * (1.0 + lam * vds)
            gds = 0.5 * self.beta * vov ** 2 * lam
            region = "saturation"
        else:
            ids = self.beta * (vov * vds - 0.5 * vds ** 2)
            gm = self.beta * vds
            gds = self.beta * (vov - vds) + 1e-12
            region = "triode"
        return OperatingPoint(
            ids=max(ids, 0.0),
            gm=max(gm, 0.0),
            gds=max(gds, 1e-15),
            vov=vov,
            vdsat=vdsat,
            cgs=cgs,
            cgd=cgd,
            cdb=cdb,
            region=region,
        )

    def bias_for_current(self, ids: float, vds: float, temperature_c: float = 27.0) -> OperatingPoint:
        """Operating point of a diode-connected / current-biased device.

        Given a target drain current (as set by a current mirror), solve the
        square law for the overdrive and return the resulting small-signal
        parameters.  This is the common case inside the analytical circuit
        evaluators where bias currents, not gate voltages, are the natural
        inputs.
        """
        if ids <= 0:
            raise ValueError("drain current must be positive")
        lam = self.channel_length_modulation
        # First-order solve ignoring the (1 + lam*vds) factor, then refine once.
        vov = math.sqrt(2.0 * ids / self.beta)
        vov = math.sqrt(2.0 * ids / (self.beta * (1.0 + lam * vds)))
        gm = math.sqrt(2.0 * self.beta * ids * (1.0 + lam * vds))
        gds = lam * ids
        cgs, cgd, cdb = self.capacitances()
        phi_t = self.card.thermal_voltage(temperature_c)
        region = "saturation"
        if vov < 2.0 * phi_t:
            # The requested current pushes the device into moderate/weak
            # inversion; cap gm at the weak-inversion limit.
            gm = min(gm, ids / (SUBTHRESHOLD_SLOPE_FACTOR * phi_t))
            region = "subthreshold"
        return OperatingPoint(
            ids=ids,
            gm=gm,
            gds=max(gds, 1e-15),
            vov=vov,
            vdsat=max(vov, 3.0 * phi_t),
            cgs=cgs,
            cgd=cgd,
            cdb=cdb,
            region=region,
        )
