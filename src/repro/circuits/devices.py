"""First-order MOSFET device model.

A square-law model with weak-inversion (sub-threshold) continuation is enough
to reproduce the qualitative sizing trade-offs the paper's agent exploits:
transconductance rising with width and current, output resistance falling with
current, parasitic capacitance rising with area.  The model consumes a
(possibly PVT-derated) :class:`~repro.circuits.process.TechnologyCard`.

All quantities are SI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.circuits.process import TechnologyCard

DeviceType = Literal["nmos", "pmos"]

#: Sub-threshold slope factor (typical 1.2-1.6).
SUBTHRESHOLD_SLOPE_FACTOR = 1.4


def smooth_overdrive(vov, two_n_phi_t):
    """EKV-style effective overdrive ``2nφt · softplus(vov / 2nφt)``.

    Interpolates continuously (C-infinity) between the weak-inversion
    exponential (``vov << 0``: ``veff ~ 2nφt·exp(vov/2nφt)``) and the
    square-law overdrive (``vov >> 0``: ``veff ~ vov``), so a drain current
    written in terms of ``veff`` has no kink at ``vov = 0``.  Accepts scalars
    or arrays; uses the overflow-safe softplus form.
    """
    x = np.asarray(vov, dtype=np.float64) / two_n_phi_t
    veff = two_n_phi_t * (np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x))))
    return veff if veff.ndim else float(veff)


def overdrive_sensitivity(vov, two_n_phi_t):
    """``d veff / d vov`` — a numerically stable logistic sigmoid."""
    x = np.asarray(vov, dtype=np.float64) / two_n_phi_t
    positive = 1.0 / (1.0 + np.exp(-np.abs(x)))
    sig = np.where(x >= 0.0, positive, 1.0 - positive)
    return sig if sig.ndim else float(sig)


def parasitic_capacitances(card: TechnologyCard, width, length):
    """Vectorized ``(cgs, cgd, cdb)`` area/overlap estimates.

    Single source of truth shared by :meth:`MOSFET.capacitances` and the
    batch circuit evaluators; accepts scalars or arrays.
    """
    cox_total = card.cox * width * length
    cgs = (2.0 / 3.0) * cox_total
    cgd = 0.15 * cox_total
    # Drain junction approximated as a strip of the drawn width.
    cdb = card.cj * width * 4.0 * card.min_length
    return cgs, cgd, cdb


def saturation_from_current(beta, lam, ids, vds, phi_t):
    """Vectorized inverse of the smooth saturation law.

    Given the drain current forced through a saturated device (the natural
    input when bias currents are set by mirrors), return
    ``(veff, vov, gm, gds)``.  All arguments broadcast; this is the single
    source of truth shared by :meth:`MOSFET.bias_for_current` and the
    vectorized opamp batch evaluator.
    """
    beta = np.asarray(beta, dtype=np.float64)
    ids = np.asarray(ids, dtype=np.float64)
    two_n_phi_t = 2.0 * SUBTHRESHOLD_SLOPE_FACTOR * phi_t
    veff = np.sqrt(2.0 * ids / (beta * (1.0 + lam * vds)))
    x = veff / two_n_phi_t
    # Inverse softplus: vov = 2nφt · ln(exp(veff/2nφt) - 1); for large x the
    # exponential term dominates and vov -> veff.
    safe_x = np.minimum(x, 30.0)
    vov = np.where(x > 30.0, veff, two_n_phi_t * np.log(np.expm1(safe_x) + 1e-300))
    # 1 - exp(-x) is exactly sigmoid(vov / 2nφt) evaluated without vov.
    gm = beta * veff * (-np.expm1(-x)) * (1.0 + lam * vds)
    # Same expression as operating_point's saturation branch,
    # 0.5*beta*veff^2*lam, rewritten in terms of the forced current.
    gds = lam * ids / (1.0 + lam * vds)
    return veff, vov, gm, gds


@dataclass(frozen=True)
class OperatingPoint:
    """Small-signal operating point of a single MOSFET.

    Attributes
    ----------
    ids:
        Drain current in amperes (always positive magnitude).
    gm:
        Transconductance in siemens.
    gds:
        Output conductance in siemens (``1/ro``).
    vov:
        Overdrive voltage ``Vgs - Vth`` in volts (may be negative in weak
        inversion).
    vdsat:
        Saturation voltage in volts.
    cgs, cgd, cdb:
        Small-signal capacitances in farads.
    region:
        ``"saturation"``, ``"triode"`` or ``"subthreshold"``.
    """

    ids: float
    gm: float
    gds: float
    vov: float
    vdsat: float
    cgs: float
    cgd: float
    cdb: float
    region: str

    @property
    def ro(self) -> float:
        """Small-signal output resistance in ohms."""
        return 1.0 / self.gds if self.gds > 0 else math.inf

    @property
    def gm_over_id(self) -> float:
        """Transconductance efficiency (1/V)."""
        return self.gm / self.ids if self.ids > 0 else 0.0


class MOSFET:
    """A sized MOS transistor evaluated against a technology card.

    Parameters
    ----------
    device_type:
        ``"nmos"`` or ``"pmos"``.
    width, length:
        Drawn dimensions in metres.
    card:
        Technology card (already PVT-derated if applicable).
    """

    def __init__(
        self,
        device_type: DeviceType,
        width: float,
        length: float,
        card: TechnologyCard,
    ) -> None:
        if device_type not in ("nmos", "pmos"):
            raise ValueError(f"device_type must be 'nmos' or 'pmos', got {device_type!r}")
        if width <= 0 or length <= 0:
            raise ValueError("width and length must be positive")
        if length < card.min_length:
            raise ValueError(
                f"length {length:.3e} below the {card.name} minimum {card.min_length:.3e}"
            )
        if width < card.min_width:
            raise ValueError(
                f"width {width:.3e} below the {card.name} minimum {card.min_width:.3e}"
            )
        self.device_type = device_type
        self.width = width
        self.length = length
        self.card = card

    # ------------------------------------------------------------------
    @property
    def kp(self) -> float:
        return self.card.kp_n if self.device_type == "nmos" else self.card.kp_p

    @property
    def vth(self) -> float:
        return self.card.vth_n if self.device_type == "nmos" else self.card.vth_p

    @property
    def channel_length_modulation(self) -> float:
        base = self.card.lambda_n if self.device_type == "nmos" else self.card.lambda_p
        # Longer channels exhibit less channel-length modulation (roughly 1/L).
        return base * (self.card.min_length / self.length)

    @property
    def beta(self) -> float:
        """Device transconductance factor ``kp * W / L``."""
        return self.kp * self.width / self.length

    @property
    def gate_area(self) -> float:
        return self.width * self.length

    # ------------------------------------------------------------------
    def capacitances(self) -> tuple:
        """Return (cgs, cgd, cdb) using simple area/overlap estimates."""
        return parasitic_capacitances(self.card, self.width, self.length)

    def operating_point(self, vgs: float, vds: float, temperature_c: float = 27.0) -> OperatingPoint:
        """Evaluate the device at the given bias.

        ``vgs`` and ``vds`` are magnitudes (source-referenced for NMOS,
        |values| for PMOS), so the same expressions serve both polarities.
        """
        vgs = abs(vgs)
        vds = abs(vds)
        vov = vgs - self.vth
        lam = self.channel_length_modulation
        cgs, cgd, cdb = self.capacitances()
        phi_t = self.card.thermal_voltage(temperature_c)
        two_n_phi_t = 2.0 * SUBTHRESHOLD_SLOPE_FACTOR * phi_t

        # Single smooth drain-current law: the square law written in terms of
        # the softplus-interpolated overdrive ``veff``.  Deep in weak
        # inversion it reduces to ``2βn²φt²·exp(vov/nφt)`` (exponential) and
        # in strong inversion to ``½β·vov²`` — with no jump at ``vov = 0``,
        # which is exactly the moderate-inversion region a sizing search
        # explores.
        veff = smooth_overdrive(vov, two_n_phi_t)
        sensitivity = overdrive_sensitivity(vov, two_n_phi_t)
        vdsat = veff

        if vds >= vdsat:
            ids = 0.5 * self.beta * veff ** 2 * (1.0 + lam * vds)
            gm = self.beta * veff * sensitivity * (1.0 + lam * vds)
            gds = 0.5 * self.beta * veff ** 2 * lam
        else:
            # The (1 + lam*vds) factor is kept in triode as well so current
            # and gm join the saturation branch continuously at vds = vdsat.
            triode = veff * vds - 0.5 * vds ** 2
            ids = self.beta * triode * (1.0 + lam * vds)
            gm = self.beta * vds * sensitivity * (1.0 + lam * vds)
            gds = self.beta * (veff - vds) * (1.0 + lam * vds) + self.beta * triode * lam + 1e-12

        # Label the branch that actually produced the numbers: the triode
        # expressions apply whenever vds < vdsat, even below threshold.
        if vds < vdsat:
            region = "triode"
        elif vov <= 0.0:
            region = "subthreshold"
        else:
            region = "saturation"
        return OperatingPoint(
            ids=max(ids, 0.0),
            gm=max(gm, 0.0),
            gds=max(gds, 1e-15),
            vov=vov,
            vdsat=vdsat,
            cgs=cgs,
            cgd=cgd,
            cdb=cdb,
            region=region,
        )

    def bias_for_current(self, ids: float, vds: float, temperature_c: float = 27.0) -> OperatingPoint:
        """Operating point of a diode-connected / current-biased device.

        Given a target drain current (as set by a current mirror), solve the
        square law for the overdrive and return the resulting small-signal
        parameters.  This is the common case inside the analytical circuit
        evaluators where bias currents, not gate voltages, are the natural
        inputs.
        """
        if ids <= 0:
            raise ValueError("drain current must be positive")
        lam = self.channel_length_modulation
        phi_t = self.card.thermal_voltage(temperature_c)
        veff, vov, gm, gds = saturation_from_current(self.beta, lam, ids, vds, phi_t)
        cgs, cgd, cdb = self.capacitances()
        region = "subthreshold" if vov <= 0.0 else "saturation"
        return OperatingPoint(
            ids=ids,
            gm=float(gm),
            gds=max(float(gds), 1e-15),
            vov=float(vov),
            vdsat=float(veff),
            cgs=cgs,
            cgd=cgd,
            cdb=cdb,
            region=region,
        )
