"""Technology cards for the process nodes used in the paper.

The paper sizes circuits on BSIM 45 nm / 22 nm (academic, NGSPICE) and TSMC
6 nm / 5 nm (industrial, Spectre).  Proprietary PDKs obviously cannot be
shipped; instead each node is described by a compact *technology card*: a set
of first-order device parameters (threshold voltage, process transconductance,
channel-length modulation, oxide capacitance, nominal supply) plus process
corner and temperature coefficients.  The square-law/EKV device model in
:mod:`repro.circuits.devices` consumes these cards.

The absolute numbers are representative textbook values scaled per node; what
matters for reproducing the paper is that the *mapping* from sizes to
measurements keeps the qualitative structure of each node (lower supply and
shorter channels at advanced nodes, distinct parameter distributions between
nodes so that network weights do not transfer — cf. Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, Sequence

import numpy as np

from repro.analysis.contracts import contract

# Boltzmann constant times unit charge ratio appears via thermal voltage.
BOLTZMANN = 1.380649e-23
ELECTRON_CHARGE = 1.602176634e-19
ROOM_TEMPERATURE_K = 300.15


@dataclass(frozen=True)
class TechnologyCard:
    """First-order device parameters of one process node.

    Attributes
    ----------
    name:
        Node identifier (``"bsim45"``, ``"bsim22"``, ``"n6"``, ``"n5"``).
    vdd_nominal:
        Nominal supply voltage in volts.
    vth_n, vth_p:
        Nominal threshold voltages (absolute values) in volts.
    kp_n, kp_p:
        Process transconductance ``mu * Cox`` in A/V^2.
    lambda_n, lambda_p:
        Channel-length modulation coefficients in 1/V at minimum length.
    cox:
        Gate-oxide capacitance per unit area in F/m^2.
    min_length:
        Minimum drawn channel length in metres.
    min_width:
        Minimum drawn width in metres.
    cj:
        Junction capacitance per unit area, F/m^2 (for parasitic estimates).
    area_scale:
        Multiplier converting summed W*L into the "area" unit reported in the
        paper's tables (arbitrary consistent unit per node).
    """

    name: str
    vdd_nominal: float
    vth_n: float
    vth_p: float
    kp_n: float
    kp_p: float
    lambda_n: float
    lambda_p: float
    cox: float
    min_length: float
    min_width: float
    cj: float
    area_scale: float

    def thermal_voltage(self, temperature_c: float) -> float:
        """kT/q at the given temperature in Celsius."""
        temperature_k = temperature_c + 273.15
        return BOLTZMANN * temperature_k / ELECTRON_CHARGE

    def with_overrides(self, **kwargs) -> "TechnologyCard":
        """Return a copy with selected fields replaced (corner modelling)."""
        return replace(self, **kwargs)


def _stacked_card_check(arguments, result) -> str:
    """Contract: every stacked field is an ``(n_cards, 1)`` float64 column."""
    try:
        expected = len(arguments["cards"])
    except TypeError:  # a generator input; the column checks below still run
        expected = None
    for field_ in fields(TechnologyCard):
        value = getattr(result, field_.name)
        if not isinstance(value, np.ndarray):
            continue
        if value.ndim != 2 or value.shape[1] != 1:
            return (
                f"stacked field {field_.name!r} has shape {value.shape}, "
                "expected (n_cards, 1)"
            )
        if expected is not None and value.shape[0] != expected:
            return (
                f"stacked field {field_.name!r} has {value.shape[0]} rows "
                f"for {expected} cards"
            )
        if value.dtype != np.float64:
            return f"stacked field {field_.name!r} has dtype {value.dtype}"
    return None


@contract(check=_stacked_card_check)
def stack_cards(cards: Sequence[TechnologyCard]) -> TechnologyCard:
    """Fuse per-corner cards into one struct-of-arrays card.

    Every numeric field whose value differs between the cards becomes a
    ``(n_cards, 1)`` float64 column (ready to broadcast against a
    ``(count,)`` batch axis); fields shared by all cards stay scalar.  The
    columns are built from the *already derated* per-card values, so row
    ``i`` of the stacked card is bit-identical to ``cards[i]`` — the stacked
    evaluation path inherits exact parity with the per-corner loop by
    construction.

    The dataclass machinery (``with_overrides``, ``thermal_voltage``) keeps
    working on the stacked card because its methods are plain arithmetic,
    which NumPy broadcasts elementwise.
    """
    cards = list(cards)
    if not cards:
        raise ValueError("stack_cards needs at least one technology card")
    names = {card.name for card in cards}
    if len(names) > 1:
        raise ValueError(
            f"cannot stack cards from different nodes: {', '.join(sorted(names))}"
        )
    overrides = {}
    for field_ in fields(TechnologyCard):
        if field_.name == "name":
            continue
        values = [getattr(card, field_.name) for card in cards]
        if any(value != values[0] for value in values[1:]):
            overrides[field_.name] = np.array(values, dtype=np.float64)[:, np.newaxis]
    return cards[0].with_overrides(**overrides)


_CARDS: Dict[str, TechnologyCard] = {
    "bsim45": TechnologyCard(
        name="bsim45",
        vdd_nominal=1.8,
        vth_n=0.45,
        vth_p=0.45,
        kp_n=280e-6,
        kp_p=95e-6,
        lambda_n=0.12,
        lambda_p=0.15,
        cox=8.5e-3,
        min_length=45e-9,
        min_width=120e-9,
        cj=1.0e-3,
        area_scale=1.0e12,
    ),
    "bsim22": TechnologyCard(
        name="bsim22",
        vdd_nominal=1.0,
        vth_n=0.38,
        vth_p=0.40,
        kp_n=420e-6,
        kp_p=160e-6,
        lambda_n=0.20,
        lambda_p=0.24,
        cox=1.25e-2,
        min_length=22e-9,
        min_width=80e-9,
        cj=1.2e-3,
        area_scale=1.0e12,
    ),
    "n6": TechnologyCard(
        name="n6",
        vdd_nominal=0.75,
        vth_n=0.32,
        vth_p=0.34,
        kp_n=560e-6,
        kp_p=240e-6,
        lambda_n=0.28,
        lambda_p=0.32,
        cox=1.9e-2,
        min_length=6e-9,
        min_width=30e-9,
        cj=1.4e-3,
        area_scale=1.0e15,
    ),
    "n5": TechnologyCard(
        name="n5",
        vdd_nominal=0.70,
        vth_n=0.30,
        vth_p=0.32,
        kp_n=600e-6,
        kp_p=260e-6,
        lambda_n=0.30,
        lambda_p=0.34,
        cox=2.1e-2,
        min_length=5e-9,
        min_width=28e-9,
        cj=1.5e-3,
        area_scale=1.0e15,
    ),
}


def available_nodes() -> tuple:
    """Names of all registered technology nodes."""
    return tuple(sorted(_CARDS))


def get_technology(name: str) -> TechnologyCard:
    """Look up a technology card by node name.

    Raises
    ------
    KeyError
        If the node is unknown; the message lists the available nodes.
    """
    try:
        return _CARDS[name]
    except KeyError:
        raise KeyError(
            f"unknown technology node {name!r}; available: {', '.join(available_nodes())}"
        ) from None


def register_technology(card: TechnologyCard, overwrite: bool = False) -> None:
    """Register a user-defined technology card.

    The designer-facing API (Section IV-F of the paper) lets teams plug in
    their own nodes; this hook is the equivalent here.
    """
    if card.name in _CARDS and not overwrite:
        raise ValueError(f"technology {card.name!r} already registered")
    _CARDS[card.name] = card
