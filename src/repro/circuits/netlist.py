"""Small-signal netlist representation.

The analytical circuit evaluators (:mod:`repro.circuits.opamp` etc.) use
closed-form pole/zero expressions; to make the substrate credible and to
cross-check those formulas, a compact linear netlist + modified nodal analysis
(MNA) engine is also provided.  It supports the element set needed for
small-signal analog macromodels:

* resistors and capacitors,
* independent current and voltage sources (AC stimulus),
* voltage-controlled current sources (the ``gm`` of a transistor).

Nodes are arbitrary hashable labels; ``"0"`` / ``"gnd"`` is ground.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

Node = Hashable

GROUND_NAMES = {"0", 0, "gnd", "GND"}


@dataclass(frozen=True)
class Resistor:
    """Linear resistor between ``a`` and ``b`` (ohms)."""

    a: Node
    b: Node
    resistance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise ValueError("resistance must be positive")


@dataclass(frozen=True)
class Capacitor:
    """Linear capacitor between ``a`` and ``b`` (farads)."""

    a: Node
    b: Node
    capacitance: float

    def __post_init__(self) -> None:
        if self.capacitance < 0:
            raise ValueError("capacitance must be non-negative")


@dataclass(frozen=True)
class CurrentSource:
    """Independent current source injecting ``current`` amps into node ``b`` from ``a``."""

    a: Node
    b: Node
    current: float


@dataclass(frozen=True)
class VCCS:
    """Voltage-controlled current source (a transistor's gm).

    Current ``gm * (v(cp) - v(cn))`` flows from node ``a`` to node ``b``.
    """

    a: Node
    b: Node
    cp: Node
    cn: Node
    gm: float


@dataclass(frozen=True)
class VoltageSource:
    """Independent voltage source forcing ``v(a) - v(b) = voltage``."""

    a: Node
    b: Node
    voltage: float


class Netlist:
    """A collection of linear elements plus node bookkeeping."""

    def __init__(self, title: str = "") -> None:
        self.title = title
        self.resistors: List[Resistor] = []
        self.capacitors: List[Capacitor] = []
        self.current_sources: List[CurrentSource] = []
        self.vccs: List[VCCS] = []
        self.voltage_sources: List[VoltageSource] = []
        #: Monotonic change counter; solvers use it to invalidate cached
        #: stamped matrices.  Mutate elements through the add_* methods (the
        #: element lists themselves are treated as append-only).
        self.revision = 0

    # -- element builders ------------------------------------------------
    def add_resistor(self, a: Node, b: Node, resistance: float) -> Resistor:
        element = Resistor(a, b, resistance)
        self.resistors.append(element)
        self.revision += 1
        return element

    def add_capacitor(self, a: Node, b: Node, capacitance: float) -> Capacitor:
        element = Capacitor(a, b, capacitance)
        self.capacitors.append(element)
        self.revision += 1
        return element

    def add_current_source(self, a: Node, b: Node, current: float) -> CurrentSource:
        element = CurrentSource(a, b, current)
        self.current_sources.append(element)
        self.revision += 1
        return element

    def add_vccs(self, a: Node, b: Node, cp: Node, cn: Node, gm: float) -> VCCS:
        element = VCCS(a, b, cp, cn, gm)
        self.vccs.append(element)
        self.revision += 1
        return element

    def add_voltage_source(self, a: Node, b: Node, voltage: float) -> VoltageSource:
        element = VoltageSource(a, b, voltage)
        self.voltage_sources.append(element)
        self.revision += 1
        return element

    # -- node bookkeeping --------------------------------------------------
    def nodes(self) -> List[Node]:
        """All non-ground nodes in deterministic (insertion-ish) order."""
        seen: Dict[Node, None] = {}
        for element_list in (
            self.resistors,
            self.capacitors,
            self.current_sources,
            self.vccs,
            self.voltage_sources,
        ):
            for element in element_list:
                for node in self._element_nodes(element):
                    if node not in GROUND_NAMES and node not in seen:
                        seen[node] = None
        return list(seen)

    @staticmethod
    def _element_nodes(element) -> Tuple[Node, ...]:
        if isinstance(element, VCCS):
            return (element.a, element.b, element.cp, element.cn)
        return (element.a, element.b)

    def element_count(self) -> int:
        return (
            len(self.resistors)
            + len(self.capacitors)
            + len(self.current_sources)
            + len(self.vccs)
            + len(self.voltage_sources)
        )

    def __repr__(self) -> str:
        return (
            f"Netlist({self.title!r}, nodes={len(self.nodes())}, "
            f"elements={self.element_count()})"
        )
