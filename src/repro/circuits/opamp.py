"""Backward-compatible alias for the two-stage Miller opamp evaluator.

The evaluator moved into the topology zoo
(:mod:`repro.circuits.topologies.two_stage`) when the
:class:`~repro.circuits.topologies.base.SizingProblem` interface was
introduced; this module keeps the original import path working.
"""

from repro.circuits.topologies.two_stage import (
    METRIC_NAMES,
    VARIABLE_NAMES,
    SizingLike,
    TwoStageOpAmp,
)

__all__ = ["METRIC_NAMES", "VARIABLE_NAMES", "SizingLike", "TwoStageOpAmp"]
