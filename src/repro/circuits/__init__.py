"""Circuit substrate: device model, technology/PVT cards, netlists, MNA, topologies."""

from repro.circuits.devices import MOSFET, OperatingPoint
from repro.circuits.opamp import METRIC_NAMES, VARIABLE_NAMES, TwoStageOpAmp
from repro.circuits.process import (
    TechnologyCard,
    available_nodes,
    get_technology,
    stack_cards,
)
from repro.circuits.pvt import (
    NOMINAL,
    PVTCondition,
    full_corner_grid,
    hardest_condition,
    nine_corner_grid,
    rank_by_severity,
)
from repro.circuits.topologies import (
    AMPLIFIER_METRIC_NAMES,
    SPEC_TIERS,
    FiveTransistorOTA,
    FoldedCascodeOTA,
    SizingProblem,
    TelescopicCascodeOTA,
    available_topologies,
    get_topology,
    register_topology,
)

__all__ = [
    "AMPLIFIER_METRIC_NAMES",
    "METRIC_NAMES",
    "MOSFET",
    "NOMINAL",
    "OperatingPoint",
    "PVTCondition",
    "SPEC_TIERS",
    "FiveTransistorOTA",
    "FoldedCascodeOTA",
    "SizingProblem",
    "TechnologyCard",
    "TelescopicCascodeOTA",
    "TwoStageOpAmp",
    "VARIABLE_NAMES",
    "available_nodes",
    "available_topologies",
    "full_corner_grid",
    "get_technology",
    "get_topology",
    "hardest_condition",
    "nine_corner_grid",
    "rank_by_severity",
    "register_topology",
    "stack_cards",
]
