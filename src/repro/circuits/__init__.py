"""Circuit substrate: device model, technology/PVT cards, netlists, MNA, opamp."""

from repro.circuits.devices import MOSFET, OperatingPoint
from repro.circuits.opamp import METRIC_NAMES, VARIABLE_NAMES, TwoStageOpAmp
from repro.circuits.process import TechnologyCard, available_nodes, get_technology
from repro.circuits.pvt import (
    NOMINAL,
    PVTCondition,
    full_corner_grid,
    hardest_condition,
    nine_corner_grid,
    rank_by_severity,
)

__all__ = [
    "METRIC_NAMES",
    "MOSFET",
    "NOMINAL",
    "OperatingPoint",
    "PVTCondition",
    "TechnologyCard",
    "TwoStageOpAmp",
    "VARIABLE_NAMES",
    "available_nodes",
    "full_corner_grid",
    "get_technology",
    "hardest_condition",
    "nine_corner_grid",
    "rank_by_severity",
]
