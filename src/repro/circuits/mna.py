"""Modified nodal analysis (MNA) for linear small-signal netlists.

Supports DC solves and AC frequency sweeps of a :class:`~repro.circuits.netlist.Netlist`.
This is the numerical backend used to cross-check the analytical two-stage
opamp macromodel (poles, zero, unity-gain bandwidth, phase margin).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuits.netlist import GROUND_NAMES, Netlist, Node


@dataclass
class ACSweepResult:
    """Result of an AC sweep.

    Attributes
    ----------
    frequencies:
        Sweep frequencies in hertz.
    node_voltages:
        Mapping from node name to the complex voltage at each frequency.
    """

    frequencies: np.ndarray
    node_voltages: Dict[Node, np.ndarray]

    def transfer(self, output: Node, reference: Optional[Node] = None) -> np.ndarray:
        """Complex transfer function at ``output`` (optionally minus ``reference``)."""
        voltage = self.node_voltages[output]
        if reference is not None:
            voltage = voltage - self.node_voltages[reference]
        return voltage

    def magnitude_db(self, output: Node) -> np.ndarray:
        return 20.0 * np.log10(np.maximum(np.abs(self.transfer(output)), 1e-30))

    def phase_deg(self, output: Node) -> np.ndarray:
        return np.degrees(np.unwrap(np.angle(self.transfer(output))))


class MNASolver:
    """Assemble and solve the MNA system of a linear netlist.

    The frequency-independent structure is stamped exactly once: the real
    conductance part ``G`` (resistors, VCCS, voltage-source incidence) and
    the capacitance part ``C`` are cached so the system at any frequency is
    just ``G + jω·C``.  An AC sweep then solves all frequencies in a single
    batched :func:`numpy.linalg.solve` call instead of re-stamping the
    matrix per point — the hot path when MNA cross-checks run inside a
    sizing-search loop.
    """

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self._nodes = netlist.nodes()
        self._index = {node: i for i, node in enumerate(self._nodes)}
        self._n_nodes = len(self._nodes)
        self._n_vsrc = len(netlist.voltage_sources)
        self._stamped_revision = netlist.revision
        self._conductance, self._capacitance, self._rhs = self._stamp_parts()

    # ------------------------------------------------------------------
    def _node_index(self, node: Node) -> Optional[int]:
        if node in GROUND_NAMES:
            return None
        return self._index[node]

    def _stamp_two_terminal(self, matrix: np.ndarray, a: Node, b: Node, value: float) -> None:
        ia, ib = self._node_index(a), self._node_index(b)
        if ia is not None:
            matrix[ia, ia] += value
        if ib is not None:
            matrix[ib, ib] += value
        if ia is not None and ib is not None:
            matrix[ia, ib] -= value
            matrix[ib, ia] -= value

    def _stamp_parts(self) -> tuple:
        """Stamp the ``G`` / ``C`` matrices and the RHS once.

        Every element value is frequency independent, so the only thing an
        individual solve needs to do is combine the parts.
        """
        size = self._n_nodes + self._n_vsrc
        conductance = np.zeros((size, size), dtype=np.float64)
        capacitance = np.zeros((size, size), dtype=np.float64)
        rhs = np.zeros(size, dtype=np.float64)

        for resistor in self.netlist.resistors:
            self._stamp_two_terminal(conductance, resistor.a, resistor.b, 1.0 / resistor.resistance)
        for capacitor in self.netlist.capacitors:
            self._stamp_two_terminal(capacitance, capacitor.a, capacitor.b, capacitor.capacitance)
        for source in self.netlist.current_sources:
            ia, ib = self._node_index(source.a), self._node_index(source.b)
            if ia is not None:
                rhs[ia] -= source.current
            if ib is not None:
                rhs[ib] += source.current
        for vccs in self.netlist.vccs:
            ia, ib = self._node_index(vccs.a), self._node_index(vccs.b)
            icp, icn = self._node_index(vccs.cp), self._node_index(vccs.cn)
            # Current gm * (v_cp - v_cn) flows from a to b.
            for row, sign_row in ((ia, +1.0), (ib, -1.0)):
                if row is None:
                    continue
                if icp is not None:
                    conductance[row, icp] += sign_row * vccs.gm
                if icn is not None:
                    conductance[row, icn] -= sign_row * vccs.gm
        for k, vsrc in enumerate(self.netlist.voltage_sources):
            row = self._n_nodes + k
            ia, ib = self._node_index(vsrc.a), self._node_index(vsrc.b)
            if ia is not None:
                conductance[ia, row] += 1.0
                conductance[row, ia] += 1.0
            if ib is not None:
                conductance[ib, row] -= 1.0
                conductance[row, ib] -= 1.0
            rhs[row] = vsrc.voltage
        return conductance, capacitance, rhs

    def _refresh_if_stale(self) -> None:
        """Re-stamp when elements were added to the netlist after construction."""
        if self.netlist.revision != self._stamped_revision:
            self.__init__(self.netlist)

    def _assemble(self, omega: float) -> tuple:
        self._refresh_if_stale()
        matrix = self._conductance + 1j * omega * self._capacitance
        return matrix, self._rhs.astype(complex)

    # ------------------------------------------------------------------
    def solve_dc(self) -> Dict[Node, float]:
        """Solve the DC operating point (capacitors open)."""
        self._refresh_if_stale()
        size = self._conductance.shape[0]
        solution = np.linalg.solve(self._conductance + 1e-15 * np.eye(size), self._rhs)
        return {node: float(solution[i]) for node, i in self._index.items()}

    def solve_at(self, frequency: float) -> Dict[Node, complex]:
        """Solve the complex node voltages at one frequency."""
        matrix, rhs = self._assemble(omega=2.0 * np.pi * frequency)
        solution = np.linalg.solve(matrix + 1e-18 * np.eye(matrix.shape[0]), rhs)
        return {node: complex(solution[i]) for node, i in self._index.items()}

    def ac_sweep(self, frequencies: Sequence[float]) -> ACSweepResult:
        """Sweep over the given frequencies with one batched solve."""
        self._refresh_if_stale()
        frequencies = np.asarray(list(frequencies), dtype=np.float64)
        omegas = 2.0 * np.pi * frequencies
        size = self._conductance.shape[0]
        ridge = 1e-18 * np.eye(size)
        matrices = (
            self._conductance[np.newaxis, :, :]
            + 1j * omegas[:, np.newaxis, np.newaxis] * self._capacitance[np.newaxis, :, :]
            + ridge[np.newaxis, :, :]
        )
        rhs = np.broadcast_to(self._rhs.astype(complex), (len(frequencies), size))
        solutions = np.linalg.solve(matrices, rhs[..., np.newaxis])[..., 0]
        return ACSweepResult(
            frequencies=frequencies,
            node_voltages={node: solutions[:, i].copy() for node, i in self._index.items()},
        )


def logspace_frequencies(start_hz: float = 1.0, stop_hz: float = 1e10, points: int = 400) -> np.ndarray:
    """Convenience log-spaced frequency grid for AC sweeps."""
    return np.logspace(np.log10(start_hz), np.log10(stop_hz), points)


def unity_gain_metrics(result: ACSweepResult, output: Node) -> Dict[str, float]:
    """Extract DC gain, unity-gain bandwidth and phase margin from a sweep.

    The phase margin is measured as ``180 + phase`` at the unity-gain
    frequency, the standard definition for an inverting loop probed as a
    non-inverting transfer function that starts at 0 degrees.
    """
    magnitude_db = result.magnitude_db(output)
    phase = result.phase_deg(output)
    frequencies = result.frequencies
    dc_gain_db = float(magnitude_db[0])
    # Find the first crossing below 0 dB.
    below = np.nonzero(magnitude_db <= 0.0)[0]
    if len(below) == 0 or below[0] == 0:
        return {"dc_gain_db": dc_gain_db, "ugbw_hz": float("nan"), "phase_margin_deg": float("nan")}
    hi = below[0]
    lo = hi - 1
    # Log-linear interpolation of the crossing frequency.
    f_lo, f_hi = frequencies[lo], frequencies[hi]
    m_lo, m_hi = magnitude_db[lo], magnitude_db[hi]
    fraction = m_lo / (m_lo - m_hi)
    ugbw = float(10 ** (np.log10(f_lo) + fraction * (np.log10(f_hi) - np.log10(f_lo))))
    phase_at_ugbw = float(phase[lo] + fraction * (phase[hi] - phase[lo]))
    phase_margin = 180.0 + phase_at_ugbw
    # Wrap into (-180, 180], the conventional reporting range; coarse sweep
    # grids can mis-unwrap by a full turn and otherwise report margins below
    # -180 degrees.  Caveat: for genuinely conditionally-stable responses
    # (more than 360 degrees of true lag at crossover) any single wrapped
    # number is ambiguous — inspect the full phase trace in that case.
    while phase_margin > 180.0:
        phase_margin -= 360.0
    while phase_margin <= -180.0:
        phase_margin += 360.0
    return {
        "dc_gain_db": dc_gain_db,
        "ugbw_hz": ugbw,
        "phase_margin_deg": phase_margin,
    }
