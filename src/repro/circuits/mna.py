"""Modified nodal analysis (MNA) for linear small-signal netlists.

Supports DC solves and AC frequency sweeps of a :class:`~repro.circuits.netlist.Netlist`.
This is the numerical backend used to cross-check the analytical two-stage
opamp macromodel (poles, zero, unity-gain bandwidth, phase margin).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuits.netlist import GROUND_NAMES, Netlist, Node


@dataclass
class ACSweepResult:
    """Result of an AC sweep.

    Attributes
    ----------
    frequencies:
        Sweep frequencies in hertz.
    node_voltages:
        Mapping from node name to the complex voltage at each frequency.
    """

    frequencies: np.ndarray
    node_voltages: Dict[Node, np.ndarray]

    def transfer(self, output: Node, reference: Optional[Node] = None) -> np.ndarray:
        """Complex transfer function at ``output`` (optionally minus ``reference``)."""
        voltage = self.node_voltages[output]
        if reference is not None:
            voltage = voltage - self.node_voltages[reference]
        return voltage

    def magnitude_db(self, output: Node) -> np.ndarray:
        return 20.0 * np.log10(np.maximum(np.abs(self.transfer(output)), 1e-30))

    def phase_deg(self, output: Node) -> np.ndarray:
        return np.degrees(np.unwrap(np.angle(self.transfer(output))))


class MNASolver:
    """Assemble and solve the MNA system of a linear netlist."""

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self._nodes = netlist.nodes()
        self._index = {node: i for i, node in enumerate(self._nodes)}
        self._n_nodes = len(self._nodes)
        self._n_vsrc = len(netlist.voltage_sources)

    # ------------------------------------------------------------------
    def _node_index(self, node: Node) -> Optional[int]:
        if node in GROUND_NAMES:
            return None
        return self._index[node]

    def _stamp_conductance(self, matrix: np.ndarray, a: Node, b: Node, value: complex) -> None:
        ia, ib = self._node_index(a), self._node_index(b)
        if ia is not None:
            matrix[ia, ia] += value
        if ib is not None:
            matrix[ib, ib] += value
        if ia is not None and ib is not None:
            matrix[ia, ib] -= value
            matrix[ib, ia] -= value

    def _assemble(self, omega: float) -> tuple:
        size = self._n_nodes + self._n_vsrc
        matrix = np.zeros((size, size), dtype=complex)
        rhs = np.zeros(size, dtype=complex)

        for resistor in self.netlist.resistors:
            self._stamp_conductance(matrix, resistor.a, resistor.b, 1.0 / resistor.resistance)
        for capacitor in self.netlist.capacitors:
            self._stamp_conductance(matrix, capacitor.a, capacitor.b, 1j * omega * capacitor.capacitance)
        for source in self.netlist.current_sources:
            ia, ib = self._node_index(source.a), self._node_index(source.b)
            if ia is not None:
                rhs[ia] -= source.current
            if ib is not None:
                rhs[ib] += source.current
        for vccs in self.netlist.vccs:
            ia, ib = self._node_index(vccs.a), self._node_index(vccs.b)
            icp, icn = self._node_index(vccs.cp), self._node_index(vccs.cn)
            # Current gm * (v_cp - v_cn) flows from a to b.
            for row, sign_row in ((ia, +1.0), (ib, -1.0)):
                if row is None:
                    continue
                if icp is not None:
                    matrix[row, icp] += sign_row * vccs.gm
                if icn is not None:
                    matrix[row, icn] -= sign_row * vccs.gm
        for k, vsrc in enumerate(self.netlist.voltage_sources):
            row = self._n_nodes + k
            ia, ib = self._node_index(vsrc.a), self._node_index(vsrc.b)
            if ia is not None:
                matrix[ia, row] += 1.0
                matrix[row, ia] += 1.0
            if ib is not None:
                matrix[ib, row] -= 1.0
                matrix[row, ib] -= 1.0
            rhs[row] = vsrc.voltage
        return matrix, rhs

    # ------------------------------------------------------------------
    def solve_dc(self) -> Dict[Node, float]:
        """Solve the DC operating point (capacitors open)."""
        matrix, rhs = self._assemble(omega=0.0)
        solution = np.linalg.solve(matrix + 1e-15 * np.eye(matrix.shape[0]), rhs)
        return {node: float(solution[i].real) for node, i in self._index.items()}

    def solve_at(self, frequency: float) -> Dict[Node, complex]:
        """Solve the complex node voltages at one frequency."""
        matrix, rhs = self._assemble(omega=2.0 * np.pi * frequency)
        solution = np.linalg.solve(matrix + 1e-18 * np.eye(matrix.shape[0]), rhs)
        return {node: complex(solution[i]) for node, i in self._index.items()}

    def ac_sweep(self, frequencies: Sequence[float]) -> ACSweepResult:
        """Sweep over the given frequencies and collect node voltages."""
        frequencies = np.asarray(list(frequencies), dtype=np.float64)
        voltages: Dict[Node, List[complex]] = {node: [] for node in self._nodes}
        for frequency in frequencies:
            solution = self.solve_at(float(frequency))
            for node in self._nodes:
                voltages[node].append(solution[node])
        return ACSweepResult(
            frequencies=frequencies,
            node_voltages={node: np.asarray(values) for node, values in voltages.items()},
        )


def logspace_frequencies(start_hz: float = 1.0, stop_hz: float = 1e10, points: int = 400) -> np.ndarray:
    """Convenience log-spaced frequency grid for AC sweeps."""
    return np.logspace(np.log10(start_hz), np.log10(stop_hz), points)


def unity_gain_metrics(result: ACSweepResult, output: Node) -> Dict[str, float]:
    """Extract DC gain, unity-gain bandwidth and phase margin from a sweep.

    The phase margin is measured as ``180 + phase`` at the unity-gain
    frequency, the standard definition for an inverting loop probed as a
    non-inverting transfer function that starts at 0 degrees.
    """
    magnitude_db = result.magnitude_db(output)
    phase = result.phase_deg(output)
    frequencies = result.frequencies
    dc_gain_db = float(magnitude_db[0])
    # Find the first crossing below 0 dB.
    below = np.nonzero(magnitude_db <= 0.0)[0]
    if len(below) == 0 or below[0] == 0:
        return {"dc_gain_db": dc_gain_db, "ugbw_hz": float("nan"), "phase_margin_deg": float("nan")}
    hi = below[0]
    lo = hi - 1
    # Log-linear interpolation of the crossing frequency.
    f_lo, f_hi = frequencies[lo], frequencies[hi]
    m_lo, m_hi = magnitude_db[lo], magnitude_db[hi]
    fraction = m_lo / (m_lo - m_hi)
    ugbw = float(10 ** (np.log10(f_lo) + fraction * (np.log10(f_hi) - np.log10(f_lo))))
    phase_at_ugbw = float(phase[lo] + fraction * (phase[hi] - phase[lo]))
    phase_margin = 180.0 + phase_at_ugbw
    # Wrap into a sensible range.
    while phase_margin > 180.0:
        phase_margin -= 360.0
    return {
        "dc_gain_db": dc_gain_db,
        "ugbw_hz": ugbw,
        "phase_margin_deg": phase_margin,
    }
