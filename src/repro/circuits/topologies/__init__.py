"""Topology zoo: pluggable sizing workloads behind one interface.

Importing this package registers every built-in topology:

========================  ==========================================  ====
registry name             class                                       dims
========================  ==========================================  ====
``two_stage_opamp``       :class:`~.two_stage.TwoStageOpAmp`             8
``ota_5t``                :class:`~.ota_5t.FiveTransistorOTA`            5
``folded_cascode``        :class:`~.folded_cascode.FoldedCascodeOTA`     6
``telescopic``            :class:`~.telescopic.TelescopicCascodeOTA`     5
========================  ==========================================  ====

Third-party workloads subclass :class:`SizingProblem` and register with
:func:`register_topology`.
"""

from repro.circuits.topologies.base import (
    AMPLIFIER_METRIC_NAMES,
    SPEC_TIERS,
    SizingProblem,
    available_topologies,
    get_topology,
    register_topology,
)
from repro.circuits.topologies.folded_cascode import FoldedCascodeOTA
from repro.circuits.topologies.ota_5t import FiveTransistorOTA
from repro.circuits.topologies.telescopic import TelescopicCascodeOTA
from repro.circuits.topologies.two_stage import TwoStageOpAmp

__all__ = [
    "AMPLIFIER_METRIC_NAMES",
    "SPEC_TIERS",
    "FiveTransistorOTA",
    "FoldedCascodeOTA",
    "SizingProblem",
    "TelescopicCascodeOTA",
    "TwoStageOpAmp",
    "available_topologies",
    "get_topology",
    "register_topology",
]
