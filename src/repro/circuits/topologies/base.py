"""The :class:`SizingProblem` interface and the topology registry.

The paper's agent is a *general* constraint-satisfaction sizer: nothing in
Algorithm 1 is specific to the two-stage Miller opamp it is demonstrated on.
This module makes that genericity concrete.  A :class:`SizingProblem` bundles
everything the search stack needs from a workload:

* a gridded :class:`~repro.core.design_space.DesignSpace` (the CSP domain),
* a vectorized ``(count, dim) -> (count, n_metrics)`` ``evaluate_batch``
  (the "SPICE" the surrogate approximates),
* metric names binding the output columns to :class:`~repro.search.spec.Spec`
  constraints,
* an optional equivalent small-signal netlist so
  :mod:`repro.circuits.mna` can cross-check the closed-form poles numerically,
* a ``default_specs()`` tier ladder (``smoke`` < ``nominal`` < ``stretch``)
  so benchmarks can dial difficulty without hand-tuning bounds per topology.

Every problem is PVT-aware by construction: the constructor derates the
technology card through :meth:`~repro.circuits.pvt.PVTCondition.apply`, the
same path the progressive corner-hardening loop uses.

Concrete topologies register themselves with :func:`register_topology`, and
the benchmark suite enumerates them through :func:`available_topologies`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional, Sequence, Tuple, Type, Union

import numpy as np

from repro.circuits.mna import MNASolver, logspace_frequencies, unity_gain_metrics
from repro.circuits.netlist import Netlist
from repro.circuits.process import TechnologyCard, get_technology
from repro.circuits.pvt import NOMINAL, PVTCondition
from repro.core.design_space import DesignSpace
from repro.search.spec import Spec

SizingLike = Union[Mapping[str, float], Sequence[float], np.ndarray]

#: Canonical tier order of every ``default_specs()`` ladder, easiest first.
SPEC_TIERS: Tuple[str, ...] = ("smoke", "nominal", "stretch")

#: The shared measurement layout of every amplifier topology in the zoo.
#: Using one layout across topologies lets the benchmark harness and the
#: progressive PVT loop treat all workloads uniformly.
AMPLIFIER_METRIC_NAMES: Tuple[str, ...] = (
    "dc_gain_db",
    "ugbw_hz",
    "phase_margin_deg",
    "power_w",
    "slew_v_per_s",
)


class SizingProblem(ABC):
    """One analog sizing workload: design space, evaluator, specs.

    Subclasses define the class attributes ``name`` (registry key),
    ``VARIABLE_NAMES`` (sizing-vector layout) and ``METRIC_NAMES`` (output
    columns of :meth:`evaluate_batch`), plus the abstract methods below.

    Parameters
    ----------
    technology:
        Technology node name or a :class:`TechnologyCard`.
    condition:
        PVT corner; the card is derated once at construction.
    load_cap:
        External load capacitance at the output, in farads.
    """

    #: Registry key, e.g. ``"two_stage_opamp"``.
    name: str = ""
    #: Order of the sizing variables in vector form.
    VARIABLE_NAMES: Tuple[str, ...] = ()
    #: Order of the measurements returned by the batch evaluator.
    METRIC_NAMES: Tuple[str, ...] = ()

    def __init__(
        self,
        technology: Union[str, TechnologyCard] = "bsim45",
        condition: PVTCondition = NOMINAL,
        load_cap: float = 2e-12,
    ) -> None:
        card = get_technology(technology) if isinstance(technology, str) else technology
        self.condition = condition
        self.card = condition.apply(card)
        self.load_cap = float(load_cap)

    # -- abstract workload definition ----------------------------------
    @abstractmethod
    def design_space(self) -> DesignSpace:
        """The gridded CSP domain over :attr:`VARIABLE_NAMES`."""

    @abstractmethod
    def evaluate_batch(self, samples: np.ndarray) -> np.ndarray:
        """Closed-form metrics for a ``(count, dim)`` array of sizings.

        Returns an array of shape ``(count, len(METRIC_NAMES))`` computed in
        a single vectorized pass — no per-sample Python loop.
        """

    @abstractmethod
    def default_specs(self) -> Dict[str, Tuple[Spec, ...]]:
        """Spec tier ladder keyed by :data:`SPEC_TIERS` names.

        ``smoke`` must be solvable in a few hundred evaluations at the
        hardest sign-off corner (the CI budget); ``nominal`` is the headline
        experiment; ``stretch`` is allowed to need the progressive loop's
        full budget.
        """

    def small_signal_netlist(self, sizing: SizingLike) -> Optional[Netlist]:
        """Equivalent linear netlist for MNA cross-checking, if available."""
        return None

    # -- shared machinery ----------------------------------------------
    @property
    def dimension(self) -> int:
        return len(self.VARIABLE_NAMES)

    def to_vector(self, sizing: SizingLike) -> np.ndarray:
        """Coerce a mapping or sequence into the canonical sizing vector."""
        if isinstance(sizing, Mapping):
            return np.array([float(sizing[name]) for name in self.VARIABLE_NAMES])
        vector = np.asarray(sizing, dtype=np.float64)
        if vector.shape != (self.dimension,):
            raise ValueError(
                f"expected a sizing vector of length {self.dimension}, got {vector.shape}"
            )
        return vector

    def validated_batch(self, samples: np.ndarray) -> np.ndarray:
        """Coerce to ``(count, dim)`` float64 and check the column count."""
        samples = np.atleast_2d(np.asarray(samples, dtype=np.float64))
        if samples.shape[1] != self.dimension:
            raise ValueError(
                f"expected samples of shape (count, {self.dimension}), got {samples.shape}"
            )
        return samples

    def evaluate(self, sizing: SizingLike) -> Dict[str, float]:
        """Metrics of a single sizing, via the same vectorized path."""
        row = self.evaluate_batch(self.to_vector(sizing)[np.newaxis, :])[0]
        return {name: float(value) for name, value in zip(self.METRIC_NAMES, row)}

    def mna_metrics(
        self,
        sizing: SizingLike,
        frequencies: Optional[np.ndarray] = None,
        points: int = 800,
    ) -> Dict[str, float]:
        """Numerical gain/UGBW/phase-margin from an MNA sweep of the netlist."""
        netlist = self.small_signal_netlist(sizing)
        if netlist is None:
            raise NotImplementedError(
                f"topology {self.name!r} provides no small-signal netlist"
            )
        solver = MNASolver(netlist)
        if frequencies is None:
            frequencies = logspace_frequencies(1e0, 1e11, points)
        result = solver.ac_sweep(frequencies)
        return unity_gain_metrics(result, "out")


# ----------------------------------------------------------------------
# Topology registry (mirrors repro.circuits.process.register_technology).

_TOPOLOGIES: Dict[str, Type[SizingProblem]] = {}


def register_topology(cls: Type[SizingProblem]) -> Type[SizingProblem]:
    """Class decorator adding a :class:`SizingProblem` to the registry."""
    if not cls.name:
        raise ValueError(f"topology class {cls.__name__} must set a non-empty 'name'")
    if cls.name in _TOPOLOGIES and _TOPOLOGIES[cls.name] is not cls:
        raise ValueError(f"topology {cls.name!r} already registered")
    _TOPOLOGIES[cls.name] = cls
    return cls


def available_topologies() -> Tuple[str, ...]:
    """Names of all registered topologies, sorted."""
    return tuple(sorted(_TOPOLOGIES))


def get_topology(name: str) -> Type[SizingProblem]:
    """Look up a topology class by registry name.

    Raises
    ------
    KeyError
        If the topology is unknown; the message lists the available names.
    """
    try:
        return _TOPOLOGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown topology {name!r}; available: {', '.join(available_topologies())}"
        ) from None
