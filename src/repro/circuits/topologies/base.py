"""The :class:`SizingProblem` interface and the topology registry.

The paper's agent is a *general* constraint-satisfaction sizer: nothing in
Algorithm 1 is specific to the two-stage Miller opamp it is demonstrated on.
This module makes that genericity concrete.  A :class:`SizingProblem` bundles
everything the search stack needs from a workload:

* a gridded :class:`~repro.core.design_space.DesignSpace` (the CSP domain),
* a vectorized ``(count, dim) -> (count, n_metrics)`` ``evaluate_batch``
  (the "SPICE" the surrogate approximates),
* metric names binding the output columns to :class:`~repro.search.spec.Spec`
  constraints,
* an optional equivalent small-signal netlist so
  :mod:`repro.circuits.mna` can cross-check the closed-form poles numerically,
* a ``default_specs()`` tier ladder (``smoke`` < ``nominal`` < ``stretch``)
  so benchmarks can dial difficulty without hand-tuning bounds per topology.

Every problem is PVT-aware by construction: the constructor derates the
technology card through :meth:`~repro.circuits.pvt.PVTCondition.apply`, the
same path the progressive corner-hardening loop uses.

The PVT corner is also a *tensor axis*: :meth:`SizingProblem.evaluate_corners`
returns a ``(n_corners, count, n_metrics)`` block for a whole corner grid in
one call.  Topologies that set ``supports_stacked_corners`` evaluate the grid
as a single NumPy broadcast over a stacked technology card
(:meth:`~repro.circuits.pvt.PVTCondition.apply_stack`); everything else falls
back to :meth:`SizingProblem.evaluate_corners_looped`, the per-corner Python
loop that doubles as the parity oracle — the two paths are bit-identical.

Concrete topologies register themselves with :func:`register_topology`, and
the benchmark suite enumerates them through :func:`available_topologies`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional, Sequence, Tuple, Type, Union

import numpy as np

from repro.analysis.contracts import ArraySpec, SeqLen, contract
from repro.circuits.mna import MNASolver, logspace_frequencies, unity_gain_metrics
from repro.circuits.netlist import Netlist
from repro.circuits.process import TechnologyCard, get_technology
from repro.circuits.pvt import NOMINAL, PVTCondition
from repro.core.design_space import DesignSpace
from repro.obs import span
from repro.search.spec import Spec

SizingLike = Union[Mapping[str, float], Sequence[float], np.ndarray]


def _metric_axis_check(arguments, result) -> Optional[str]:
    """Contract post-condition: the last axis is the problem's metric layout."""
    expected = len(arguments["self"].METRIC_NAMES)
    if result.shape[-1] != expected:
        return f"metric axis has {result.shape[-1]} columns, expected {expected}"
    return None


def batch_evaluator_contract(fn):
    """Contract for a topology's vectorized ``evaluate_batch``.

    Asserts the ``(count, len(METRIC_NAMES))`` output contract (the input is
    left to ``validated_batch``, which legitimately coerces 1-D sizings).
    Concrete topologies decorate their ``evaluate_batch`` with this so every
    workload in the zoo carries the same runtime check.
    """
    return contract(returns=ArraySpec(None, None), check=_metric_axis_check)(fn)


def _corner_block_check(arguments, result) -> Optional[str]:
    """Contract post-condition shared by both corner-tensor evaluators."""
    message = _metric_axis_check(arguments, result)
    if message:
        return message
    if result.ndim == 3 and result.shape[1] < 1:
        return "corner block has an empty sample axis"
    return None

#: Canonical tier order of every ``default_specs()`` ladder, easiest first.
SPEC_TIERS: Tuple[str, ...] = ("smoke", "nominal", "stretch")

#: The shared measurement layout of every amplifier topology in the zoo.
#: Using one layout across topologies lets the benchmark harness and the
#: progressive PVT loop treat all workloads uniformly.
AMPLIFIER_METRIC_NAMES: Tuple[str, ...] = (
    "dc_gain_db",
    "ugbw_hz",
    "phase_margin_deg",
    "power_w",
    "slew_v_per_s",
)


class SizingProblem(ABC):
    """One analog sizing workload: design space, evaluator, specs.

    Subclasses define the class attributes ``name`` (registry key),
    ``VARIABLE_NAMES`` (sizing-vector layout) and ``METRIC_NAMES`` (output
    columns of :meth:`evaluate_batch`), plus the abstract methods below.

    Parameters
    ----------
    technology:
        Technology node name or a :class:`TechnologyCard`.
    condition:
        PVT corner; the card is derated once at construction.
    load_cap:
        External load capacitance at the output, in farads.
    """

    #: Registry key, e.g. ``"two_stage_opamp"``.
    name: str = ""
    #: Order of the sizing variables in vector form.
    VARIABLE_NAMES: Tuple[str, ...] = ()
    #: Order of the measurements returned by the batch evaluator.
    METRIC_NAMES: Tuple[str, ...] = ()
    #: Whether :meth:`evaluate_corners` may use the stacked-card fast path.
    #: Topologies opt in by accepting ``card``/``temperature_c`` overrides in
    #: their ``_small_signal_parts`` and providing ``_metrics_from_parts``;
    #: anything else transparently falls back to the per-corner loop.
    supports_stacked_corners: bool = False

    def __init__(
        self,
        technology: Union[str, TechnologyCard] = "bsim45",
        condition: PVTCondition = NOMINAL,
        load_cap: float = 2e-12,
    ) -> None:
        card = get_technology(technology) if isinstance(technology, str) else technology
        #: The un-derated node card; corner evaluation derates it per corner.
        self.base_card = card
        self.condition = condition
        self.card = condition.apply(card)
        self.load_cap = float(load_cap)

    # -- abstract workload definition ----------------------------------
    @abstractmethod
    def design_space(self) -> DesignSpace:
        """The gridded CSP domain over :attr:`VARIABLE_NAMES`."""

    @abstractmethod
    def evaluate_batch(self, samples: np.ndarray) -> np.ndarray:
        """Closed-form metrics for a ``(count, dim)`` array of sizings.

        Returns an array of shape ``(count, len(METRIC_NAMES))`` computed in
        a single vectorized pass — no per-sample Python loop.
        """

    @abstractmethod
    def default_specs(self) -> Dict[str, Tuple[Spec, ...]]:
        """Spec tier ladder keyed by :data:`SPEC_TIERS` names.

        ``smoke`` must be solvable in a few hundred evaluations at the
        hardest sign-off corner (the CI budget); ``nominal`` is the headline
        experiment; ``stretch`` is allowed to need the progressive loop's
        full budget.
        """

    def small_signal_netlist(self, sizing: SizingLike) -> Optional[Netlist]:
        """Equivalent linear netlist for MNA cross-checking, if available."""
        return None

    # -- shared machinery ----------------------------------------------
    @property
    def dimension(self) -> int:
        return len(self.VARIABLE_NAMES)

    def to_vector(self, sizing: SizingLike) -> np.ndarray:
        """Coerce a mapping or sequence into the canonical sizing vector."""
        if isinstance(sizing, Mapping):
            return np.array([float(sizing[name]) for name in self.VARIABLE_NAMES])
        vector = np.asarray(sizing, dtype=np.float64)
        if vector.shape != (self.dimension,):
            raise ValueError(
                f"expected a sizing vector of length {self.dimension}, got {vector.shape}"
            )
        return vector

    @contract(returns=ArraySpec(None, None))
    def validated_batch(self, samples: np.ndarray) -> np.ndarray:
        """Coerce to ``(count, dim)`` float64 and check the column count."""
        samples = np.atleast_2d(np.asarray(samples, dtype=np.float64))
        if samples.shape[1] != self.dimension:
            raise ValueError(
                f"expected samples of shape (count, {self.dimension}), got {samples.shape}"
            )
        return samples

    def evaluate(self, sizing: SizingLike) -> Dict[str, float]:
        """Metrics of a single sizing, via the same vectorized path."""
        row = self.evaluate_batch(self.to_vector(sizing)[np.newaxis, :])[0]
        return {name: float(value) for name, value in zip(self.METRIC_NAMES, row)}

    # -- corner tensor axis --------------------------------------------
    def for_condition(self, condition: PVTCondition) -> "SizingProblem":
        """A sibling problem derated to another corner (same node and load)."""
        return type(self)(self.base_card, condition, self.load_cap)

    def evaluation_handle(self):
        """Everything the Campaign driver needs to evaluate this problem.

        Bundles the design space, the metric layout, the stacked
        :meth:`evaluate_corners` tensor evaluator and the per-corner
        :meth:`for_condition` factory (the looped parity oracle) into an
        :class:`~repro.search.campaign.EvaluationHandle`, so the search
        stack never has to know topology internals.
        """
        # Imported lazily: the search stack imports repro.search.spec from
        # this module's package, so a module-level import would be heavy at
        # best and fragile to reorder.
        from repro.search.campaign import EvaluationHandle

        def factory(condition: PVTCondition):
            return self.for_condition(condition).evaluate_batch

        return EvaluationHandle(
            design_space=self.design_space(),
            metric_names=tuple(self.METRIC_NAMES),
            corner_evaluator=self.evaluate_corners,
            evaluator_factory=factory,
        )

    @contract(
        args={"corners": SeqLen("c")},
        returns=ArraySpec("c", None, None),
        check=_corner_block_check,
    )
    @span("topology.evaluate_corners", self_tags={"topology": "name"})
    def evaluate_corners(
        self, samples: np.ndarray, corners: Sequence[PVTCondition]
    ) -> np.ndarray:
        """Metrics over the whole corner grid in one pass.

        Returns a ``(n_corners, len(samples), len(METRIC_NAMES))`` block.
        When the topology supports stacked corners the grid is evaluated as
        a single broadcast — the corner axis rides the same closed-form
        NumPy expressions as the batch axis — and is bit-identical to
        :meth:`evaluate_corners_looped` (enforced by the parity tests).
        """
        samples = self.validated_batch(samples)
        corners = list(corners)
        if not corners:
            raise ValueError("evaluate_corners needs at least one PVT corner")
        if not self.supports_stacked_corners:
            return self.evaluate_corners_looped(samples, corners)
        card = PVTCondition.apply_stack(corners, self.base_card)
        temperatures = np.array(
            [corner.temperature_c for corner in corners], dtype=np.float64
        )[:, np.newaxis]
        parts = self._small_signal_parts(samples, card=card, temperature_c=temperatures)
        metrics = self._metrics_from_parts(parts)
        # Corner-degenerate grids (e.g. a single corner) can collapse the
        # leading axis; restore the contract shape without touching values.
        shape = (len(corners), samples.shape[0], len(self.METRIC_NAMES))
        if metrics.shape != shape:
            metrics = np.ascontiguousarray(np.broadcast_to(metrics, shape))
        return metrics

    @contract(
        args={"corners": SeqLen("c")},
        returns=ArraySpec("c", None, None),
        check=_corner_block_check,
    )
    @span("topology.evaluate_corners_looped", self_tags={"topology": "name"})
    def evaluate_corners_looped(
        self, samples: np.ndarray, corners: Sequence[PVTCondition]
    ) -> np.ndarray:
        """Per-corner Python loop over :meth:`evaluate_batch` — the oracle.

        Same ``(n_corners, count, n_metrics)`` contract as
        :meth:`evaluate_corners`; kept as the reference implementation the
        stacked path is checked against, and as the fallback for topologies
        without stacked support.
        """
        samples = self.validated_batch(samples)
        corners = list(corners)
        if not corners:
            raise ValueError("evaluate_corners_looped needs at least one PVT corner")
        return np.stack(
            [self.for_condition(corner).evaluate_batch(samples) for corner in corners],
            axis=0,
        )

    def _small_signal_parts(
        self, samples: np.ndarray, card=None, temperature_c=None
    ) -> Dict[str, np.ndarray]:
        """Small-signal quantities hook of the stacked corner engine.

        Stacked-corner topologies compute their device-level quantities here
        from an optional card/temperature override (arrays of shape
        ``(n_corners, 1)`` for the corner axis, or ``None`` for the
        problem's own derated card).
        """
        raise NotImplementedError(
            f"topology {self.name!r} does not implement the stacked corner engine"
        )

    def _metrics_from_parts(self, parts: Dict[str, np.ndarray]) -> np.ndarray:
        """Metric assembly hook: parts -> ``(..., len(METRIC_NAMES))``."""
        raise NotImplementedError(
            f"topology {self.name!r} does not implement the stacked corner engine"
        )

    @staticmethod
    def _stack_metrics(*columns: np.ndarray) -> np.ndarray:
        """Broadcast metric columns to a common shape, stacked on a new last
        axis — ``(count, n)`` for a batch, ``(n_corners, count, n)`` when a
        corner axis is present.  Corner-invariant columns (e.g. a slew rate
        set purely by sizing) broadcast up without recomputation."""
        return np.stack(np.broadcast_arrays(*columns), axis=-1)

    def mna_metrics(
        self,
        sizing: SizingLike,
        frequencies: Optional[np.ndarray] = None,
        points: int = 800,
    ) -> Dict[str, float]:
        """Numerical gain/UGBW/phase-margin from an MNA sweep of the netlist."""
        netlist = self.small_signal_netlist(sizing)
        if netlist is None:
            raise NotImplementedError(
                f"topology {self.name!r} provides no small-signal netlist"
            )
        solver = MNASolver(netlist)
        if frequencies is None:
            frequencies = logspace_frequencies(1e0, 1e11, points)
        result = solver.ac_sweep(frequencies)
        return unity_gain_metrics(result, "out")


# ----------------------------------------------------------------------
# Topology registry (mirrors repro.circuits.process.register_technology).

_TOPOLOGIES: Dict[str, Type[SizingProblem]] = {}


def register_topology(cls: Type[SizingProblem]) -> Type[SizingProblem]:
    """Class decorator adding a :class:`SizingProblem` to the registry."""
    if not cls.name:
        raise ValueError(f"topology class {cls.__name__} must set a non-empty 'name'")
    if cls.name in _TOPOLOGIES and _TOPOLOGIES[cls.name] is not cls:
        raise ValueError(f"topology {cls.name!r} already registered")
    _TOPOLOGIES[cls.name] = cls
    return cls


def available_topologies() -> Tuple[str, ...]:
    """Names of all registered topologies, sorted."""
    return tuple(sorted(_TOPOLOGIES))


def get_topology(name: str) -> Type[SizingProblem]:
    """Look up a topology class by registry name.

    Raises
    ------
    KeyError
        If the topology is unknown; the message lists the available names.
    """
    try:
        return _TOPOLOGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown topology {name!r}; available: {', '.join(available_topologies())}"
        ) from None
