"""Folded-cascode OTA: cascode gain with input-range headroom.

An NMOS input pair (M1/M2) whose drain currents are *folded* into a PMOS
cascode branch (Mc): PMOS sources on top carry the sum of the half-tail
current and the cascode branch current, and an NMOS cascode mirror returns
the signal at the bottom.  The fold decouples the input common-mode range
from the output stack — the classic reason to pay the extra branch current.

The sizing vector uses the cascode branch current ``icasc`` directly (the
top current sources then carry ``ibias/2 + icasc``), so every point of the
box design space is physically realisable — parameterising the fold source
current instead would allow infeasible corners where the cascode branch
current goes negative.

Signal path and transfer function are the same cascade shape as the
telescopic::

    A(s) = gm1 Rout / ((1 + s Cfold / gmc)(1 + s Rout Cout))

but the fold node collects more parasitics (input-pair drain, fold-source
drain, cascode source), so the non-dominant pole is lower and the phase
margin is harder to meet at matched current — exactly the trade-off the
benchmark suite is meant to expose.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.circuits.devices import parasitic_capacitances, saturation_from_current
from repro.circuits.netlist import Netlist
from repro.circuits.topologies.base import (
    AMPLIFIER_METRIC_NAMES,
    SizingLike,
    SizingProblem,
    batch_evaluator_contract,
    register_topology,
)
from repro.core.design_space import DesignSpace, Parameter
from repro.search.spec import Spec


@register_topology
class FoldedCascodeOTA(SizingProblem):
    """Closed-form evaluator for the folded-cascode OTA."""

    name = "folded_cascode"
    VARIABLE_NAMES: Tuple[str, ...] = ("w1", "wc", "l1", "lc", "ibias", "icasc")
    METRIC_NAMES: Tuple[str, ...] = AMPLIFIER_METRIC_NAMES
    supports_stacked_corners = True

    # ------------------------------------------------------------------
    def design_space(self) -> DesignSpace:
        card = self.card
        return DesignSpace(
            [
                Parameter("w1", 10 * card.min_width, 1000 * card.min_width, 64, True, "m"),
                Parameter("wc", 10 * card.min_width, 1000 * card.min_width, 64, True, "m"),
                Parameter("l1", 2 * card.min_length, 20 * card.min_length, 64, True, "m"),
                Parameter("lc", 2 * card.min_length, 20 * card.min_length, 64, True, "m"),
                Parameter("ibias", 2e-6, 200e-6, 64, True, "A"),
                Parameter("icasc", 2e-6, 200e-6, 64, True, "A"),
            ]
        )

    # ------------------------------------------------------------------
    def _small_signal_parts(
        self, samples: np.ndarray, card=None, temperature_c=None
    ) -> Dict[str, np.ndarray]:
        """Vectorized small-signal quantities for ``(count, dim)`` sizings.

        ``card``/``temperature_c`` default to this problem's derated corner;
        the stacked corner engine passes ``(n_corners, 1)`` columns instead,
        and every quantity broadcasts to ``(n_corners, count)``.
        """
        card = self.card if card is None else card
        if temperature_c is None:
            temperature_c = self.condition.temperature_c
        w1, wc, l1, lc, ibias, icasc = samples.T
        vds = 0.5 * card.vdd_nominal
        phi_t = card.thermal_voltage(temperature_c)

        lam_n1 = card.lambda_n * card.min_length / l1
        lam_nc = card.lambda_n * card.min_length / lc
        lam_pc = card.lambda_p * card.min_length / lc
        half_tail = 0.5 * ibias

        # Input pair at the half-tail current.
        _, _, gm1, gds1 = saturation_from_current(
            card.kp_n * w1 / l1, lam_n1, half_tail, vds, phi_t
        )
        # PMOS signal cascode and NMOS cascode mirror at the branch current.
        _, _, gmc_p, gds_cp = saturation_from_current(
            card.kp_p * wc / lc, lam_pc, icasc, vds, phi_t
        )
        _, _, gmc_n, gds_cn = saturation_from_current(
            card.kp_n * wc / lc, lam_nc, icasc, vds, phi_t
        )
        # PMOS fold sources on top carry half-tail + branch current.
        _, _, _, gds_src = saturation_from_current(
            card.kp_p * wc / lc, lam_pc, half_tail + icasc, vds, phi_t
        )

        cgs1, cgd1, cdb1 = parasitic_capacitances(card, w1, l1)
        cgs_c, cgd_c, cdb_c = parasitic_capacitances(card, wc, lc)

        # Up: PMOS cascode boosts (ro1 || ro_src); down: NMOS cascode mirror.
        r_up = gmc_p / (gds_cp * (gds1 + gds_src))
        r_down = gmc_n / (gds_cn * gds_cn)
        rout = r_up * r_down / (r_up + r_down)
        cout = self.load_cap + 2.0 * (cdb_c + cgd_c)
        # Fold node: input-pair drain, fold-source drain, cascode source.
        c_fold = cdb1 + cgd1 + cdb_c + cgd_c + cgs_c
        return {
            "gm1": gm1,
            "gmc": gmc_p,
            "rout": rout,
            "cout": cout,
            "c_fold": c_fold,
            "ibias": ibias,
            "icasc": icasc,
            "vdd": np.asarray(card.vdd_nominal, dtype=np.float64),
        }

    def _metrics_from_parts(self, p: Dict[str, np.ndarray]) -> np.ndarray:
        """Closed-form metrics from the small-signal parts, any batch shape."""
        gm1, gmc = p["gm1"], p["gmc"]
        rout, cout, c_fold = p["rout"], p["cout"], p["c_fold"]

        two_pi = 2.0 * np.pi
        a0 = gm1 * rout
        fp1 = 1.0 / (two_pi * rout * cout)
        ffold = gmc / (two_pi * c_fold)
        fu = gm1 / (two_pi * cout)

        phase_margin = (
            180.0
            - np.degrees(np.arctan(fu / fp1))
            - np.degrees(np.arctan(fu / ffold))
        )
        dc_gain_db = 20.0 * np.log10(a0)
        # Supply current: two fold sources at (ibias/2 + icasc) each.
        power = p["vdd"] * (p["ibias"] + 2.0 * p["icasc"])
        # Large-signal: the output can source/sink at most the branch current
        # or the full tail, whichever saturates first.
        slew = np.minimum(p["ibias"], 2.0 * p["icasc"]) / cout
        return self._stack_metrics(dc_gain_db, fu, phase_margin, power, slew)

    @batch_evaluator_contract
    def evaluate_batch(self, samples: np.ndarray) -> np.ndarray:
        samples = self.validated_batch(samples)
        return self._metrics_from_parts(self._small_signal_parts(samples))

    # ------------------------------------------------------------------
    def default_specs(self) -> Dict[str, Tuple[Spec, ...]]:
        # Bounds calibrated by uniform sampling at the hardest sign-off
        # corner (ss/0.9V/125C): smoke ~2e-2 of the space is feasible,
        # nominal ~1e-3, stretch ~5e-5.  Slew tops out near
        # ``(power / vdd) / (2 Cout)`` because the branch current is paid
        # twice, so the slew bounds sit lower than the telescopic's.
        return {
            "smoke": (
                Spec("dc_gain_db", ">=", 85.0),
                Spec("ugbw_hz", ">=", 40e6),
                Spec("phase_margin_deg", ">=", 60.0),
                Spec("power_w", "<=", 400e-6),
                Spec("slew_v_per_s", ">=", 25e6),
            ),
            "nominal": (
                Spec("dc_gain_db", ">=", 92.0),
                Spec("ugbw_hz", ">=", 60e6),
                Spec("phase_margin_deg", ">=", 60.0),
                Spec("power_w", "<=", 350e-6),
                Spec("slew_v_per_s", ">=", 35e6),
            ),
            "stretch": (
                Spec("dc_gain_db", ">=", 95.0),
                Spec("ugbw_hz", ">=", 70e6),
                Spec("phase_margin_deg", ">=", 60.0),
                Spec("power_w", "<=", 320e-6),
                Spec("slew_v_per_s", ">=", 38e6),
            ),
        }

    # ------------------------------------------------------------------
    def small_signal_netlist(self, sizing: SizingLike) -> Netlist:
        """Equivalent linear netlist: fold node section into the output node.

        Node ``f`` is the fold node (impedance ``1/gmc`` of the PMOS signal
        cascode, loaded by ``Cfold``); the cascode relays the current into
        the high-impedance output.  Two inversions make the ``in -> out``
        transfer start at 0 degrees.
        """
        vector = self.to_vector(sizing)
        p = self._small_signal_parts(vector[np.newaxis, :])
        gm1 = float(p["gm1"][0])
        gmc = float(p["gmc"][0])

        netlist = Netlist(f"folded-cascode OTA @ {self.condition.name}")
        netlist.add_voltage_source("in", "0", 1.0)
        netlist.add_vccs("f", "0", "in", "0", gm1)
        netlist.add_resistor("f", "0", 1.0 / gmc)
        netlist.add_capacitor("f", "0", float(p["c_fold"][0]))
        netlist.add_vccs("out", "0", "f", "0", gmc)
        netlist.add_resistor("out", "0", float(p["rout"][0]))
        netlist.add_capacitor("out", "0", float(p["cout"][0]))
        return netlist
