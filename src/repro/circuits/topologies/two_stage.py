"""Analytical two-stage Miller-compensated opamp evaluator.

This is the workload the paper's sizing agent is demonstrated on: an NMOS-input
differential pair (M1/M2) with PMOS mirror load (M3/M4), followed by an NMOS
common-source second stage (M6) with a PMOS current-source load (M7), Miller
capacitor ``cc`` between the stage-1 and stage-2 outputs, and an external
load ``CL``.

Two evaluation paths are provided and kept consistent by construction:

* :meth:`TwoStageOpAmp.evaluate_batch` — fully vectorized closed-form
  metrics over a ``(count, dim)`` array of sizings in one NumPy pass.  This
  is the hot path the Monte-Carlo/trust-region search hammers.
* :meth:`TwoStageOpAmp.small_signal_netlist` — the equivalent linear
  netlist, so :mod:`repro.circuits.mna` can cross-check the closed-form
  poles/zero numerically.  Both paths derive device small-signal parameters
  from the same :func:`repro.circuits.devices.saturation_from_current`
  formulas, so they agree to the accuracy of the two-pole approximation.

The closed-form transfer function of the compensated two-stage is the
standard two-pole, one-RHP-zero result::

    A(s) = A0 (1 - s Cc/gm6) / (1 + a s + b s^2)
    A0 = gm1 R1 gm6 R2
    a  = R1 (C1 + Cc) + R2 (C2 + Cc) + gm6 R1 R2 Cc
    b  = R1 R2 (C1 C2 + Cc (C1 + C2))

with the dominant pole ``p1 ~ 1/a``, the non-dominant pole ``p2 ~ a/b``, the
zero ``z = gm6/Cc`` and the unity-gain bandwidth ``gm1 / (2 pi Cc)``.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.circuits.devices import MOSFET, parasitic_capacitances, saturation_from_current
from repro.circuits.netlist import Netlist
from repro.circuits.topologies.base import (
    AMPLIFIER_METRIC_NAMES,
    SizingLike,
    SizingProblem,
    batch_evaluator_contract,
    register_topology,
)
from repro.core.design_space import DesignSpace, Parameter
from repro.search.spec import Spec

#: Order of the sizing variables in vector form.
VARIABLE_NAMES: Tuple[str, ...] = ("w1", "w3", "w6", "l12", "l6", "ibias", "i2", "cc")

#: Order of the measurements returned by the batch evaluator.
METRIC_NAMES: Tuple[str, ...] = AMPLIFIER_METRIC_NAMES


@register_topology
class TwoStageOpAmp(SizingProblem):
    """Closed-form evaluator for the two-stage Miller opamp."""

    name = "two_stage_opamp"
    VARIABLE_NAMES: Tuple[str, ...] = VARIABLE_NAMES
    METRIC_NAMES: Tuple[str, ...] = METRIC_NAMES
    supports_stacked_corners = True

    # ------------------------------------------------------------------
    def design_space(self) -> DesignSpace:
        """The CSP domain of Eq. (2): 8 gridded variables, |D| ~ 1e14."""
        card = self.card
        return DesignSpace(
            [
                Parameter("w1", 10 * card.min_width, 1000 * card.min_width, 64, True, "m"),
                Parameter("w3", 10 * card.min_width, 1000 * card.min_width, 64, True, "m"),
                Parameter("w6", 10 * card.min_width, 2000 * card.min_width, 64, True, "m"),
                Parameter("l12", 2 * card.min_length, 20 * card.min_length, 64, True, "m"),
                Parameter("l6", 2 * card.min_length, 20 * card.min_length, 64, True, "m"),
                Parameter("ibias", 2e-6, 200e-6, 64, True, "A"),
                Parameter("i2", 10e-6, 1e-3, 64, True, "A"),
                Parameter("cc", 0.2e-12, 5e-12, 64, True, "F"),
            ]
        )

    # ------------------------------------------------------------------
    def _small_signal_parts(
        self, samples: np.ndarray, card=None, temperature_c=None
    ) -> Dict[str, np.ndarray]:
        """Vectorized small-signal quantities for ``(count, dim)`` sizings.

        ``card``/``temperature_c`` default to this problem's derated corner;
        the stacked corner engine passes ``(n_corners, 1)`` columns instead,
        and every quantity broadcasts to ``(n_corners, count)``.
        """
        card = self.card if card is None else card
        if temperature_c is None:
            temperature_c = self.condition.temperature_c
        w1, w3, w6, l12, l6, ibias, i2, cc = samples.T
        vdd = card.vdd_nominal
        vds = 0.5 * vdd  # representative mid-rail bias for every device
        phi_t = card.thermal_voltage(temperature_c)

        lam_n12 = card.lambda_n * card.min_length / l12
        lam_p12 = card.lambda_p * card.min_length / l12
        lam_n6 = card.lambda_n * card.min_length / l6
        lam_p6 = card.lambda_p * card.min_length / l6

        id1 = 0.5 * ibias
        _, _, gm1, gds2 = saturation_from_current(card.kp_n * w1 / l12, lam_n12, id1, vds, phi_t)
        _, _, _, gds4 = saturation_from_current(card.kp_p * w3 / l12, lam_p12, id1, vds, phi_t)
        _, _, gm6, gds6 = saturation_from_current(card.kp_n * w6 / l6, lam_n6, i2, vds, phi_t)
        _, _, _, gds7 = saturation_from_current(card.kp_p * w6 / l6, lam_p6, i2, vds, phi_t)

        _, cgd2, cdb2 = parasitic_capacitances(card, w1, l12)
        _, cgd4, cdb4 = parasitic_capacitances(card, w3, l12)
        cgs6, cgd7, cdb6 = parasitic_capacitances(card, w6, l6)
        cdb7 = cdb6

        r1 = 1.0 / (gds2 + gds4)
        c1 = cgd2 + cdb2 + cgd4 + cdb4 + cgs6
        r2 = 1.0 / (gds6 + gds7)
        c2 = self.load_cap + cdb6 + cdb7 + cgd7
        return {
            "gm1": gm1,
            "gm6": gm6,
            "r1": r1,
            "c1": c1,
            "r2": r2,
            "c2": c2,
            "cc": cc,
            "ibias": ibias,
            "i2": i2,
            "vdd": np.asarray(vdd, dtype=np.float64),
        }

    def _metrics_from_parts(self, p: Dict[str, np.ndarray]) -> np.ndarray:
        """Closed-form metrics from the small-signal parts, any batch shape."""
        gm1, gm6 = p["gm1"], p["gm6"]
        r1, c1, r2, c2, cc = p["r1"], p["c1"], p["r2"], p["c2"], p["cc"]

        a0 = gm1 * r1 * gm6 * r2
        a = r1 * (c1 + cc) + r2 * (c2 + cc) + gm6 * r1 * r2 * cc
        b = r1 * r2 * (c1 * c2 + cc * (c1 + c2))
        two_pi = 2.0 * np.pi
        fp1 = 1.0 / (two_pi * a)
        fp2 = a / (two_pi * b)
        fz = gm6 / (two_pi * cc)
        fu = gm1 / (two_pi * cc)

        phase_margin = (
            180.0
            - np.degrees(np.arctan(fu / fp1))
            - np.degrees(np.arctan(fu / fp2))
            - np.degrees(np.arctan(fu / fz))
        )
        dc_gain_db = 20.0 * np.log10(a0)
        power = p["vdd"] * (p["ibias"] + p["i2"])
        slew = np.minimum(p["ibias"] / cc, p["i2"] / c2)
        return self._stack_metrics(dc_gain_db, fu, phase_margin, power, slew)

    @batch_evaluator_contract
    def evaluate_batch(self, samples: np.ndarray) -> np.ndarray:
        """Closed-form metrics for a ``(count, dim)`` array of sizings.

        Returns an array of shape ``(count, len(METRIC_NAMES))`` computed in
        a single vectorized pass — no per-sample Python loop.
        """
        samples = self.validated_batch(samples)
        return self._metrics_from_parts(self._small_signal_parts(samples))

    # ------------------------------------------------------------------
    def default_specs(self) -> Dict[str, Tuple[Spec, ...]]:
        """Spec tiers; ``nominal`` is the paper-style headline experiment.

        Feasible fractions of the design space under uniform sampling at the
        hardest sign-off corner (ss/0.9V/125C): smoke ~1.4e-2, nominal
        ~3e-4 (the "once per few thousand samples" calibration of the
        original demo), stretch ~3e-6.
        """
        return {
            "smoke": (
                Spec("dc_gain_db", ">=", 70.0),
                Spec("ugbw_hz", ">=", 30e6),
                Spec("phase_margin_deg", ">=", 55.0),
                Spec("power_w", "<=", 400e-6),
                Spec("slew_v_per_s", ">=", 10e6),
            ),
            "nominal": (
                Spec("dc_gain_db", ">=", 80.0),
                Spec("ugbw_hz", ">=", 50e6),
                Spec("phase_margin_deg", ">=", 60.0),
                Spec("power_w", "<=", 300e-6),
                Spec("slew_v_per_s", ">=", 20e6),
            ),
            "stretch": (
                Spec("dc_gain_db", ">=", 84.0),
                Spec("ugbw_hz", ">=", 70e6),
                Spec("phase_margin_deg", ">=", 60.0),
                Spec("power_w", "<=", 280e-6),
                Spec("slew_v_per_s", ">=", 25e6),
            ),
        }

    # ------------------------------------------------------------------
    def small_signal_netlist(self, sizing: SizingLike) -> Netlist:
        """Build the equivalent linear netlist for MNA cross-checking.

        Nodes: ``in`` (AC stimulus), ``x`` (stage-1 output), ``out``.  Both
        transconductance stages invert, so the ``in -> out`` transfer starts
        at 0 degrees and :func:`unity_gain_metrics` applies directly.
        """
        vector = self.to_vector(sizing)
        w1, w3, w6, l12, l6, ibias, i2, cc = vector
        card = self.card
        vds = 0.5 * card.vdd_nominal
        temperature = self.condition.temperature_c

        m2 = MOSFET("nmos", w1, l12, card)
        m4 = MOSFET("pmos", w3, l12, card)
        m6 = MOSFET("nmos", w6, l6, card)
        m7 = MOSFET("pmos", w6, l6, card)
        op2 = m2.bias_for_current(0.5 * ibias, vds, temperature)
        op4 = m4.bias_for_current(0.5 * ibias, vds, temperature)
        op6 = m6.bias_for_current(i2, vds, temperature)
        op7 = m7.bias_for_current(i2, vds, temperature)

        c1 = op2.cgd + op2.cdb + op4.cgd + op4.cdb + op6.cgs
        c2 = self.load_cap + op6.cdb + op7.cdb + op7.cgd

        netlist = Netlist(f"two-stage opamp @ {self.condition.name}")
        netlist.add_voltage_source("in", "0", 1.0)
        # Stage 1: inverting transconductance gm1 loaded by R1 || C1.
        netlist.add_vccs("x", "0", "in", "0", op2.gm)
        netlist.add_resistor("x", "0", 1.0 / (op2.gds + op4.gds))
        netlist.add_capacitor("x", "0", c1)
        # Stage 2: inverting transconductance gm6 loaded by R2 || C2.
        netlist.add_vccs("out", "0", "x", "0", op6.gm)
        netlist.add_resistor("out", "0", 1.0 / (op6.gds + op7.gds))
        netlist.add_capacitor("out", "0", c2)
        # Miller compensation couples the stages (pole splitting + RHP zero).
        netlist.add_capacitor("x", "out", cc)
        return netlist
