"""Five-transistor OTA: the smallest workload in the topology zoo.

An NMOS differential pair (M1/M2) with a PMOS current-mirror load (M3/M4)
and a tail current source (M5).  Single high-impedance node at the output,
so the response is dominated by one pole, with the classic mirror pole/zero
doublet as the only other feature::

    A(s) = gm1 Rout (1 + s Cm / (2 gm3)) / ((1 + s Cm / gm3)(1 + s Rout Cout))

The M2 half of the input signal reaches the output directly while the M1
half is relayed through the mirror; the mirror pole at ``gm3 / Cm`` therefore
comes with a left-half-plane zero at exactly twice its frequency.  Both the
closed-form metrics and the MNA netlist realise this same transfer function,
so the cross-check agrees by construction.

Being a single-stage amplifier, the 5T OTA trades gain (no cascoding, no
second stage) for simplicity — its spec ladder tops out around 40 dB, and
its 5-dimensional design space makes it the fastest benchmark in the suite.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.circuits.devices import parasitic_capacitances, saturation_from_current
from repro.circuits.netlist import Netlist
from repro.circuits.topologies.base import (
    AMPLIFIER_METRIC_NAMES,
    SizingLike,
    SizingProblem,
    batch_evaluator_contract,
    register_topology,
)
from repro.core.design_space import DesignSpace, Parameter
from repro.search.spec import Spec


@register_topology
class FiveTransistorOTA(SizingProblem):
    """Closed-form evaluator for the five-transistor OTA."""

    name = "ota_5t"
    VARIABLE_NAMES: Tuple[str, ...] = ("w1", "w3", "l1", "l3", "ibias")
    METRIC_NAMES: Tuple[str, ...] = AMPLIFIER_METRIC_NAMES
    supports_stacked_corners = True

    # ------------------------------------------------------------------
    def design_space(self) -> DesignSpace:
        card = self.card
        return DesignSpace(
            [
                Parameter("w1", 10 * card.min_width, 1000 * card.min_width, 64, True, "m"),
                Parameter("w3", 10 * card.min_width, 1000 * card.min_width, 64, True, "m"),
                Parameter("l1", 2 * card.min_length, 20 * card.min_length, 64, True, "m"),
                Parameter("l3", 2 * card.min_length, 20 * card.min_length, 64, True, "m"),
                Parameter("ibias", 2e-6, 500e-6, 64, True, "A"),
            ]
        )

    # ------------------------------------------------------------------
    def _small_signal_parts(
        self, samples: np.ndarray, card=None, temperature_c=None
    ) -> Dict[str, np.ndarray]:
        """Vectorized small-signal quantities for ``(count, dim)`` sizings.

        ``card``/``temperature_c`` default to this problem's derated corner;
        the stacked corner engine passes ``(n_corners, 1)`` columns instead,
        and every quantity broadcasts to ``(n_corners, count)``.
        """
        card = self.card if card is None else card
        if temperature_c is None:
            temperature_c = self.condition.temperature_c
        w1, w3, l1, l3, ibias = samples.T
        vds = 0.5 * card.vdd_nominal
        phi_t = card.thermal_voltage(temperature_c)

        lam_n = card.lambda_n * card.min_length / l1
        lam_p = card.lambda_p * card.min_length / l3
        branch = 0.5 * ibias
        _, _, gm1, gds1 = saturation_from_current(card.kp_n * w1 / l1, lam_n, branch, vds, phi_t)
        _, _, gm3, gds3 = saturation_from_current(card.kp_p * w3 / l3, lam_p, branch, vds, phi_t)

        cgs1, cgd1, cdb1 = parasitic_capacitances(card, w1, l1)
        cgs3, cgd3, cdb3 = parasitic_capacitances(card, w3, l3)

        rout = 1.0 / (gds1 + gds3)
        cout = self.load_cap + cdb1 + cgd1 + cdb3 + cgd3
        # Mirror node: both mirror gates, the M3 drain and the M1 drain.
        cm = 2.0 * cgs3 + cdb3 + cdb1 + cgd1
        return {
            "gm1": gm1,
            "gm3": gm3,
            "rout": rout,
            "cout": cout,
            "cm": cm,
            "ibias": ibias,
            "vdd": np.asarray(card.vdd_nominal, dtype=np.float64),
        }

    def _metrics_from_parts(self, p: Dict[str, np.ndarray]) -> np.ndarray:
        """Closed-form metrics from the small-signal parts, any batch shape."""
        gm1, gm3 = p["gm1"], p["gm3"]
        rout, cout, cm = p["rout"], p["cout"], p["cm"]

        two_pi = 2.0 * np.pi
        a0 = gm1 * rout
        fp1 = 1.0 / (two_pi * rout * cout)
        fpm = gm3 / (two_pi * cm)
        fz = 2.0 * fpm  # LHP zero of the mirror doublet
        fu = gm1 / (two_pi * cout)

        phase_margin = (
            180.0
            - np.degrees(np.arctan(fu / fp1))
            - np.degrees(np.arctan(fu / fpm))
            + np.degrees(np.arctan(fu / fz))
        )
        dc_gain_db = 20.0 * np.log10(a0)
        power = p["vdd"] * p["ibias"]
        slew = p["ibias"] / cout
        return self._stack_metrics(dc_gain_db, fu, phase_margin, power, slew)

    @batch_evaluator_contract
    def evaluate_batch(self, samples: np.ndarray) -> np.ndarray:
        samples = self.validated_batch(samples)
        return self._metrics_from_parts(self._small_signal_parts(samples))

    # ------------------------------------------------------------------
    def default_specs(self) -> Dict[str, Tuple[Spec, ...]]:
        # Bounds calibrated by uniform sampling at the hardest sign-off
        # corner (ss/0.9V/125C): smoke ~4e-2 of the space is feasible,
        # nominal ~1e-3, stretch ~2e-4.
        return {
            "smoke": (
                Spec("dc_gain_db", ">=", 45.0),
                Spec("ugbw_hz", ">=", 60e6),
                Spec("phase_margin_deg", ">=", 60.0),
                Spec("power_w", "<=", 300e-6),
                Spec("slew_v_per_s", ">=", 40e6),
            ),
            "nominal": (
                Spec("dc_gain_db", ">=", 48.0),
                Spec("ugbw_hz", ">=", 90e6),
                Spec("phase_margin_deg", ">=", 60.0),
                Spec("power_w", "<=", 250e-6),
                Spec("slew_v_per_s", ">=", 60e6),
            ),
            "stretch": (
                Spec("dc_gain_db", ">=", 50.0),
                Spec("ugbw_hz", ">=", 110e6),
                Spec("phase_margin_deg", ">=", 60.0),
                Spec("power_w", "<=", 300e-6),
                Spec("slew_v_per_s", ">=", 80e6),
            ),
        }

    # ------------------------------------------------------------------
    def small_signal_netlist(self, sizing: SizingLike) -> Netlist:
        """Equivalent linear netlist realising the doublet transfer function.

        Node ``m`` is the mirror node; the M2 half-signal is injected
        straight into ``out`` while the M1 half is relayed through the
        mirror, which is what produces the pole/zero doublet.  Signs are
        arranged so the ``in -> out`` transfer starts at 0 degrees and
        :func:`repro.circuits.mna.unity_gain_metrics` applies directly.
        """
        vector = self.to_vector(sizing)
        p = self._small_signal_parts(vector[np.newaxis, :])
        gm1 = float(p["gm1"][0])
        gm3 = float(p["gm3"][0])

        netlist = Netlist(f"5T OTA @ {self.condition.name}")
        netlist.add_voltage_source("in", "0", 1.0)
        # Mirror node: diode-connected M3 (1/gm3) loaded by Cm, driven by
        # the M1 half of the differential current.
        netlist.add_vccs("m", "0", "in", "0", 0.5 * gm1)
        netlist.add_resistor("m", "0", 1.0 / gm3)
        netlist.add_capacitor("m", "0", float(p["cm"][0]))
        # Output: mirror output M4 relays -v_m, M2 injects the other half.
        netlist.add_vccs("out", "0", "m", "0", gm3)
        netlist.add_vccs("0", "out", "in", "0", 0.5 * gm1)
        netlist.add_resistor("out", "0", float(p["rout"][0]))
        netlist.add_capacitor("out", "0", float(p["cout"][0]))
        return netlist
