"""Telescopic cascode OTA: highest single-stage gain in the zoo.

An NMOS input pair (M1/M2) stacked under NMOS cascodes (M3/M4), loaded by a
PMOS cascode current source (M5-M8), all in one branch — the textbook
high-gain, low-swing single-stage amplifier.  Cascoding boosts the output
resistance to ``(gm ro) ro`` on both sides, so the DC gain reaches
``gm1 (gm ro^2 || gm ro^2)`` — 70-90 dB from a single stage — while the
signal path stays a simple cascade::

    A(s) = gm1 Rout / ((1 + s Ccasc / gmc)(1 + s Rout Cout))

The non-dominant pole sits at the NMOS cascode source (the input pair's
drain), where the impedance is ``1/gmc``.  No Miller capacitor is needed:
the load capacitor itself compensates the single high-impedance node, so
``slew = ibias / Cout`` and the phase margin *improves* with heavier loads.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.circuits.devices import parasitic_capacitances, saturation_from_current
from repro.circuits.netlist import Netlist
from repro.circuits.topologies.base import (
    AMPLIFIER_METRIC_NAMES,
    SizingLike,
    SizingProblem,
    batch_evaluator_contract,
    register_topology,
)
from repro.core.design_space import DesignSpace, Parameter
from repro.search.spec import Spec


@register_topology
class TelescopicCascodeOTA(SizingProblem):
    """Closed-form evaluator for the telescopic cascode OTA."""

    name = "telescopic"
    VARIABLE_NAMES: Tuple[str, ...] = ("w1", "wc", "l1", "lc", "ibias")
    METRIC_NAMES: Tuple[str, ...] = AMPLIFIER_METRIC_NAMES
    supports_stacked_corners = True

    # ------------------------------------------------------------------
    def design_space(self) -> DesignSpace:
        card = self.card
        return DesignSpace(
            [
                Parameter("w1", 10 * card.min_width, 1000 * card.min_width, 64, True, "m"),
                Parameter("wc", 10 * card.min_width, 1000 * card.min_width, 64, True, "m"),
                Parameter("l1", 2 * card.min_length, 20 * card.min_length, 64, True, "m"),
                Parameter("lc", 2 * card.min_length, 20 * card.min_length, 64, True, "m"),
                Parameter("ibias", 2e-6, 400e-6, 64, True, "A"),
            ]
        )

    # ------------------------------------------------------------------
    def _small_signal_parts(
        self, samples: np.ndarray, card=None, temperature_c=None
    ) -> Dict[str, np.ndarray]:
        """Vectorized small-signal quantities for ``(count, dim)`` sizings.

        ``card``/``temperature_c`` default to this problem's derated corner;
        the stacked corner engine passes ``(n_corners, 1)`` columns instead,
        and every quantity broadcasts to ``(n_corners, count)``.
        """
        card = self.card if card is None else card
        if temperature_c is None:
            temperature_c = self.condition.temperature_c
        w1, wc, l1, lc, ibias = samples.T
        vds = 0.5 * card.vdd_nominal
        phi_t = card.thermal_voltage(temperature_c)

        lam_n1 = card.lambda_n * card.min_length / l1
        lam_nc = card.lambda_n * card.min_length / lc
        lam_pc = card.lambda_p * card.min_length / lc
        branch = 0.5 * ibias

        # Input pair, NMOS cascode, PMOS cascode and PMOS current source all
        # carry the same half-tail branch current.
        _, _, gm1, gds1 = saturation_from_current(card.kp_n * w1 / l1, lam_n1, branch, vds, phi_t)
        _, _, gmc_n, gds_cn = saturation_from_current(
            card.kp_n * wc / lc, lam_nc, branch, vds, phi_t
        )
        _, _, gmc_p, gds_cp = saturation_from_current(
            card.kp_p * wc / lc, lam_pc, branch, vds, phi_t
        )
        gds_src = gds_cp  # PMOS current source sized like the cascode

        cgs1, cgd1, cdb1 = parasitic_capacitances(card, w1, l1)
        cgs_c, cgd_c, cdb_c = parasitic_capacitances(card, wc, lc)

        # Cascoding multiplies the looking-in resistance by the cascode's
        # intrinsic gain on both the NMOS and PMOS side.
        r_down = gmc_n / (gds_cn * gds1)
        r_up = gmc_p / (gds_cp * gds_src)
        rout = r_down * r_up / (r_down + r_up)
        # Output sees both cascode drains plus the external load.
        cout = self.load_cap + 2.0 * (cdb_c + cgd_c)
        # NMOS cascode source node: input-pair drain plus the cascode source.
        c_casc = cdb1 + cgd1 + cgs_c
        return {
            "gm1": gm1,
            "gmc": gmc_n,
            "rout": rout,
            "cout": cout,
            "c_casc": c_casc,
            "ibias": ibias,
            "vdd": np.asarray(card.vdd_nominal, dtype=np.float64),
        }

    def _metrics_from_parts(self, p: Dict[str, np.ndarray]) -> np.ndarray:
        """Closed-form metrics from the small-signal parts, any batch shape."""
        gm1, gmc = p["gm1"], p["gmc"]
        rout, cout, c_casc = p["rout"], p["cout"], p["c_casc"]

        two_pi = 2.0 * np.pi
        a0 = gm1 * rout
        fp1 = 1.0 / (two_pi * rout * cout)
        fcasc = gmc / (two_pi * c_casc)
        fu = gm1 / (two_pi * cout)

        phase_margin = (
            180.0
            - np.degrees(np.arctan(fu / fp1))
            - np.degrees(np.arctan(fu / fcasc))
        )
        dc_gain_db = 20.0 * np.log10(a0)
        power = p["vdd"] * p["ibias"]
        slew = p["ibias"] / cout
        return self._stack_metrics(dc_gain_db, fu, phase_margin, power, slew)

    @batch_evaluator_contract
    def evaluate_batch(self, samples: np.ndarray) -> np.ndarray:
        samples = self.validated_batch(samples)
        return self._metrics_from_parts(self._small_signal_parts(samples))

    # ------------------------------------------------------------------
    def default_specs(self) -> Dict[str, Tuple[Spec, ...]]:
        # Bounds calibrated by uniform sampling at the hardest sign-off
        # corner (ss/0.9V/125C): smoke ~4e-2 of the space is feasible,
        # nominal ~1e-3, stretch ~3e-4.
        return {
            "smoke": (
                Spec("dc_gain_db", ">=", 95.0),
                Spec("ugbw_hz", ">=", 60e6),
                Spec("phase_margin_deg", ">=", 60.0),
                Spec("power_w", "<=", 300e-6),
                Spec("slew_v_per_s", ">=", 40e6),
            ),
            "nominal": (
                Spec("dc_gain_db", ">=", 100.0),
                Spec("ugbw_hz", ">=", 90e6),
                Spec("phase_margin_deg", ">=", 60.0),
                Spec("power_w", "<=", 250e-6),
                Spec("slew_v_per_s", ">=", 60e6),
            ),
            "stretch": (
                Spec("dc_gain_db", ">=", 102.0),
                Spec("ugbw_hz", ">=", 110e6),
                Spec("phase_margin_deg", ">=", 60.0),
                Spec("power_w", "<=", 300e-6),
                Spec("slew_v_per_s", ">=", 80e6),
            ),
        }

    # ------------------------------------------------------------------
    def small_signal_netlist(self, sizing: SizingLike) -> Netlist:
        """Equivalent linear netlist: two cascaded first-order sections.

        Node ``s`` is the NMOS cascode source (impedance ``1/gmc`` loaded by
        ``Ccasc``); the cascode relays the current into the high-impedance
        output.  Two inversions make the ``in -> out`` transfer start at 0
        degrees.
        """
        vector = self.to_vector(sizing)
        p = self._small_signal_parts(vector[np.newaxis, :])
        gm1 = float(p["gm1"][0])
        gmc = float(p["gmc"][0])

        netlist = Netlist(f"telescopic cascode OTA @ {self.condition.name}")
        netlist.add_voltage_source("in", "0", 1.0)
        netlist.add_vccs("s", "0", "in", "0", gm1)
        netlist.add_resistor("s", "0", 1.0 / gmc)
        netlist.add_capacitor("s", "0", float(p["c_casc"][0]))
        netlist.add_vccs("out", "0", "s", "0", gmc)
        netlist.add_resistor("out", "0", float(p["rout"][0]))
        netlist.add_capacitor("out", "0", float(p["cout"][0]))
        return netlist
