"""PVT (process, voltage, temperature) corner modelling.

The paper's key verification-level contribution is the treatment of PVT
corners (Section IV-E and Table III).  A :class:`PVTCondition` bundles a
process corner, a supply-voltage scaling and a junction temperature; applying
it to a :class:`~repro.circuits.process.TechnologyCard` yields a *derated*
card that the device model consumes.

The default nine-corner grid matches Fig. 3 of the paper (3 process corners x
3 supply/temperature combinations is one common sign-off recipe; the exact
corner list is configurable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.contracts import SeqLen, contract
from repro.circuits.process import (
    ROOM_TEMPERATURE_K,
    TechnologyCard,
    _stacked_card_check,
    stack_cards,
)

#: Multiplicative/additive derating factors per process corner:
#: (nmos mobility factor, pmos mobility factor, nmos Vth shift, pmos Vth shift)
PROCESS_CORNERS: Dict[str, Tuple[float, float, float, float]] = {
    "tt": (1.00, 1.00, 0.000, 0.000),
    "ff": (1.12, 1.12, -0.035, -0.035),
    "ss": (0.88, 0.88, +0.035, +0.035),
    "fs": (1.10, 0.90, -0.030, +0.030),
    "sf": (0.90, 1.10, +0.030, -0.030),
}

#: Mobility degrades roughly as (T/T0)^-1.5; threshold drops ~1.5 mV/K.
MOBILITY_TEMPERATURE_EXPONENT = -1.5
VTH_TEMPERATURE_SLOPE = -1.5e-3


@dataclass(frozen=True)
class PVTCondition:
    """One sign-off corner.

    Attributes
    ----------
    process:
        Process corner name (one of :data:`PROCESS_CORNERS`).
    voltage_factor:
        Supply scaling relative to the node's nominal VDD (e.g. 0.9 / 1.0 / 1.1).
    temperature_c:
        Junction temperature in Celsius.
    """

    process: str = "tt"
    voltage_factor: float = 1.0
    temperature_c: float = 27.0

    def __post_init__(self) -> None:
        if self.process not in PROCESS_CORNERS:
            raise ValueError(
                f"unknown process corner {self.process!r}; "
                f"available: {', '.join(sorted(PROCESS_CORNERS))}"
            )
        if not 0.5 <= self.voltage_factor <= 1.5:
            raise ValueError("voltage_factor outside the supported 0.5-1.5 range")
        if not -60.0 <= self.temperature_c <= 175.0:
            raise ValueError("temperature outside the supported -60..175 C range")

    @property
    def name(self) -> str:
        """Compact display name, e.g. ``ss_0.90V_125C``."""
        return f"{self.process}_{self.voltage_factor:.2f}V_{self.temperature_c:.0f}C"

    def apply(self, card: TechnologyCard) -> TechnologyCard:
        """Return a technology card derated to this corner."""
        mob_n, mob_p, dvth_n, dvth_p = PROCESS_CORNERS[self.process]
        temperature_k = self.temperature_c + 273.15
        mobility_temp = (temperature_k / ROOM_TEMPERATURE_K) ** MOBILITY_TEMPERATURE_EXPONENT
        vth_temp = VTH_TEMPERATURE_SLOPE * (temperature_k - ROOM_TEMPERATURE_K)
        return card.with_overrides(
            vdd_nominal=card.vdd_nominal * self.voltage_factor,
            kp_n=card.kp_n * mob_n * mobility_temp,
            kp_p=card.kp_p * mob_p * mobility_temp,
            vth_n=max(card.vth_n + dvth_n + vth_temp, 0.05),
            vth_p=max(card.vth_p + dvth_p + vth_temp, 0.05),
        )

    @staticmethod
    @contract(
        args={"corners": SeqLen("c")},
        check=lambda arguments, result: _stacked_card_check(
            {"cards": arguments["corners"]}, result
        ),
    )
    def apply_stack(
        corners: Sequence["PVTCondition"], card: TechnologyCard
    ) -> TechnologyCard:
        """Derate ``card`` to every corner at once: a struct-of-arrays card.

        The corner-dependent fields (``vdd_nominal``, ``kp_n``, ``kp_p``,
        ``vth_n``, ``vth_p``) come back as ``(n_corners, 1)`` columns that
        broadcast against a ``(count,)`` batch axis, turning the PVT corner
        into a leading tensor axis of any vectorized evaluator.  Each row is
        produced by the scalar :meth:`apply` path and merely *stacked*, so
        row ``i`` is bit-identical to ``corners[i].apply(card)`` — the basis
        of the corner-engine parity guarantee.
        """
        return stack_cards([corner.apply(card) for corner in corners])

    def severity(self) -> float:
        """Heuristic difficulty score (larger = harder corner).

        Slow devices, low supply and high temperature make analog specs harder
        to meet; the progressive exploration strategy (Section IV-E) uses this
        to pick the "hardest condition" first.
        """
        mob_n, mob_p, dvth_n, dvth_p = PROCESS_CORNERS[self.process]
        slowness = (2.0 - mob_n - mob_p) + 10.0 * max(dvth_n, 0.0) + 10.0 * max(dvth_p, 0.0)
        low_supply = max(1.0 - self.voltage_factor, 0.0) * 4.0
        hot = max(self.temperature_c - 27.0, 0.0) / 100.0
        cold = max(27.0 - self.temperature_c, 0.0) / 400.0
        return slowness + low_supply + hot + cold


#: The nominal condition used for single-corner experiments (Table I).
NOMINAL = PVTCondition("tt", 1.0, 27.0)


def nine_corner_grid() -> List[PVTCondition]:
    """The 9-corner sign-off grid used for Fig. 3 / Table III.

    Three process corners (tt/ff/ss) crossed with three environment points
    (nominal, low-voltage hot, high-voltage cold).
    """
    environments = [
        (1.0, 27.0),
        (0.9, 125.0),
        (1.1, -40.0),
    ]
    corners = []
    for process in ("tt", "ff", "ss"):
        for voltage_factor, temperature in environments:
            corners.append(PVTCondition(process, voltage_factor, temperature))
    return corners


def full_corner_grid() -> List[PVTCondition]:
    """All five process corners crossed with voltage and temperature extremes."""
    corners = []
    for process in sorted(PROCESS_CORNERS):
        for voltage_factor in (0.9, 1.0, 1.1):
            for temperature in (-40.0, 27.0, 125.0):
                corners.append(PVTCondition(process, voltage_factor, temperature))
    return corners


def hardest_condition(conditions: Sequence[PVTCondition]) -> PVTCondition:
    """Return the corner with the highest severity score."""
    if not conditions:
        raise ValueError("no PVT conditions supplied")
    return max(conditions, key=lambda condition: condition.severity())


def rank_by_severity(conditions: Sequence[PVTCondition]) -> List[PVTCondition]:
    """Conditions sorted hardest-first."""
    return sorted(conditions, key=lambda condition: condition.severity(), reverse=True)
