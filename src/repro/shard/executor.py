"""Sharded multi-process campaign execution with bit-identical parity.

The paper's sizing loop is embarrassingly parallel across (workload, seed)
cells: PR 9 reduced a campaign member's round to pure tensor calls, so the
only state two seeds share is the evaluation cache — and that sharing is an
optimisation, never a dependency.  The :class:`ShardedExecutor` exploits
exactly that: it partitions a run into single-seed **shards** (one
:class:`ShardSpec` each), executes every shard as its own single-seed
:class:`~repro.search.campaign.Campaign` inside a spawned worker process,
and merges results, counters and cache state back in the parent.

Design decisions, and why:

* **Spawn, not fork.**  Workers come from an explicit
  ``multiprocessing.get_context("spawn")``: the engine process holds NumPy
  thread pools, open store file handles and a module-level tracer — all
  states ``fork`` would duplicate into undefined territory.  Spawned
  workers rebuild their campaign from the declarative, picklable
  :class:`ShardSpec` (registry names + resolved config), never by pickling
  live campaign objects.  The ``spawn-unsafe`` lint rule enforces this
  repo-wide.
* **Shard-per-worker store files, merged on close** (not an advisory-locked
  shared log).  Every shard appends its fresh pairs to a private
  ``<master>.shard-NNN`` file and warm-loads the master read-only, so the
  :class:`~repro.resilience.store.CacheStore`'s single-writer append-only
  invariant — and with it the torn-tail repair story — survives unchanged,
  with zero cross-process locking (``fcntl`` advisory locks are both
  platform-dependent and a brand-new failure mode under SIGKILL).  After
  all workers exit, the parent replays the shard files into the master in
  shard order, deduplicating; parity locks make duplicates bit-identical,
  so the merge is deterministic and exact
  (:func:`repro.resilience.store.merge_stores`).
* **Results travel as atomic snapshot files, not queues.**  A worker
  writes one CRC-enveloped snapshot per finished shard into a scratch
  directory (:func:`repro.resilience.snapshot.save_snapshot` is atomic);
  the parent reads them back after ``join``.  Pipes and queues corrupt or
  deadlock when a worker dies mid-write — a missing-or-complete file
  cannot.  A worker that exits nonzero (or dies on a signal) surfaces as
  :class:`ShardWorkerError` naming the shards it left unfinished.
* **Per-shard checkpoints.**  Each shard checkpoints its own campaign
  under ``<checkpoint_dir>/shard-NNN`` — keyed by shard index, not worker
  index, so a resumed run may use a different worker count and still find
  every shard's snapshot.  A dead worker's shards resume from their last
  round boundary; finished shards' final-round snapshots make their resume
  a no-op with identical results.
* **Per-worker tracing.**  Spawned children would inherit ``REPRO_TRACE``
  and clobber the parent's ``.partial`` sink, so the parent strips that
  variable around ``Process.start()`` and workers trace only when the
  executor hands them an explicit per-worker sink (``trace_dir``), merged
  later by ``python -m repro.obs report``.

Counter attribution (the documented parity rule): **per-seed counters are
exact** — each shard is its own single-seed campaign, so its trajectory,
cache accounting and best-vector bytes equal the sequential oracle's bit
for bit, at any worker count.  **Campaign-wide counters are sums over
shards**, which matches ``--execution sequential`` exactly; they differ
from ``--execution campaign``, whose seeds share one in-process cache.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import signal
import sys
import tempfile
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.circuits.pvt import PVTCondition
from repro.obs import event, profiled, tracing
from repro.resilience.faults import FaultPlan, InjectedFault, inject
from repro.resilience.snapshot import load_snapshot, save_snapshot
from repro.resilience.store import merge_stores
from repro.search.progressive import ProgressiveConfig, ProgressiveResult
from repro.search.spec import Spec


class ShardWorkerError(RuntimeError):
    """A worker process died or failed before finishing its shards.

    Attributes
    ----------
    worker:
        Index of the failed worker.
    exitcode:
        The process exit code (negative: killed by that signal number;
        ``None``: the worker exited zero but left results missing).
    shards:
        ``(shard_index, label, seed)`` identities of the shards the worker
        left unfinished — exactly what a resumed run will pick back up.
    """

    def __init__(
        self,
        worker: int,
        exitcode: Optional[int],
        shards: Sequence[Tuple[int, str, int]],
        detail: Optional[str] = None,
    ) -> None:
        self.worker = worker
        self.exitcode = exitcode
        self.shards = list(shards)
        self.detail = detail
        if exitcode is not None and exitcode < 0:
            died = f"died on signal {-exitcode}"
        elif exitcode:
            died = f"exited with code {exitcode}"
        else:
            died = "exited without writing all shard results"
        unfinished = ", ".join(
            f"shard {index} ({label}, seed {seed})" for index, label, seed in shards
        )
        message = f"worker {worker} {died}; unfinished: {unfinished or 'none'}"
        if detail:
            message += f"\n{detail}"
        super().__init__(message)


@dataclass(frozen=True)
class ShardSpec:
    """One (workload, seed) shard, declaratively — picklable across spawn.

    Carries registry names and a **fully resolved**
    :class:`~repro.search.progressive.ProgressiveConfig` (seed, backend,
    corner engine, optimizer, refit mode all baked in), so a spawned
    worker rebuilds exactly the campaign the parent described without
    pickling any live evaluator state.  Built from a bench case with
    :meth:`repro.bench.registry.BenchCase.shard_specs`.
    """

    topology: str
    seed: int
    config: ProgressiveConfig
    tier: str = "nominal"
    technology: str = "bsim45"
    load_cap: float = 2e-12
    corners: Tuple[PVTCondition, ...] = ()
    specs: Optional[Tuple[Spec, ...]] = None
    #: Display/grouping label (the bench case name, usually).
    label: str = ""

    def build(
        self,
        cache_path: Optional[str] = None,
        cache_preload: Sequence[str] = (),
    ):
        """The shard's single-seed Campaign (see ``sizing.build_campaign``)."""
        from repro.search.sizing import build_campaign

        return build_campaign(
            self.topology,
            technology=self.technology,
            load_cap=self.load_cap,
            specs=list(self.specs) if self.specs is not None else None,
            tier=self.tier,
            corners=list(self.corners) if self.corners else None,
            config=self.config,
            seeds=[self.seed],
            cache_path=cache_path,
            cache_preload=cache_preload,
        )


@dataclass(frozen=True)
class ShardResult:
    """One finished shard, as merged back into the parent."""

    index: int
    seed: int
    label: str
    worker: int
    result: ProgressiveResult
    rounds: int
    engine_calls: int
    eval_seconds: float
    cache_hits: int
    cache_misses: int
    refit_rounds: int
    batched_kernel_calls: int
    resumed_from_round: Optional[int]
    cache_digest: str
    #: Shard wall time inside the worker (build + run + persist).
    wall_seconds: float
    #: Per-shard persistence accounting (preloaded/warm/cold/repaired).
    cache_counters: Dict[str, Any] = field(default_factory=dict)
    #: Full cache content (``EvaluationCache.state_dict()["content"]``)
    #: when the executor collects it for union-digest parity checks.
    cache_content: Optional[List[Any]] = None


@dataclass
class ShardRunOutcome:
    """A sharded run, merged: per-shard results plus summed accounting.

    Field names deliberately mirror
    :class:`~repro.search.campaign.CampaignResult` so
    :func:`repro.analysis.determinism.fingerprint_outcome` applies to both
    — the campaign-wide counters here are **sums over shards** (the
    sequential oracle's attribution rule; see the module docstring).
    """

    results: List[ProgressiveResult]
    seeds: List[int]
    shards: List[ShardResult]
    workers: int
    shard_map: Dict[int, int]
    #: ``{"worker", "shards", "wall_seconds", "eval_seconds"}`` per worker.
    per_worker: List[Dict[str, Any]]
    rounds: int
    engine_calls: int
    eval_seconds: float
    cache_hits: int
    cache_misses: int
    refit_rounds: int
    batched_kernel_calls: int
    refit_mode: str
    #: Union digest over all shards' cache content (bit-equal to a
    #: sequential run's ``EvaluationCache.state_digest()``); ``None``
    #: unless the executor collected cache content.
    cache_digest: Optional[str] = None


def _shard_store_path(master: str, index: int) -> str:
    return f"{master}.shard-{index:03d}"


def _shard_checkpoint_dir(checkpoint_dir: str, index: int) -> str:
    return os.path.join(checkpoint_dir, f"shard-{index:03d}")


def _result_path(scratch: str, index: int) -> str:
    return os.path.join(scratch, f"result-{index:05d}.snapshot")


def _error_path(scratch: str, worker_index: int) -> str:
    return os.path.join(scratch, f"error-worker-{worker_index}.snapshot")


def _run_shard(index: int, spec: ShardSpec, options: Dict[str, Any]) -> Dict[str, Any]:
    """Run one shard's single-seed campaign; returns its result payload."""
    master = options.get("cache_path")
    cache_path = _shard_store_path(master, index) if master else None
    preload = (master,) if master and os.path.exists(master) else ()
    checkpoint_root = options.get("checkpoint_dir")
    checkpoint_dir = (
        _shard_checkpoint_dir(checkpoint_root, index) if checkpoint_root else None
    )
    resume_from = checkpoint_dir if options.get("resume") and checkpoint_dir else None
    campaign = spec.build(cache_path=cache_path, cache_preload=preload)
    kill_occurrence = (options.get("kill_plans") or {}).get(index)
    try:
        if kill_occurrence is not None and options.get("spawned"):
            # Drill/test hook: die like a SIGKILLed worker would, with the
            # fault-plan counter picking *which* checkpoint never lands
            # (fault_point fires before the snapshot is written).
            plan = FaultPlan("snapshot.write", occurrence=kill_occurrence)
            try:
                with inject(plan):
                    outcome = campaign.run(
                        checkpoint_dir=checkpoint_dir,
                        resume_from=resume_from,
                        checkpoint_every=options.get("checkpoint_every", 1),
                    )
            except InjectedFault:
                campaign.close()
                os.kill(os.getpid(), signal.SIGKILL)
                raise  # pragma: no cover - unreachable past SIGKILL
        else:
            outcome = campaign.run(
                checkpoint_dir=checkpoint_dir,
                resume_from=resume_from,
                checkpoint_every=options.get("checkpoint_every", 1),
            )
        cache = campaign.cache
        payload: Dict[str, Any] = {
            "index": index,
            "seed": spec.seed,
            "label": spec.label,
            "result": outcome.results[0],
            "rounds": outcome.rounds,
            "engine_calls": outcome.engine_calls,
            "eval_seconds": outcome.eval_seconds,
            "cache_hits": outcome.cache_hits,
            "cache_misses": outcome.cache_misses,
            "refit_rounds": outcome.refit_rounds,
            "batched_kernel_calls": outcome.batched_kernel_calls,
            "refit_mode": outcome.refit_mode,
            "resumed_from_round": outcome.resumed_from_round,
            "cache_digest": cache.state_digest(),
            "cache_counters": {
                "preloaded_pairs": cache.preloaded_pairs,
                "warm_hits": cache.warm_hits,
                "cold_hits": cache.cold_hits,
                "repaired_bytes": cache.repaired_bytes,
            },
            "store_shape": (
                campaign.handle.design_space.dimension,
                len(campaign.handle.metric_names),
            ),
            "cache_content": (
                cache.state_dict()["content"]
                if options.get("collect_cache_content")
                else None
            ),
        }
    finally:
        campaign.close()
    return payload


def _worker_main(
    worker_index: int,
    shard_indices: Sequence[int],
    specs: Sequence[ShardSpec],
    options: Dict[str, Any],
) -> int:
    """Worker body: run assigned shards in index order, one result file each.

    Used both as the spawned process target (via :func:`_worker_entry`)
    and directly by the parent for the ``workers == 1`` in-process fast
    path — the same code path is what makes the fast path bit-for-bit
    equal to spawned execution.
    """
    scratch = options["scratch_dir"]
    trace_dir = options.get("trace_dir")
    sink = (
        os.path.join(trace_dir, f"worker-{worker_index}.jsonl") if trace_dir else None
    )
    trace_context = tracing(sink=sink) if sink else nullcontext()
    with trace_context:
        for index in shard_indices:
            spec = specs[index]
            try:
                with profiled(
                    "shard.run",
                    shard=index,
                    seed=spec.seed,
                    worker=worker_index,
                ) as timer:
                    payload = _run_shard(index, spec, options)
                payload["wall_seconds"] = timer.seconds
                payload["worker"] = worker_index
                save_snapshot(_result_path(scratch, index), payload)
            except Exception as error:
                import traceback

                save_snapshot(
                    _error_path(scratch, worker_index),
                    {
                        "index": index,
                        "seed": spec.seed,
                        "label": spec.label,
                        "error": repr(error),
                        "traceback": traceback.format_exc(),
                    },
                )
                return 1
            event(
                "shard.done", shard=index, seed=spec.seed, worker=worker_index
            )
    return 0


def _worker_entry(
    worker_index: int,
    shard_indices: Sequence[int],
    specs: Sequence[ShardSpec],
    options: Dict[str, Any],
) -> None:
    """Spawned-process entry point: exit code = :func:`_worker_main` status."""
    sys.exit(_worker_main(worker_index, shard_indices, specs, options))


class ShardedExecutor:
    """Run (workload, seed) shards across spawned worker processes.

    Parameters
    ----------
    specs:
        The shards, one :class:`ShardSpec` each; results come back in this
        order.
    workers:
        Worker process count (default: ``os.cpu_count()``).  More workers
        than shards spawn nothing extra; ``workers=1`` runs every shard
        in-process (no spawn), bit-for-bit equal to spawned execution.
    cache_path:
        Master evaluation-cache store.  Workers warm-load it read-only,
        append fresh pairs to private per-shard files, and the parent
        merges those into the master after the run (see the module
        docstring for why shard-per-worker files beat an advisory lock).
    checkpoint_dir:
        Per-shard checkpoint root (``<dir>/shard-NNN``); with
        ``resume=True`` every shard resumes from its own latest snapshot,
        so a dead worker's shards continue from their last round boundary
        while finished shards replay as no-ops.
    checkpoint_every:
        Snapshot cadence in rounds, forwarded to every shard's campaign.
    trace_dir:
        When given, each worker traces to ``<dir>/worker-K.jsonl``
        (merged by ``python -m repro.obs report <dir>``).
    collect_cache_content:
        Ship every shard's full cache content back to the parent and
        compute the union :attr:`ShardRunOutcome.cache_digest` — the
        cross-process analogue of ``EvaluationCache.state_digest()``,
        used by the determinism auditor's sharded mode.
    kill_plans:
        Drill/test hook: ``{shard_index: occurrence}`` SIGKILLs the worker
        running that shard right before its N-th checkpoint write.  Only
        honoured in spawned workers, so it needs ``workers >= 2``.
    scratch_dir:
        Result-file staging directory (default: a private temp directory,
        removed afterwards).
    """

    def __init__(
        self,
        specs: Sequence[ShardSpec],
        workers: Optional[int] = None,
        cache_path: Optional[str] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        checkpoint_every: int = 1,
        trace_dir: Optional[str] = None,
        collect_cache_content: bool = False,
        kill_plans: Optional[Dict[int, int]] = None,
        scratch_dir: Optional[str] = None,
    ) -> None:
        self.specs = list(specs)
        if not self.specs:
            raise ValueError("a sharded run needs at least one shard spec")
        self.workers = int(workers) if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        self.cache_path = cache_path
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.checkpoint_every = int(checkpoint_every)
        self.trace_dir = trace_dir
        self.collect_cache_content = collect_cache_content
        self.kill_plans = dict(kill_plans) if kill_plans else {}
        self.scratch_dir = scratch_dir
        if resume and not checkpoint_dir:
            raise ValueError("resume=True needs checkpoint_dir")
        if self.kill_plans and min(self.effective_workers, 2) < 2:
            raise ValueError(
                "kill plans SIGKILL the worker process, so they need "
                "spawned execution (workers >= 2 and >= 2 shards)"
            )

    @property
    def effective_workers(self) -> int:
        """Workers that actually get shards (never more than shards)."""
        return min(self.workers, len(self.specs))

    def shard_map(self) -> Dict[int, int]:
        """Deterministic static partition: shard ``i`` -> worker ``i % W``.

        A static map (rather than work stealing) is what keeps the
        partition — and with it every per-worker trace, store file and
        failure report — a pure function of ``(len(specs), workers)``.
        Per-shard results are bit-exact regardless of placement, so the
        map affects wall time only.
        """
        workers = self.effective_workers
        return {index: index % workers for index in range(len(self.specs))}

    def _options(self, scratch: str, spawned: bool) -> Dict[str, Any]:
        return {
            "scratch_dir": scratch,
            "cache_path": self.cache_path,
            "checkpoint_dir": self.checkpoint_dir,
            "resume": self.resume,
            "checkpoint_every": self.checkpoint_every,
            "trace_dir": self.trace_dir,
            "collect_cache_content": self.collect_cache_content,
            "kill_plans": self.kill_plans,
            "spawned": spawned,
        }

    def _raise_worker_failure(
        self,
        scratch: str,
        worker_index: int,
        exitcode: Optional[int],
        assigned: Sequence[int],
    ) -> None:
        unfinished = [
            (index, self.specs[index].label, self.specs[index].seed)
            for index in assigned
            if not os.path.exists(_result_path(scratch, index))
        ]
        detail = None
        error_file = _error_path(scratch, worker_index)
        if os.path.exists(error_file):
            error = load_snapshot(error_file)
            detail = (
                f"shard {error['index']} (seed {error['seed']}) raised "
                f"{error['error']}\n{error['traceback']}"
            )
        raise ShardWorkerError(worker_index, exitcode, unfinished, detail)

    def _spawn(self, scratch: str, by_worker: Dict[int, List[int]]) -> None:
        """Start, join and error-check one spawned process per worker."""
        context = multiprocessing.get_context("spawn")
        options = self._options(scratch, spawned=True)
        processes = {}
        # Spawned children import repro afresh; REPRO_TRACE would point
        # their module-level tracer at the parent's sink and clobber its
        # .partial sidecar, so the variable is stripped around start().
        saved_trace = os.environ.pop("REPRO_TRACE", None)
        try:
            for worker_index, assigned in by_worker.items():
                process = context.Process(
                    target=_worker_entry,
                    args=(worker_index, assigned, self.specs, options),
                    name=f"repro-shard-worker-{worker_index}",
                )
                process.start()
                processes[worker_index] = process
        finally:
            if saved_trace is not None:
                os.environ["REPRO_TRACE"] = saved_trace
        for process in processes.values():
            process.join()
        for worker_index, process in processes.items():
            assigned = by_worker[worker_index]
            missing = [
                index
                for index in assigned
                if not os.path.exists(_result_path(scratch, index))
            ]
            if process.exitcode != 0 or missing:
                exitcode = process.exitcode if process.exitcode != 0 else None
                self._raise_worker_failure(scratch, worker_index, exitcode, assigned)

    def _merge_stores(self, payloads: Sequence[Dict[str, Any]]) -> None:
        """Fold every shard's private store into the master, then drop them."""
        dimension, n_metrics = payloads[0]["store_shape"]
        shard_paths = [
            path
            for path in (
                _shard_store_path(self.cache_path, index)
                for index in range(len(self.specs))
            )
            if os.path.exists(path)
        ]
        appended = merge_stores(self.cache_path, shard_paths, dimension, n_metrics)
        for path in shard_paths:
            os.remove(path)
        event(
            "shard.merge_stores",
            master=self.cache_path,
            shards=len(shard_paths),
            appended=appended,
        )

    def run(self) -> ShardRunOutcome:
        """Run all shards to completion and merge; see the module docstring.

        Raises :class:`ShardWorkerError` when a worker dies — already-
        finished shards keep their checkpoints and store files, so
        rebuilding the executor with ``resume=True`` continues from every
        shard's last round boundary.
        """
        shard_map = self.shard_map()
        by_worker: Dict[int, List[int]] = {}
        for index in range(len(self.specs)):
            by_worker.setdefault(shard_map[index], []).append(index)
        scratch = self.scratch_dir or tempfile.mkdtemp(prefix="repro-shard-")
        created_scratch = self.scratch_dir is None
        if self.scratch_dir:
            os.makedirs(scratch, exist_ok=True)
        if self.trace_dir:
            os.makedirs(self.trace_dir, exist_ok=True)
        event(
            "shard.start",
            shards=len(self.specs),
            workers=self.effective_workers,
            requested_workers=self.workers,
        )
        try:
            if self.effective_workers == 1:
                # In-process fast path: same worker body, no spawn.  Kill
                # plans are rejected in __init__, so nothing here can
                # SIGKILL the parent.
                status = _worker_main(
                    0, by_worker[0], self.specs, self._options(scratch, spawned=False)
                )
                if status != 0:
                    self._raise_worker_failure(scratch, 0, None, by_worker[0])
            else:
                self._spawn(scratch, by_worker)
            payloads = [
                load_snapshot(_result_path(scratch, index))
                for index in range(len(self.specs))
            ]
        finally:
            if created_scratch:
                shutil.rmtree(scratch, ignore_errors=True)
        if self.cache_path:
            self._merge_stores(payloads)
        return self._build_outcome(payloads, shard_map)

    def _build_outcome(
        self, payloads: Sequence[Dict[str, Any]], shard_map: Dict[int, int]
    ) -> ShardRunOutcome:
        shards = [
            ShardResult(
                index=payload["index"],
                seed=payload["seed"],
                label=payload["label"],
                worker=payload["worker"],
                result=payload["result"],
                rounds=payload["rounds"],
                engine_calls=payload["engine_calls"],
                eval_seconds=payload["eval_seconds"],
                cache_hits=payload["cache_hits"],
                cache_misses=payload["cache_misses"],
                refit_rounds=payload["refit_rounds"],
                batched_kernel_calls=payload["batched_kernel_calls"],
                resumed_from_round=payload["resumed_from_round"],
                cache_digest=payload["cache_digest"],
                wall_seconds=payload["wall_seconds"],
                cache_counters=payload["cache_counters"],
                cache_content=payload["cache_content"],
            )
            for payload in payloads
        ]
        per_worker = []
        for worker_index in sorted(set(shard_map.values())):
            owned = [shard for shard in shards if shard.worker == worker_index]
            per_worker.append(
                {
                    "worker": worker_index,
                    "shards": len(owned),
                    "wall_seconds": sum(shard.wall_seconds for shard in owned),
                    "eval_seconds": sum(shard.eval_seconds for shard in owned),
                }
            )
        digest = None
        if self.collect_cache_content:
            from repro.shard.parity import union_state_digest

            digest = union_state_digest(
                shard.cache_content for shard in shards if shard.cache_content
            )
        return ShardRunOutcome(
            results=[shard.result for shard in shards],
            seeds=[shard.seed for shard in shards],
            shards=shards,
            workers=self.effective_workers,
            shard_map=shard_map,
            per_worker=per_worker,
            rounds=sum(shard.rounds for shard in shards),
            engine_calls=sum(shard.engine_calls for shard in shards),
            eval_seconds=sum(shard.eval_seconds for shard in shards),
            cache_hits=sum(shard.cache_hits for shard in shards),
            cache_misses=sum(shard.cache_misses for shard in shards),
            refit_rounds=sum(shard.refit_rounds for shard in shards),
            batched_kernel_calls=sum(shard.batched_kernel_calls for shard in shards),
            refit_mode=payloads[0]["refit_mode"] if payloads else "batched",
            cache_digest=digest,
        )
