"""Parity oracles for sharded execution.

Two tools that turn "sharded runs are byte-identical to sequential ones"
from a slogan into a checkable lock:

* :func:`run_sequential` — the in-process oracle: every shard's campaign,
  run one after another in the parent, merged under the same attribution
  rules as :meth:`~repro.shard.executor.ShardedExecutor.run`.  Feeding
  both outcomes through
  :func:`repro.analysis.determinism.fingerprint_outcome` byte-diffs the
  trajectories, counters and cache digests.
* :func:`union_state_digest` — the cross-process analogue of
  :meth:`~repro.search.eval_cache.EvaluationCache.state_digest`: it merges
  every shard's cache content and hashes it in the digest's canonical
  order, so a sharded run's combined cache can be compared bit-for-bit
  against one sequential cache's digest — without ever materialising a
  merged in-memory cache.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.shard.executor import ShardResult, ShardRunOutcome, ShardSpec


def union_state_digest(contents: Iterable[Sequence[Any]]) -> Optional[str]:
    """SHA-256 over the union of per-shard cache contents, bit for bit.

    ``contents`` holds each shard's ``EvaluationCache.state_dict()["content"]``
    — ``(corner fields, keys, metric matrix)`` triples.  The union is
    hashed in exactly the canonical order
    :meth:`~repro.search.eval_cache.EvaluationCache.state_digest` uses
    (corners by exact field encoding, rows by key bytes), so the result
    equals the digest one cache holding all pairs would report.  Shards
    may overlap (warm starts replay the master store); a ``(corner, key)``
    pair appearing twice with different row bytes is a parity violation
    and raises :class:`ValueError`.  Returns ``None`` for no content.
    """
    merged: dict = {}
    saw_content = False
    for content in contents:
        saw_content = True
        for fields, keys, matrix in content:
            process, voltage_factor, temperature_c = fields
            corner_key = (
                str(process),
                float(voltage_factor).hex(),
                float(temperature_c).hex(),
            )
            rows = merged.setdefault(corner_key, {})
            matrix = np.asarray(matrix)
            for position, key in enumerate(keys):
                row_bytes = matrix[position].tobytes()
                existing = rows.get(key)
                if existing is None:
                    rows[key] = row_bytes
                elif existing != row_bytes:
                    raise ValueError(
                        f"shard cache parity violation: corner {corner_key} "
                        f"holds two different metric rows for one sizing key"
                    )
    if not saw_content:
        return None
    digest = hashlib.sha256()
    for process, voltage_hex, temperature_hex in sorted(merged):
        digest.update(f"{process}|{voltage_hex}|{temperature_hex}".encode("ascii"))
        rows = merged[(process, voltage_hex, temperature_hex)]
        for key in sorted(rows):
            digest.update(key)
            digest.update(rows[key])
    return digest.hexdigest()


def run_sequential(specs: Sequence[ShardSpec]) -> ShardRunOutcome:
    """Run every shard in-process, one after another: the parity oracle.

    No spawn, no stores, no checkpoints — just each shard's single-seed
    campaign in spec order, merged with the same sums-over-shards
    attribution the executor documents.  The outcome's ``cache_digest``
    is the union digest over all shards, directly comparable to a sharded
    run with ``collect_cache_content=True``.
    """
    shards: List[ShardResult] = []
    contents: List[Any] = []
    for index, spec in enumerate(specs):
        campaign = spec.build()
        try:
            outcome = campaign.run()
            cache = campaign.cache
            content = cache.state_dict()["content"]
            shards.append(
                ShardResult(
                    index=index,
                    seed=spec.seed,
                    label=spec.label,
                    worker=0,
                    result=outcome.results[0],
                    rounds=outcome.rounds,
                    engine_calls=outcome.engine_calls,
                    eval_seconds=outcome.eval_seconds,
                    cache_hits=outcome.cache_hits,
                    cache_misses=outcome.cache_misses,
                    refit_rounds=outcome.refit_rounds,
                    batched_kernel_calls=outcome.batched_kernel_calls,
                    resumed_from_round=outcome.resumed_from_round,
                    cache_digest=cache.state_digest(),
                    wall_seconds=0.0,
                    cache_counters={
                        "preloaded_pairs": cache.preloaded_pairs,
                        "warm_hits": cache.warm_hits,
                        "cold_hits": cache.cold_hits,
                        "repaired_bytes": cache.repaired_bytes,
                    },
                    cache_content=content,
                )
            )
            contents.append(content)
            refit_mode = outcome.refit_mode
        finally:
            campaign.close()
    return ShardRunOutcome(
        results=[shard.result for shard in shards],
        seeds=[shard.seed for shard in shards],
        shards=shards,
        workers=1,
        shard_map={index: 0 for index in range(len(shards))},
        per_worker=[
            {
                "worker": 0,
                "shards": len(shards),
                "wall_seconds": sum(shard.wall_seconds for shard in shards),
                "eval_seconds": sum(shard.eval_seconds for shard in shards),
            }
        ],
        rounds=sum(shard.rounds for shard in shards),
        engine_calls=sum(shard.engine_calls for shard in shards),
        eval_seconds=sum(shard.eval_seconds for shard in shards),
        cache_hits=sum(shard.cache_hits for shard in shards),
        cache_misses=sum(shard.cache_misses for shard in shards),
        refit_rounds=sum(shard.refit_rounds for shard in shards),
        batched_kernel_calls=sum(shard.batched_kernel_calls for shard in shards),
        refit_mode=refit_mode if shards else "batched",
        cache_digest=union_state_digest(contents),
    )
