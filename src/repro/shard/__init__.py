"""Sharded multi-process campaign execution with bit-identical parity.

Partition a multi-seed run into (workload, seed) shards, run each shard
as its own single-seed campaign in a spawned worker process, and merge
results, metrics and cache state back in the parent — with hard parity
locks making the sharded run byte-identical per seed to a sequential one.
See :mod:`repro.shard.executor` for the design rationale and
:mod:`repro.shard.parity` for the oracles that verify it.
"""

from repro.shard.executor import (
    ShardedExecutor,
    ShardResult,
    ShardRunOutcome,
    ShardSpec,
    ShardWorkerError,
)
from repro.shard.parity import run_sequential, union_state_digest

__all__ = [
    "ShardResult",
    "ShardRunOutcome",
    "ShardSpec",
    "ShardWorkerError",
    "ShardedExecutor",
    "run_sequential",
    "union_state_digest",
]
