"""Observability: structured tracing, metrics, profiling hooks, reports.

Three instrumentation primitives (see :mod:`repro.obs.tracer`):

* ``@span("name", self_tags={...})`` — decorator, one flag test when off;
* ``profiled("name", **tags)`` — context manager that always measures wall
  time (``.seconds``) and records a span when tracing is on — the home for
  the engine's unconditional accounting;
* ``event("name", **tags)`` — zero-duration record, one flag test when off.

Tracing is off by default and trajectory-neutral; enable with
``REPRO_TRACE=1`` (ring only), ``REPRO_TRACE=trace.jsonl`` (JSONL sink), or
the :func:`tracing` context manager.  Render traces with
``python -m repro.obs report trace.jsonl``.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
)
from repro.obs.report import TraceRollup, format_report, load_trace, load_traces
from repro.obs.tracer import (
    DEFAULT_RING_SIZE,
    Tracer,
    event,
    get_tracer,
    profiled,
    set_tracing,
    span,
    tracing,
    tracing_enabled,
)


def get_metrics() -> MetricsRegistry:
    """The active tracer's metrics registry."""
    return get_tracer().metrics


__all__ = [
    "Counter",
    "DEFAULT_RING_SIZE",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceRollup",
    "Tracer",
    "diff_snapshots",
    "event",
    "format_report",
    "get_metrics",
    "get_tracer",
    "load_trace",
    "load_traces",
    "profiled",
    "set_tracing",
    "span",
    "tracing",
    "tracing_enabled",
]
