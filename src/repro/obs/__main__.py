"""CLI for the observability subsystem.

Subcommands::

    python -m repro.obs report TRACE.jsonl [TRACE2.jsonl ...] [--top N]
    python -m repro.obs report TRACE_DIR [--top N]

``report`` renders one or more JSONL traces (produced with ``repro.bench
--trace PATH``, ``REPRO_TRACE=trace.jsonl``, or a sharded run's
``<trace>.workers/<case>/worker-K.jsonl`` sinks — pass the directory) into
per-subsystem / per-seed / per-phase wall-time breakdowns, a cache
hit-rate table and a top-spans view.  Multiple files merge into one call
tree with a ``worker`` tag per file, adding a per-worker table.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.obs.report import format_report, load_traces


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect structured traces emitted by repro.obs.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    report = subparsers.add_parser(
        "report", help="render a JSONL trace into wall-time breakdown tables"
    )
    report.add_argument(
        "trace",
        nargs="+",
        metavar="TRACE",
        help="JSONL trace file(s), or a directory of per-worker sinks",
    )
    report.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="rows in the top-spans view (default: 10)",
    )
    args = parser.parse_args(argv)

    for path in args.trace:
        if not os.path.exists(path):
            print(f"no such trace file: {path}", file=sys.stderr)
            return 2
    records = load_traces(args.trace)
    if not records:
        print(f"no .jsonl trace files under: {', '.join(args.trace)}", file=sys.stderr)
        return 2
    print(format_report(records, top=args.top))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
