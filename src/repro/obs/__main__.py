"""CLI for the observability subsystem.

Subcommands::

    python -m repro.obs report TRACE.jsonl [--top N]

``report`` renders a JSONL trace (produced with ``repro.bench --trace
PATH`` or ``REPRO_TRACE=trace.jsonl``) into per-subsystem / per-seed /
per-phase wall-time breakdowns, a cache hit-rate table and a top-spans
view.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.obs.report import format_report, load_trace


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect structured traces emitted by repro.obs.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    report = subparsers.add_parser(
        "report", help="render a JSONL trace into wall-time breakdown tables"
    )
    report.add_argument("trace", metavar="TRACE.jsonl", help="JSONL trace file")
    report.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="rows in the top-spans view (default: 10)",
    )
    args = parser.parse_args(argv)

    if not os.path.exists(args.trace):
        print(f"no such trace file: {args.trace}", file=sys.stderr)
        return 2
    print(format_report(load_trace(args.trace), top=args.top))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
