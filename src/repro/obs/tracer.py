"""Structured tracing: spans, events, ring buffer, optional JSONL sink.

The :class:`Tracer` emits flat record dicts — ``{"type", "id", "parent",
"name", "start", "dur", "tags"}`` — where ``start`` is seconds on the
monotonic clock relative to the tracer's epoch, ``dur`` the span duration
(0 for events), and ``parent`` the id of the span that was open when this
record began, so a trace reconstructs the call tree (``Campaign.run`` >
round > stacked pass > ``evaluate_corners`` > ``FusedMLP.fit``).  Records
land in a bounded in-memory ring (oldest dropped first, drops counted) and,
when a sink path is given, are appended to a JSONL file that
``python -m repro.obs report`` renders.

Like the contracts layer (:mod:`repro.analysis.contracts`) tracing is **off
by default and near-free when off**: the :func:`span` decorator's disabled
path is one flag test before delegating, and :func:`event` is one flag
test.  Enable with the ``REPRO_TRACE`` environment variable (``1`` for the
ring only, any other value is taken as a JSONL sink path) or in-process
with :func:`set_tracing` / the :func:`tracing` context manager.  Tracing
never touches RNG state or numerics, so trajectories are bit-identical on
or off (locked by tests and the determinism auditor).

:class:`profiled` is the third primitive: a context manager that *always*
measures wall time (exposing ``.seconds``) and additionally records a span
when tracing is on — the home for the accounting the engine must keep even
untraced (``eval_seconds``, ``refit_seconds``, bench wall clocks).  All
direct ``time.perf_counter()`` use outside this module is flagged by the
``ad-hoc-timing`` lint rule.
"""

from __future__ import annotations

import atexit
import functools
import itertools
import json
import os
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

#: Ring capacity in records; a smoke-suite case emits a few thousand.
DEFAULT_RING_SIZE = 1 << 16


def _json_default(value: Any) -> Any:
    """Serialize tag values the engine uses (numpy scalars, corners)."""
    for caster in (int, float):
        try:
            return caster(value)
        except (TypeError, ValueError):
            continue
    return str(value)


class _SpanHandle:
    """Open-span bookkeeping passed between ``start`` and ``finish``."""

    __slots__ = ("id", "parent", "name", "tags", "t0")

    def __init__(
        self,
        span_id: int,
        parent: Optional[int],
        name: str,
        tags: Optional[Dict[str, Any]],
    ) -> None:
        self.id = span_id
        self.parent = parent
        self.name = name
        self.tags = tags
        self.t0 = time.perf_counter()


class Tracer:
    """Collect span/event records into a ring buffer and optional JSONL sink.

    Parameters
    ----------
    sink:
        Path of a JSONL file to append every record to (opened fresh), or
        ``None`` for the in-memory ring only.
    ring_size:
        Ring capacity; once full the oldest records are dropped (counted in
        :attr:`dropped`).  The owned :attr:`metrics` registry keeps exact
        per-name rollups regardless of ring wrap.
    """

    def __init__(
        self, sink: Optional[str] = None, ring_size: int = DEFAULT_RING_SIZE
    ) -> None:
        self.epoch = time.perf_counter()
        self.records: "deque[Dict[str, Any]]" = deque(maxlen=int(ring_size))
        self.dropped = 0
        self.emitted = 0
        self.metrics = MetricsRegistry()
        self.sink_path = sink
        self._partial_path = sink + ".partial" if sink else None
        # The sink streams line-buffered into a ``.partial`` sidecar, so a
        # killed process leaves every completed record on disk (at worst one
        # torn final line, which the loader tolerates); close() fsyncs and
        # promotes it to the real path — readers of ``sink`` only ever see a
        # finalized trace.
        self._sink = (
            # analysis: allow(non-atomic-artifact-write) streaming sink, finalized by close()
            open(self._partial_path, "w", encoding="utf-8", buffering=1)
            if sink
            else None
        )
        if self._sink is not None:
            # Belt and braces for sinks that outlive their scope (the
            # REPRO_TRACE process tracer): finalize at interpreter exit.
            atexit.register(self.close)
        self._ids = itertools.count(1)
        self._stack: List[int] = []

    # -- record plumbing -------------------------------------------------
    def _emit(self, record: Dict[str, Any]) -> None:
        if len(self.records) == self.records.maxlen:
            self.dropped += 1
        self.records.append(record)
        self.emitted += 1
        if self._sink is not None:
            self._sink.write(
                json.dumps(record, sort_keys=True, default=_json_default) + "\n"
            )

    def close(self) -> None:
        """Finalize the JSONL sink (the ring stays readable); idempotent.

        Flushes and fsyncs the ``.partial`` sidecar, then atomically
        promotes it to :attr:`sink_path`.
        """
        if self._sink is None:
            return
        # Imported here, not at module level: repro.resilience's fault
        # registry emits repro.obs events, so the package-level import
        # would be circular.  close() is cold.
        from repro.resilience.atomic import fsync_replace

        sink = self._sink
        self._sink = None
        sink.flush()
        try:
            os.fsync(sink.fileno())
        except OSError:  # pragma: no cover - exotic filesystems
            pass
        sink.close()
        fsync_replace(self._partial_path, self.sink_path)
        atexit.unregister(self.close)

    # -- spans and events --------------------------------------------------
    def start(self, name: str, tags: Optional[Dict[str, Any]] = None) -> _SpanHandle:
        """Open a span; the current innermost open span becomes its parent."""
        handle = _SpanHandle(
            next(self._ids), self._stack[-1] if self._stack else None, name, tags
        )
        self._stack.append(handle.id)
        return handle

    def finish(self, handle: _SpanHandle) -> float:
        """Close a span, emit its record, and return its duration."""
        duration = time.perf_counter() - handle.t0
        # Well-nested code pops its own id; unwinding through an exception
        # can leave descendants on the stack, so clear down to the handle.
        while self._stack and self._stack[-1] != handle.id:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        self._emit(
            {
                "type": "span",
                "id": handle.id,
                "parent": handle.parent,
                "name": handle.name,
                "start": handle.t0 - self.epoch,
                "dur": duration,
                "tags": dict(handle.tags) if handle.tags else {},
            }
        )
        self.metrics.histogram("span." + handle.name).observe(duration)
        return duration

    def event(self, name: str, tags: Optional[Dict[str, Any]] = None) -> None:
        """A zero-duration record (phase transitions, cache traffic marks)."""
        self._emit(
            {
                "type": "event",
                "id": next(self._ids),
                "parent": self._stack[-1] if self._stack else None,
                "name": name,
                "start": time.perf_counter() - self.epoch,
                "dur": 0.0,
                "tags": dict(tags) if tags else {},
            }
        )
        self.metrics.counter("event." + name).inc()


# ----------------------------------------------------------------------
# Process-wide enablement (mirrors repro.analysis.contracts).


def _env_sink() -> Tuple[bool, Optional[str]]:
    value = os.environ.get("REPRO_TRACE", "").strip()
    if value.lower() in ("", "0", "false", "no"):
        return False, None
    if value.lower() in ("1", "true", "yes", "on"):
        return True, None
    return True, value  # any other value names a JSONL sink path


_ENABLED, _env_sink_path = _env_sink()
# A sinked Tracer registers its own atexit finalizer, covering the
# REPRO_TRACE process tracer here as well.
_TRACER = Tracer(sink=_env_sink_path)
del _env_sink_path


def tracing_enabled() -> bool:
    """Whether spans/events are currently being recorded."""
    return _ENABLED


def get_tracer() -> Tracer:
    """The active tracer (always exists; it may simply not be fed)."""
    return _TRACER


def set_tracing(
    enabled: bool,
    sink: Optional[str] = None,
    ring_size: int = DEFAULT_RING_SIZE,
) -> Tuple[bool, Tracer]:
    """Flip tracing on/off; returns the previous ``(enabled, tracer)`` pair.

    Enabling installs a **fresh** tracer (new epoch, empty ring, empty
    metrics) so the recorded window has a clean zero; disabling leaves the
    current tracer in place for post-hoc reads.  Prefer the :func:`tracing`
    context manager, which also restores the previous state and closes the
    sink.
    """
    global _ENABLED, _TRACER
    previous = (_ENABLED, _TRACER)
    if enabled:
        _TRACER = Tracer(sink=sink, ring_size=ring_size)
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def tracing(
    sink: Optional[str] = None,
    ring_size: int = DEFAULT_RING_SIZE,
    enabled: bool = True,
) -> Iterator[Tracer]:
    """Scope tracing to a block; yields the (fresh) tracer.

    ``tracing(sink="trace.jsonl")`` records the block to a JSONL file and
    closes it on exit; ``tracing()`` records to the ring only (read
    ``tracer.records`` afterwards — the yielded tracer outlives the block).
    ``enabled=False`` scopes tracing *off* (for overhead comparisons).
    """
    global _ENABLED, _TRACER
    previous_enabled, previous_tracer = set_tracing(
        enabled, sink=sink, ring_size=ring_size
    )
    tracer = _TRACER
    try:
        yield tracer
    finally:
        _ENABLED, _TRACER = previous_enabled, previous_tracer
        if tracer is not previous_tracer:
            tracer.close()


# ----------------------------------------------------------------------
# Instrumentation primitives.


def event(name: str, **tags: Any) -> None:
    """Record a zero-duration event when tracing is on (one flag test off)."""
    if _ENABLED:
        _TRACER.event(name, tags)


def span(
    name: str, self_tags: Optional[Mapping[str, str]] = None
) -> Callable[[Callable], Callable]:
    """Decorator recording each call of ``fn`` as a span.

    ``self_tags`` maps tag keys to attribute names read off the first
    positional argument when tracing is on —
    ``@span("topology.evaluate_corners", self_tags={"topology": "name"})``
    tags every record with the concrete topology.  The disabled path is a
    single flag test before delegating, so decorating a hot entry point
    costs nothing when tracing is off.
    """
    tag_items = tuple(self_tags.items()) if self_tags else ()

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _ENABLED:
                return fn(*args, **kwargs)
            tags = (
                {key: getattr(args[0], attr, None) for key, attr in tag_items}
                if tag_items and args
                else None
            )
            handle = _TRACER.start(name, tags)
            try:
                return fn(*args, **kwargs)
            finally:
                _TRACER.finish(handle)

        wrapper.__traced_span__ = name
        return wrapper

    return decorate


class profiled:
    """Context manager that always times and records a span when tracing.

    The engine's accounting (``eval_seconds``, ``refit_seconds``, bench
    wall clocks) must keep working with tracing off, so ``profiled`` is the
    one primitive that pays a clock read unconditionally; use it at coarse
    points only.  The measured duration is exposed as :attr:`seconds`, and
    :meth:`annotate` adds tags (e.g. hit/miss counts known only after the
    work) that land in the emitted record.
    """

    __slots__ = ("name", "tags", "seconds", "_handle", "_t0")

    def __init__(self, name: str, **tags: Any) -> None:
        self.name = name
        self.tags = tags
        self.seconds = 0.0
        self._handle: Optional[_SpanHandle] = None
        self._t0 = 0.0

    def annotate(self, **tags: Any) -> None:
        """Attach tags; visible in the record if added before the block ends."""
        self.tags.update(tags)

    def __enter__(self) -> "profiled":
        if _ENABLED:
            self._handle = _TRACER.start(self.name, self.tags)
            self._t0 = self._handle.t0
        else:
            self._handle = None
            self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if self._handle is not None:
            self.seconds = _TRACER.finish(self._handle)
            self._handle = None
        else:
            self.seconds = time.perf_counter() - self._t0
