"""Render a trace (JSONL file or in-memory records) into wall-time tables.

The report answers the questions the raw counters cannot: *where* does a
campaign round spend its time (per-subsystem / per-span-name self-time),
how is it split across seeds and progressive phases (tags are inherited
down the span tree, so an ``optimizer.tell`` span's ``FusedMLP.fit`` child
books to the same seed), and what the cache traffic looked like (hit-rate
table from the ``eval_cache.evaluate`` event tags).

Self-time is a span's duration minus its direct children's durations —
summing self-time over any partition of the spans never double-counts, so
the per-subsystem, per-seed and per-phase tables each add up to (at most)
the traced wall clock.
"""

from __future__ import annotations

import json
import os
import re
from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file into record dicts (blank lines skipped).

    A torn **final** line is tolerated and dropped: the tracer's sink is
    line-buffered, so a killed writer leaves at most one partial record at
    the tail (a ``.partial`` sidecar someone inspects after a crash).
    Garbage anywhere else is still an error.
    """
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            records.append(json.loads(stripped))
        except json.JSONDecodeError as error:
            if lineno == len(lines):
                break  # torn tail of a crashed writer
            raise ValueError(
                f"{path}:{lineno}: not a trace record: {error}"
            ) from None
    return records


#: ``worker-<K>.jsonl`` — the sharded executor's per-worker sink naming.
_WORKER_STEM = re.compile(r"worker-(\d+)$")


def load_traces(paths: Sequence[str]) -> List[Dict[str, Any]]:
    """Load and merge one or more trace files into a single record list.

    Each path may be a JSONL file or a directory (recursively expanded to
    its ``*.jsonl`` files, sorted).  A single file loads exactly like
    :func:`load_trace`.  With multiple files — the sharded executor's
    per-worker sinks — every record's ``id``/``parent`` is prefixed with
    its file index, so span identities from different workers can never
    collide in the merged call tree (each worker's tracer numbers records
    from zero), and every record gains a ``worker`` tag: the ``K`` of a
    ``worker-K.jsonl`` stem, else the file stem itself.  Records that
    already carry a ``worker`` tag keep it.
    """
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for directory, _subdirs, names in sorted(os.walk(path)):
                files.extend(
                    os.path.join(directory, name)
                    for name in sorted(names)
                    if name.endswith(".jsonl")
                )
        else:
            files.append(path)
    if not files:
        return []
    if len(files) == 1:
        return load_trace(files[0])
    merged: List[Dict[str, Any]] = []
    for file_index, file_path in enumerate(files):
        stem = os.path.splitext(os.path.basename(file_path))[0]
        match = _WORKER_STEM.search(stem)
        worker = match.group(1) if match else stem
        for record in load_trace(file_path):
            record = dict(record)
            if "id" in record:
                record["id"] = f"{file_index}:{record['id']}"
            if record.get("parent") is not None:
                record["parent"] = f"{file_index}:{record['parent']}"
            tags = dict(record.get("tags") or {})
            tags.setdefault("worker", worker)
            record["tags"] = tags
            merged.append(record)
    return merged


class TraceRollup:
    """Aggregated views over one trace's records."""

    def __init__(self, records: Sequence[Dict[str, Any]]) -> None:
        self.records = list(records)
        self.spans = [r for r in self.records if r.get("type") == "span"]
        self.events = [r for r in self.records if r.get("type") == "event"]
        self._by_id = {r["id"]: r for r in self.records if "id" in r}
        children_dur: Dict[Any, float] = defaultdict(float)
        for record in self.spans:
            if record.get("parent") is not None:
                children_dur[record["parent"]] += record.get("dur", 0.0)
        #: id -> duration minus direct children (clamped: a dropped parent
        #: can make the naive difference negative).
        self.self_seconds = {
            r["id"]: max(r.get("dur", 0.0) - children_dur.get(r["id"], 0.0), 0.0)
            for r in self.spans
        }

    def inherited_tag(self, record: Dict[str, Any], key: str) -> Optional[Any]:
        """``record``'s tag ``key``, or the nearest ancestor's (if any)."""
        seen = set()
        while record is not None and record["id"] not in seen:
            seen.add(record["id"])
            value = (record.get("tags") or {}).get(key)
            if value is not None:
                return value
            parent = record.get("parent")
            record = self._by_id.get(parent) if parent is not None else None
        return None

    # -- tables ----------------------------------------------------------
    def by_name(self) -> List[Tuple[str, int, float, float, float]]:
        """``(name, count, total_s, self_s, max_s)`` rows, self-time first."""
        totals: Dict[str, List[float]] = defaultdict(lambda: [0, 0.0, 0.0, 0.0])
        for record in self.spans:
            row = totals[record["name"]]
            row[0] += 1
            row[1] += record.get("dur", 0.0)
            row[2] += self.self_seconds[record["id"]]
            row[3] = max(row[3], record.get("dur", 0.0))
        return sorted(
            ((name, int(r[0]), r[1], r[2], r[3]) for name, r in totals.items()),
            key=lambda item: -item[3],
        )

    def by_tag(self, key: str) -> List[Tuple[str, float, int]]:
        """Self-time grouped by the inherited value of tag ``key``.

        Spans with no value anywhere up their ancestry are grouped under
        ``"-"`` (e.g. the shared multi-seed stacked pass has no single
        seed).  Rows are ``(value, self_seconds, span_count)``, biggest
        first.
        """
        groups: Dict[str, List[float]] = defaultdict(lambda: [0.0, 0])
        for record in self.spans:
            value = self.inherited_tag(record, key)
            label = "-" if value is None else str(value)
            groups[label][0] += self.self_seconds[record["id"]]
            groups[label][1] += 1
        return sorted(
            ((label, r[0], int(r[1])) for label, r in groups.items()),
            key=lambda item: -item[1],
        )

    def by_subsystem(self) -> List[Tuple[str, float, int]]:
        """Self-time grouped by the span name's leading dotted component."""
        groups: Dict[str, List[float]] = defaultdict(lambda: [0.0, 0])
        for record in self.spans:
            label = record["name"].split(".", 1)[0]
            groups[label][0] += self.self_seconds[record["id"]]
            groups[label][1] += 1
        return sorted(
            ((label, r[0], int(r[1])) for label, r in groups.items()),
            key=lambda item: -item[1],
        )

    def cache_stats(self) -> Dict[str, Any]:
        """Hit/miss totals from the ``eval_cache.evaluate`` event tags."""
        hits = misses = lookups = 0
        for record in self.events:
            if record["name"] != "eval_cache.evaluate":
                continue
            tags = record.get("tags") or {}
            hits += int(tags.get("hits", 0))
            misses += int(tags.get("misses", 0))
            lookups += 1
        engine = [r for r in self.spans if r["name"] == "eval_cache.engine"]
        return {
            "lookups": lookups,
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / (hits + misses) if (hits + misses) else None,
            "engine_calls": len(engine),
            "engine_seconds": sum(r.get("dur", 0.0) for r in engine),
        }

    def top_spans(self, limit: int = 10) -> List[Dict[str, Any]]:
        return sorted(self.spans, key=lambda r: -r.get("dur", 0.0))[:limit]

    def wall_seconds(self) -> float:
        """End-to-end window covered by the records (last end - first start)."""
        if not self.records:
            return 0.0
        start = min(r.get("start", 0.0) for r in self.records)
        end = max(r.get("start", 0.0) + r.get("dur", 0.0) for r in self.records)
        return end - start


def _format_tag_table(
    title: str, rows: Iterable[Tuple[str, float, int]], wall: float
) -> List[str]:
    lines = [title, f"  {'key':28s} {'self_s':>9s} {'share':>7s} {'spans':>7s}"]
    for label, seconds, count in rows:
        share = seconds / wall if wall else 0.0
        lines.append(f"  {label:28s} {seconds:>9.3f} {share:>6.1%} {count:>7d}")
    return lines


def format_report(records: Sequence[Dict[str, Any]], top: int = 10) -> str:
    """The full ``python -m repro.obs report`` rendering."""
    rollup = TraceRollup(records)
    if not rollup.spans and not rollup.events:
        return "empty trace (no span or event records)"
    wall = rollup.wall_seconds()
    lines = [
        f"trace: {len(rollup.spans)} spans, {len(rollup.events)} events, "
        f"{wall:.3f} s covered"
    ]

    lines.append("")
    lines.extend(
        _format_tag_table("per-subsystem self-time:", rollup.by_subsystem(), wall)
    )
    if any((record.get("tags") or {}).get("worker") is not None for record in records):
        lines.append("")
        lines.extend(
            _format_tag_table("per-worker self-time:", rollup.by_tag("worker"), wall)
        )
    lines.append("")
    lines.extend(_format_tag_table("per-seed self-time:", rollup.by_tag("seed"), wall))
    lines.append("")
    lines.extend(
        _format_tag_table("per-phase self-time:", rollup.by_tag("phase"), wall)
    )

    lines.append("")
    lines.append("per-span rollup:")
    lines.append(
        f"  {'name':32s} {'count':>6s} {'total_s':>9s} {'self_s':>9s} "
        f"{'mean_ms':>8s} {'max_ms':>8s}"
    )
    for name, count, total, self_s, max_s in rollup.by_name():
        lines.append(
            f"  {name:32s} {count:>6d} {total:>9.3f} {self_s:>9.3f} "
            f"{total / count * 1e3:>8.2f} {max_s * 1e3:>8.2f}"
        )

    cache = rollup.cache_stats()
    lines.append("")
    lines.append("cache:")
    if cache["lookups"]:
        lines.append(
            f"  {cache['hits']} hits / {cache['misses']} misses over "
            f"{cache['lookups']} lookups (hit rate "
            f"{cache['hit_rate']:.1%}), {cache['engine_calls']} engine calls, "
            f"{cache['engine_seconds']:.3f} s in the engine"
        )
    else:
        lines.append("  no eval_cache.evaluate events in this trace")

    lines.append("")
    lines.append(f"top {top} spans by duration:")
    for record in rollup.top_spans(top):
        tags = record.get("tags") or {}
        tag_text = " ".join(f"{k}={v}" for k, v in sorted(tags.items()))
        lines.append(
            f"  {record.get('dur', 0.0) * 1e3:>9.2f} ms  {record['name']}"
            + (f"  [{tag_text}]" if tag_text else "")
        )
    return "\n".join(lines)
