"""Counters, gauges and histograms behind a named registry.

The :class:`MetricsRegistry` mirrors the optimizer/topology/rule registry
pattern: instruments are created on first use by name, a name is bound to
exactly one instrument kind for the registry's lifetime, and
:meth:`~MetricsRegistry.snapshot` exports everything as plain dicts — the
same shape :func:`diff_snapshots` consumes to compute what happened between
two points in time (how the bench runner builds the per-case ``telemetry``
block without replaying the trace ring, which may have wrapped).

The default metrics surface is the active tracer's registry
(``repro.obs.get_metrics()``): every closed span feeds a
``span.<name>`` histogram and every event a ``event.<name>`` counter, so
span rollups are available even when the JSONL sink is off.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class Counter:
    """Monotonically increasing count (cache hits, events, retries)."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Last-write-wins level (ring occupancy, live members, radius)."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Streaming summary of observations (span durations, batch sizes).

    Keeps count/total/min/max rather than buckets: the consumers here want
    rollups (mean wall time per span name), and four scalars diff cleanly
    across snapshots.
    """

    kind = "histogram"
    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Name -> instrument store with get-or-create accessors.

    Mirrors the optimizer/topology/rule registries: looking up a name that
    exists returns the existing instrument, and asking for the same name as
    a different kind is an error rather than a silent shadow.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def _get_or_create(self, name: str, factory: type) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, factory):
            raise TypeError(
                f"metric {name!r} is already registered as a "
                f"{instrument.kind}, not a {factory.kind}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def get(self, name: str) -> Any:
        """The instrument registered under ``name``; KeyError lists names."""
        try:
            return self._instruments[name]
        except KeyError:
            raise KeyError(
                f"unknown metric {name!r}; registered: {', '.join(self.names())}"
            ) from None

    def names(self) -> tuple:
        return tuple(sorted(self._instruments))

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-dict export of every instrument, keyed by name."""
        return {
            name: instrument.snapshot()
            for name, instrument in sorted(self._instruments.items())
        }


def diff_snapshots(
    before: Dict[str, Dict[str, Any]], after: Dict[str, Dict[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    """What changed between two :meth:`MetricsRegistry.snapshot` exports.

    Counters and histograms are differenced field-wise (min/max are taken
    from the *after* side — they do not diff meaningfully); gauges report
    their after value.  Instruments that did not move are omitted, so the
    result is exactly "what this slice of work did" — the bench runner's
    per-case telemetry.
    """
    delta: Dict[str, Dict[str, Any]] = {}
    for name, record in after.items():
        previous = before.get(name)
        if record["kind"] == "gauge":
            if previous is None or previous["value"] != record["value"]:
                delta[name] = dict(record)
            continue
        if record["kind"] == "counter":
            moved = record["value"] - (previous["value"] if previous else 0)
            if moved:
                delta[name] = {"kind": "counter", "value": moved}
            continue
        count = record["count"] - (previous["count"] if previous else 0)
        if count:
            delta[name] = {
                "kind": "histogram",
                "count": count,
                "total": record["total"] - (previous["total"] if previous else 0.0),
                "min": record["min"],
                "max": record["max"],
            }
    return delta
