"""Shared stdlib-logging setup for the CLI entry points.

Every module gets its own logger (``logging.getLogger(__name__)``, the
module-logger pattern), status lines go through it at INFO/DEBUG, and the
CLIs call :func:`configure_cli_logging` once after argument parsing —
machine-readable output (summaries, artifact paths, findings) stays on
stdout, human status narration goes to stderr and is silenced by
``--quiet`` or widened by ``--verbose``.
"""

from __future__ import annotations

import logging
import sys


def configure_cli_logging(quiet: bool = False, verbose: bool = False) -> None:
    """Point the ``repro`` logger tree at stderr and set its level.

    Idempotent: repeated calls (tests drive the CLI mains in-process) only
    adjust the level, never stack handlers.
    """
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
        root.addHandler(handler)
        root.propagate = False
    if quiet:
        root.setLevel(logging.ERROR)
    elif verbose:
        root.setLevel(logging.DEBUG)
    else:
        root.setLevel(logging.INFO)


def add_logging_flags(parser) -> None:
    """Attach the shared ``--quiet`` / ``--verbose`` pair to a parser."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--quiet",
        action="store_true",
        help="suppress status logging (errors only); machine-readable "
        "stdout output is unaffected",
    )
    group.add_argument(
        "--verbose",
        action="store_true",
        help="debug-level status logging on stderr",
    )
