"""Append-only on-disk store behind the persistent EvaluationCache.

One file per campaign workload, holding ``(corner tag, row key, metric
row)`` records in append order:

* **header** — magic + format version + the workload shape (sizing
  dimension, metric count), CRC-protected.  Reopening a store with a
  different shape is a hard error (it is a different workload, not a
  recoverable state).
* **records** — ``u32 payload length | payload | u32 crc32(payload)``
  frames, where the payload is ``u16 tag length | corner tag | row key
  (dimension * 8 bytes) | metric row (n_metrics * 8 bytes)``.  Keys and
  rows are raw float64 buffers — the same bit-exact identities the
  in-memory :class:`~repro.search.eval_cache.EvaluationCache` uses — so a
  warm-started process serves byte-identical results.

Because appends are the only mutation, a crash can damage the file in
exactly one way: a torn final frame.  :meth:`CacheStore.open` scans the
frames on reopen, and the first short read or CRC mismatch truncates the
file back to the last good frame boundary (counted in
:attr:`CacheStore.repaired_bytes`) — everything before it is intact by
construction.  The ``cache.append`` fault site makes that failure mode
testable on demand: when the armed plan fires there, the store writes a
genuine half-frame and flushes it before the fault propagates, so the
drill's resumed process exercises the real repair path, not a simulation.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import List, Sequence, Tuple

import numpy as np

from repro.resilience.faults import InjectedFault, fault_point, register_fault_site

MAGIC = b"REPROEVC\x01"
VERSION = 1

_HEADER_BODY = struct.Struct("<HII")  # version, dimension, n_metrics
_HEADER_CRC = struct.Struct("<I")
_FRAME_LEN = struct.Struct("<I")
_FRAME_CRC = struct.Struct("<I")
_TAG_LEN = struct.Struct("<H")

#: Size of the complete header on disk.
HEADER_SIZE = len(MAGIC) + _HEADER_BODY.size + _HEADER_CRC.size

SITE_CACHE_APPEND = register_fault_site("cache.append")


class StoreError(RuntimeError):
    """The store file belongs to a different workload or is not a store."""


def _check_header(path: str, header: bytes, dimension: int, n_metrics: int) -> None:
    """Raise :class:`StoreError` unless ``header`` pins this workload."""
    if not header.startswith(MAGIC):
        raise StoreError(f"{path!r} is not an evaluation-cache store")
    body = header[len(MAGIC) : len(MAGIC) + _HEADER_BODY.size]
    (crc,) = _HEADER_CRC.unpack(header[len(MAGIC) + _HEADER_BODY.size :])
    if zlib.crc32(body) != crc:
        raise StoreError(f"{path!r} has a corrupt store header")
    version, file_dimension, file_n_metrics = _HEADER_BODY.unpack(body)
    if version != VERSION:
        raise StoreError(
            f"{path!r} is store format v{version}, expected v{VERSION}"
        )
    if file_dimension != dimension or file_n_metrics != n_metrics:
        raise StoreError(
            f"{path!r} was written for dimension={file_dimension}, "
            f"n_metrics={file_n_metrics}; this workload has "
            f"dimension={dimension}, n_metrics={n_metrics}"
        )


def _parse_payload(
    payload: bytes, key_width: int, row_width: int, n_metrics: int
) -> "Tuple[bytes, bytes, np.ndarray] | None":
    (tag_length,) = _TAG_LEN.unpack(payload[: _TAG_LEN.size])
    key_start = _TAG_LEN.size + tag_length
    row_start = key_start + key_width
    if len(payload) != row_start + row_width:
        return None
    tag = payload[_TAG_LEN.size : key_start]
    key = payload[key_start:row_start]
    # A view into the (immutable) payload bytes: read-only by
    # construction, matching the cache's frozen-row invariant.
    row = np.frombuffer(payload, dtype=np.float64, count=n_metrics, offset=row_start)
    return tag, key, row


def _scan_frames(
    handle, key_width: int, row_width: int, n_metrics: int
) -> Tuple[List[Tuple[bytes, bytes, np.ndarray]], int]:
    """Read frames (from just past the header) until EOF or damage.

    Returns ``(records, good_offset)`` where ``good_offset`` is the file
    offset of the last frame boundary every record before it ends on.
    """
    records: List[Tuple[bytes, bytes, np.ndarray]] = []
    offset = HEADER_SIZE
    min_payload = _TAG_LEN.size + key_width + row_width
    while True:
        length_bytes = handle.read(_FRAME_LEN.size)
        if len(length_bytes) < _FRAME_LEN.size:
            break  # clean EOF, or a tail torn inside the length field
        (length,) = _FRAME_LEN.unpack(length_bytes)
        payload = handle.read(length)
        crc_bytes = handle.read(_FRAME_CRC.size)
        if (
            length < min_payload
            or len(payload) < length
            or len(crc_bytes) < _FRAME_CRC.size
            or zlib.crc32(payload) != _FRAME_CRC.unpack(crc_bytes)[0]
        ):
            break  # torn/corrupt frame: everything after it is the tail
        record = _parse_payload(payload, key_width, row_width, n_metrics)
        if record is None:
            break
        records.append(record)
        offset += _FRAME_LEN.size + length + _FRAME_CRC.size
    return records, offset


def read_records(
    path: str, dimension: int, n_metrics: int
) -> Tuple[List[Tuple[bytes, bytes, np.ndarray]], int]:
    """Read-only scan of a store file: the good records, without repair.

    Unlike constructing a :class:`CacheStore`, nothing is truncated and no
    write handle is taken, so this is safe on a file another process still
    owns — a torn tail (if any) is simply not yielded.  Returns
    ``(records, trailing_bytes)`` where ``trailing_bytes`` counts what a
    writer's repair pass would trim.
    """
    key_width = int(dimension) * 8
    row_width = int(n_metrics) * 8
    size = os.path.getsize(path)
    with open(path, "rb") as handle:
        header = handle.read(HEADER_SIZE)
        if len(header) < HEADER_SIZE:
            raise StoreError(f"{path!r} is truncated inside the store header")
        _check_header(path, header, int(dimension), int(n_metrics))
        records, good_offset = _scan_frames(handle, key_width, row_width, n_metrics)
    return records, size - good_offset


def merge_stores(
    target_path: str,
    shard_paths: "Sequence[str]",
    dimension: int,
    n_metrics: int,
) -> int:
    """Merge per-shard store files into one master store, deduplicated.

    The sharded executor gives every shard its own single-writer store
    file (preserving the append-only/torn-tail-repair invariant — no
    cross-process locking) and the parent replays them into the master
    after all workers have exited.  Shards are replayed **in the given
    order** and a ``(tag, key)`` pair already present in the master or an
    earlier shard is skipped: the parity locks guarantee duplicate pairs
    carry bit-identical rows, so first-write-wins is exact, and the merged
    file's record sequence is deterministic.  Returns the number of
    records appended.
    """
    target = CacheStore(target_path, dimension, n_metrics)
    try:
        seen = {(tag, key) for tag, key, _ in target.records}
        appended = 0
        for path in shard_paths:
            records, _ = read_records(path, dimension, n_metrics)
            for tag, key, row in records:
                if (tag, key) in seen:
                    continue
                seen.add((tag, key))
                target.append(tag, key, row)
                appended += 1
        target.flush()
    finally:
        target.close()
    return appended


class CacheStore:
    """Single-writer append-only record log with torn-tail repair.

    Parameters
    ----------
    path:
        Store file; created (with its parent directory) when missing.
    dimension, n_metrics:
        The workload shape fixing the key and metric-row byte widths.

    Attributes
    ----------
    records:
        The ``(tag, key, metrics)`` tuples that survived the opening scan,
        in append order (later duplicates intentionally kept — the loader
        replays them in order, so last-write-wins like the appends did).
    repaired_bytes:
        Bytes truncated off a torn tail at open (0 for a clean file).
    """

    def __init__(self, path: str, dimension: int, n_metrics: int) -> None:
        self.path = path
        self._key_width = int(dimension) * 8
        self._row_width = int(n_metrics) * 8
        self._dimension = int(dimension)
        self._n_metrics = int(n_metrics)
        self.records: List[Tuple[bytes, bytes, np.ndarray]] = []
        self.repaired_bytes = 0
        self._file = self._open()

    # -- opening and repair --------------------------------------------
    def _open(self):
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        size = os.path.getsize(self.path) if os.path.exists(self.path) else 0
        if size < HEADER_SIZE:
            # New store — or a creation that died before the header landed
            # (nothing after a torn header can be valid, so start over).
            self.repaired_bytes = size
            handle = open(self.path, "wb")  # analysis: allow(non-atomic-artifact-write) append-only log, integrity via per-record CRCs
            handle.write(self._header())
            handle.flush()
            os.fsync(handle.fileno())
            return handle
        handle = open(self.path, "r+b")
        try:
            self._validate_header(handle.read(HEADER_SIZE))
            good_offset = self._scan(handle)
        except StoreError:
            handle.close()
            raise
        if good_offset < size:
            handle.truncate(good_offset)
            self.repaired_bytes = size - good_offset
        handle.seek(good_offset)
        return handle

    def _header(self) -> bytes:
        body = _HEADER_BODY.pack(VERSION, self._dimension, self._n_metrics)
        return MAGIC + body + _HEADER_CRC.pack(zlib.crc32(body))

    def _validate_header(self, header: bytes) -> None:
        _check_header(self.path, header, self._dimension, self._n_metrics)

    def _scan(self, handle) -> int:
        """Read frames until EOF or damage; return the last good offset."""
        records, offset = _scan_frames(
            handle, self._key_width, self._row_width, self._n_metrics
        )
        self.records.extend(records)
        return offset

    # -- appends --------------------------------------------------------
    def append(self, tag: bytes, key: bytes, metrics: np.ndarray) -> None:
        """Append one ``(corner tag, row key, metric row)`` record."""
        if self._file is None:
            raise StoreError(f"store {self.path!r} is closed")
        if len(key) != self._key_width:
            raise ValueError(f"key width {len(key)}, expected {self._key_width}")
        payload = _TAG_LEN.pack(len(tag)) + tag + key + metrics.tobytes()
        if len(payload) != _TAG_LEN.size + len(tag) + self._key_width + self._row_width:
            raise ValueError(
                f"metric row has {metrics.size} values, expected {self._n_metrics}"
            )
        frame = _FRAME_LEN.pack(len(payload)) + payload + _FRAME_CRC.pack(zlib.crc32(payload))
        try:
            fault_point(SITE_CACHE_APPEND)
        except InjectedFault:
            # Die like a real crash would: half the frame durably on disk.
            self._file.write(frame[: len(frame) // 2])
            self._file.flush()
            raise
        self._file.write(frame)

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
            self._file = None
