"""Append-only on-disk store behind the persistent EvaluationCache.

One file per campaign workload, holding ``(corner tag, row key, metric
row)`` records in append order:

* **header** — magic + format version + the workload shape (sizing
  dimension, metric count), CRC-protected.  Reopening a store with a
  different shape is a hard error (it is a different workload, not a
  recoverable state).
* **records** — ``u32 payload length | payload | u32 crc32(payload)``
  frames, where the payload is ``u16 tag length | corner tag | row key
  (dimension * 8 bytes) | metric row (n_metrics * 8 bytes)``.  Keys and
  rows are raw float64 buffers — the same bit-exact identities the
  in-memory :class:`~repro.search.eval_cache.EvaluationCache` uses — so a
  warm-started process serves byte-identical results.

Because appends are the only mutation, a crash can damage the file in
exactly one way: a torn final frame.  :meth:`CacheStore.open` scans the
frames on reopen, and the first short read or CRC mismatch truncates the
file back to the last good frame boundary (counted in
:attr:`CacheStore.repaired_bytes`) — everything before it is intact by
construction.  The ``cache.append`` fault site makes that failure mode
testable on demand: when the armed plan fires there, the store writes a
genuine half-frame and flushes it before the fault propagates, so the
drill's resumed process exercises the real repair path, not a simulation.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import List, Tuple

import numpy as np

from repro.resilience.faults import InjectedFault, fault_point, register_fault_site

MAGIC = b"REPROEVC\x01"
VERSION = 1

_HEADER_BODY = struct.Struct("<HII")  # version, dimension, n_metrics
_HEADER_CRC = struct.Struct("<I")
_FRAME_LEN = struct.Struct("<I")
_FRAME_CRC = struct.Struct("<I")
_TAG_LEN = struct.Struct("<H")

#: Size of the complete header on disk.
HEADER_SIZE = len(MAGIC) + _HEADER_BODY.size + _HEADER_CRC.size

SITE_CACHE_APPEND = register_fault_site("cache.append")


class StoreError(RuntimeError):
    """The store file belongs to a different workload or is not a store."""


class CacheStore:
    """Single-writer append-only record log with torn-tail repair.

    Parameters
    ----------
    path:
        Store file; created (with its parent directory) when missing.
    dimension, n_metrics:
        The workload shape fixing the key and metric-row byte widths.

    Attributes
    ----------
    records:
        The ``(tag, key, metrics)`` tuples that survived the opening scan,
        in append order (later duplicates intentionally kept — the loader
        replays them in order, so last-write-wins like the appends did).
    repaired_bytes:
        Bytes truncated off a torn tail at open (0 for a clean file).
    """

    def __init__(self, path: str, dimension: int, n_metrics: int) -> None:
        self.path = path
        self._key_width = int(dimension) * 8
        self._row_width = int(n_metrics) * 8
        self._dimension = int(dimension)
        self._n_metrics = int(n_metrics)
        self.records: List[Tuple[bytes, bytes, np.ndarray]] = []
        self.repaired_bytes = 0
        self._file = self._open()

    # -- opening and repair --------------------------------------------
    def _open(self):
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        size = os.path.getsize(self.path) if os.path.exists(self.path) else 0
        if size < HEADER_SIZE:
            # New store — or a creation that died before the header landed
            # (nothing after a torn header can be valid, so start over).
            self.repaired_bytes = size
            handle = open(self.path, "wb")  # analysis: allow(non-atomic-artifact-write) append-only log, integrity via per-record CRCs
            handle.write(self._header())
            handle.flush()
            os.fsync(handle.fileno())
            return handle
        handle = open(self.path, "r+b")
        try:
            self._validate_header(handle.read(HEADER_SIZE))
            good_offset = self._scan(handle)
        except StoreError:
            handle.close()
            raise
        if good_offset < size:
            handle.truncate(good_offset)
            self.repaired_bytes = size - good_offset
        handle.seek(good_offset)
        return handle

    def _header(self) -> bytes:
        body = _HEADER_BODY.pack(VERSION, self._dimension, self._n_metrics)
        return MAGIC + body + _HEADER_CRC.pack(zlib.crc32(body))

    def _validate_header(self, header: bytes) -> None:
        if not header.startswith(MAGIC):
            raise StoreError(f"{self.path!r} is not an evaluation-cache store")
        body = header[len(MAGIC) : len(MAGIC) + _HEADER_BODY.size]
        (crc,) = _HEADER_CRC.unpack(header[len(MAGIC) + _HEADER_BODY.size :])
        if zlib.crc32(body) != crc:
            raise StoreError(f"{self.path!r} has a corrupt store header")
        version, dimension, n_metrics = _HEADER_BODY.unpack(body)
        if version != VERSION:
            raise StoreError(
                f"{self.path!r} is store format v{version}, expected v{VERSION}"
            )
        if dimension != self._dimension or n_metrics != self._n_metrics:
            raise StoreError(
                f"{self.path!r} was written for dimension={dimension}, "
                f"n_metrics={n_metrics}; this workload has "
                f"dimension={self._dimension}, n_metrics={self._n_metrics}"
            )

    def _scan(self, handle) -> int:
        """Read frames until EOF or damage; return the last good offset."""
        offset = HEADER_SIZE
        min_payload = _TAG_LEN.size + self._key_width + self._row_width
        while True:
            length_bytes = handle.read(_FRAME_LEN.size)
            if len(length_bytes) < _FRAME_LEN.size:
                break  # clean EOF, or a tail torn inside the length field
            (length,) = _FRAME_LEN.unpack(length_bytes)
            payload = handle.read(length)
            crc_bytes = handle.read(_FRAME_CRC.size)
            if (
                length < min_payload
                or len(payload) < length
                or len(crc_bytes) < _FRAME_CRC.size
                or zlib.crc32(payload) != _FRAME_CRC.unpack(crc_bytes)[0]
            ):
                break  # torn/corrupt frame: everything after it is the tail
            record = self._parse(payload)
            if record is None:
                break
            self.records.append(record)
            offset += _FRAME_LEN.size + length + _FRAME_CRC.size
        return offset

    def _parse(self, payload: bytes) -> "Tuple[bytes, bytes, np.ndarray] | None":
        (tag_length,) = _TAG_LEN.unpack(payload[: _TAG_LEN.size])
        key_start = _TAG_LEN.size + tag_length
        row_start = key_start + self._key_width
        if len(payload) != row_start + self._row_width:
            return None
        tag = payload[_TAG_LEN.size : key_start]
        key = payload[key_start:row_start]
        # A view into the (immutable) payload bytes: read-only by
        # construction, matching the cache's frozen-row invariant.
        row = np.frombuffer(payload, dtype=np.float64, count=self._n_metrics, offset=row_start)
        return tag, key, row

    # -- appends --------------------------------------------------------
    def append(self, tag: bytes, key: bytes, metrics: np.ndarray) -> None:
        """Append one ``(corner tag, row key, metric row)`` record."""
        if self._file is None:
            raise StoreError(f"store {self.path!r} is closed")
        if len(key) != self._key_width:
            raise ValueError(f"key width {len(key)}, expected {self._key_width}")
        payload = _TAG_LEN.pack(len(tag)) + tag + key + metrics.tobytes()
        if len(payload) != _TAG_LEN.size + len(tag) + self._key_width + self._row_width:
            raise ValueError(
                f"metric row has {metrics.size} values, expected {self._n_metrics}"
            )
        frame = _FRAME_LEN.pack(len(payload)) + payload + _FRAME_CRC.pack(zlib.crc32(payload))
        try:
            fault_point(SITE_CACHE_APPEND)
        except InjectedFault:
            # Die like a real crash would: half the frame durably on disk.
            self._file.write(frame[: len(frame) // 2])
            self._file.flush()
            raise
        self._file.write(frame)

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
            self._file = None
