"""Atomic artifact writes: write-temp + fsync + ``os.replace``.

Every committed artifact the repo produces — BENCH JSON payloads, trace
JSONL finalization, campaign snapshots — goes through this helper, so a
crash at any instant leaves either the complete previous version or the
complete new version on disk, never a truncated hybrid.  The recipe is the
standard one: write the full content to a temporary file *in the target
directory* (so the final rename never crosses a filesystem), flush and
fsync the data, then :func:`os.replace` over the destination (atomic on
POSIX and Windows).  The directory entry itself is fsynced best-effort —
some filesystems/platforms reject directory fds, and the rename is already
durable-or-absent without it.

The ``non-atomic-artifact-write`` lint rule
(:mod:`repro.analysis.rules`) flags raw ``open(path, "w")`` artifact
writes outside this package, pointing offenders here.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (all-or-nothing on crash)."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    _fsync_directory(directory)


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(
    path: str, payload: Any, indent: int = 2, sort_keys: bool = True
) -> None:
    """Serialize ``payload`` as stable JSON and write it atomically."""
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    atomic_write_text(path, text)


def fsync_replace(src: str, dst: str) -> None:
    """Promote an already-written file over ``dst`` durably.

    For streaming writers (e.g. the tracer's ``.partial`` JSONL sink) that
    build the file incrementally and only need the final rename: fsync the
    source content, replace the destination, fsync the directory entry.
    """
    with open(src, "rb") as handle:
        os.fsync(handle.fileno())
    os.replace(src, dst)
    _fsync_directory(os.path.dirname(os.path.abspath(dst)) or ".")


def _fsync_directory(directory: str) -> None:
    """Best-effort fsync of a directory entry (rename durability)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
