"""Versioned, integrity-checked campaign snapshots.

A snapshot is a single file holding one state tree (the nested
``state_dict()`` of a :class:`~repro.search.campaign.Campaign`): a fixed
magic + format version, a CRC32 and length of the payload, then the
payload itself — a :mod:`pickle` of plain builtins, ``bytes`` and NumPy
arrays only.  The envelope makes corruption *detected*, and the write path
(:func:`repro.resilience.atomic.atomic_write_bytes`) makes torn writes
*impossible*: a crash mid-checkpoint leaves the previous snapshot intact,
and any bit rot that slips past the filesystem fails the CRC loudly at
load instead of resuming a silently wrong campaign.

Pickle is safe here in the usual caveated sense — snapshots are local
state produced by the same trusted process that reloads them, not a wire
format — and the restricted vocabulary (no custom classes in the tree)
keeps the format stable across refactors of the engine's class layout.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from typing import Any

from repro.resilience.atomic import atomic_write_bytes

#: Envelope magic; the trailing byte is the envelope version.
MAGIC = b"REPROSNAP\x01"
#: Payload format tag, checked on load (bump on incompatible tree changes).
SNAPSHOT_FORMAT = "repro.resilience/snapshot-v1"

_HEADER = struct.Struct("<IQ")  # crc32(payload), len(payload)


class SnapshotError(RuntimeError):
    """A snapshot file is missing, torn, corrupt, or of a foreign format."""


def save_snapshot(path: str, state: Any) -> None:
    """Serialize ``state`` into an integrity-checked snapshot, atomically."""
    payload = pickle.dumps(
        {"format": SNAPSHOT_FORMAT, "state": state}, protocol=pickle.HIGHEST_PROTOCOL
    )
    blob = MAGIC + _HEADER.pack(zlib.crc32(payload), len(payload)) + payload
    atomic_write_bytes(path, blob)


def load_snapshot(path: str) -> Any:
    """Load and validate a snapshot; returns the state tree.

    Raises :class:`SnapshotError` on any integrity failure — wrong magic,
    truncated envelope, CRC mismatch, or foreign payload format.
    """
    if not os.path.exists(path):
        raise SnapshotError(f"snapshot {path!r} does not exist")
    with open(path, "rb") as handle:
        blob = handle.read()
    if not blob.startswith(MAGIC):
        raise SnapshotError(f"{path!r} is not a repro snapshot (bad magic)")
    header = blob[len(MAGIC) : len(MAGIC) + _HEADER.size]
    if len(header) < _HEADER.size:
        raise SnapshotError(f"snapshot {path!r} is truncated (no header)")
    crc, length = _HEADER.unpack(header)
    payload = blob[len(MAGIC) + _HEADER.size :]
    if len(payload) != length:
        raise SnapshotError(
            f"snapshot {path!r} is truncated ({len(payload)} of {length} payload bytes)"
        )
    if zlib.crc32(payload) != crc:
        raise SnapshotError(f"snapshot {path!r} failed its CRC check")
    document = pickle.loads(payload)
    if not isinstance(document, dict) or document.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"snapshot {path!r} has format "
            f"{document.get('format') if isinstance(document, dict) else None!r}, "
            f"expected {SNAPSHOT_FORMAT!r}"
        )
    return document["state"]
