"""Deterministic fault injection for the kill-and-resume drill.

Crash-recovery code is only trustworthy if the crashes it recovers from are
reproducible.  This module gives the engine *named fault sites* — the
instrumented points where a real process death would hurt (a cache append
mid-record, an engine call, a surrogate refit, a snapshot write) — and
seeded :class:`FaultPlan`\\ s that kill exactly one site at exactly one
occurrence, the same one every time for the same seed.

Sites self-register at import of the instrumented module
(:func:`register_fault_site`), and :func:`fault_point` is near-free when no
plan is armed: one module-global ``is None`` test.  Arming is scoped with
the :func:`inject` context manager; the triggered :class:`InjectedFault`
propagates out of the engine like any crash would, leaving on-disk state
exactly as a ``kill -9`` at that instant could (the persistent cache store
even writes a genuine torn half-record first, see
:mod:`repro.resilience.store`).

The drill (``python -m repro.resilience drill``) iterates every registered
site, interrupts a bench case there, resumes from the latest snapshot, and
byte-diffs the resumed trajectory against the uninterrupted oracle.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.obs import event

#: Registration order of the fault sites (stable: import order is fixed by
#: the package graph, and the drill iterates this tuple).
_SITES: Tuple[str, ...] = ()

_ACTIVE: Optional["FaultPlan"] = None


class InjectedFault(RuntimeError):
    """The planned fault: raised by :func:`fault_point` at the match."""

    def __init__(self, site: str, occurrence: int) -> None:
        super().__init__(f"injected fault at {site!r} (occurrence {occurrence})")
        self.site = site
        self.occurrence = occurrence


def register_fault_site(name: str) -> str:
    """Declare a named fault site (idempotent); returns the name.

    Called at module scope next to the instrumented code, so importing the
    engine is what populates :func:`registered_fault_sites`.
    """
    global _SITES
    if not name:
        raise ValueError("fault site name must be non-empty")
    if name not in _SITES:
        _SITES = _SITES + (name,)
    return name


def registered_fault_sites() -> Tuple[str, ...]:
    """All registered site names, in registration order."""
    return _SITES


class FaultPlan:
    """Kill at one ``site``, on its ``occurrence``-th execution.

    Occurrence counting is per plan and per site: every
    :func:`fault_point` pass increments the armed plan's counter for that
    site, and the plan fires exactly once, when its own site reaches its
    occurrence.  Two runs armed with equal plans over a deterministic
    engine die at the same instruction.
    """

    def __init__(self, site: str, occurrence: int = 1) -> None:
        if occurrence < 1:
            raise ValueError("occurrence must be at least 1")
        self.site = site
        self.occurrence = int(occurrence)
        self.counts: Dict[str, int] = {}
        self.fired = False

    def __repr__(self) -> str:
        status = "fired" if self.fired else "armed"
        return f"FaultPlan({self.site!r}, occurrence={self.occurrence}, {status})"

    @classmethod
    def from_seed(
        cls,
        seed: int,
        sites: Optional[Sequence[str]] = None,
        max_occurrence: int = 4,
    ) -> "FaultPlan":
        """Seeded site/occurrence choice: same seed, same fault, always."""
        pool = tuple(sites) if sites is not None else registered_fault_sites()
        if not pool:
            raise ValueError("no fault sites registered (or given) to choose from")
        rng = np.random.default_rng(seed)
        site = pool[int(rng.integers(len(pool)))]
        occurrence = int(rng.integers(1, max_occurrence + 1))
        return cls(site, occurrence)


def fault_point(site: str) -> None:
    """Count one pass through ``site``; raise if the armed plan matches."""
    plan = _ACTIVE
    if plan is None:
        return
    count = plan.counts.get(site, 0) + 1
    plan.counts[site] = count
    if not plan.fired and site == plan.site and count == plan.occurrence:
        plan.fired = True
        event("resilience.fault", site=site, occurrence=count)
        raise InjectedFault(site, count)


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the duration of the block (one plan at a time)."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a fault plan is already armed")
    if plan.site not in _SITES:
        raise ValueError(
            f"unknown fault site {plan.site!r}; registered: {', '.join(_SITES)}"
        )
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = None
