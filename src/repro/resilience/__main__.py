"""CLI for the resilience subsystem.

Subcommands::

    python -m repro.resilience drill [--suite drill] [--seeds N]
                                     [--occurrences 1,3] [--workdir DIR]
    python -m repro.resilience sites

``drill`` runs the kill-and-resume drill (crash every fault site, resume,
byte-diff against the uninterrupted oracle) and exits 1 on any divergence —
wired as the CI ``resilience`` job.  ``sites`` lists the registered fault
sites the drill exercises.
"""

from __future__ import annotations

import argparse
import logging
from typing import Optional, Sequence

from repro.obs.logs import add_logging_flags, configure_cli_logging

module_logger = logging.getLogger(__name__)


def _cmd_drill(args: argparse.Namespace) -> int:
    # Imported lazily: the drill pulls in the bench/search stack, which the
    # resilience leaf helpers stay independent of.
    from repro.resilience.drill import drill_suite

    occurrences = tuple(
        int(token) for token in args.occurrences.split(",") if token.strip()
    )
    if not occurrences or any(occurrence < 1 for occurrence in occurrences):
        raise SystemExit("--occurrences must be a comma list of integers >= 1")
    module_logger.info(
        "drilling suite %r with %d seed(s), occurrences %s, workdir %s",
        args.suite,
        args.seeds,
        list(occurrences),
        args.workdir,
    )
    report = drill_suite(
        suite=args.suite,
        seeds=range(args.seeds),
        occurrences=occurrences,
        workdir=args.workdir,
        worker_kill=not args.skip_worker_kill,
    )
    print(report.format())
    return 0 if report.ok else 1


def _cmd_sites(args: argparse.Namespace) -> int:
    # Importing the engine is what registers its fault sites.
    import repro.search.campaign  # noqa: F401
    from repro.resilience.faults import registered_fault_sites

    for site in registered_fault_sites():
        print(site)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience",
        description="Crash-safety drills for checkpoint/resume and the "
        "persistent evaluation cache.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    drill = subparsers.add_parser(
        "drill",
        help="crash a campaign at every fault site, resume it, and "
        "byte-diff the result against the uninterrupted oracle",
    )
    drill.add_argument(
        "--suite",
        default="drill",
        help="bench suite to drill (default: drill — a case hard enough "
        "that every fault site is reached)",
    )
    drill.add_argument(
        "--seeds",
        type=int,
        default=1,
        metavar="N",
        help="number of seeds (0..N-1) per case (default: 1)",
    )
    drill.add_argument(
        "--occurrences",
        default="1,3",
        metavar="LIST",
        help="comma list of site occurrences to kill at; 1 exercises the "
        "no-snapshot-yet cold restart, later values the snapshot resume "
        "(default: 1,3 — on the drill suite every site fires at both)",
    )
    drill.add_argument(
        "--workdir",
        default="drill-workdir",
        metavar="DIR",
        help="directory for per-scenario checkpoints and cache stores, "
        "kept for inspection (default: drill-workdir)",
    )
    drill.add_argument(
        "--skip-worker-kill",
        action="store_true",
        help="skip the multi-process scenarios that SIGKILL a sharded "
        "worker mid-run and resume its shard (default: run them after "
        "the in-process fault sites)",
    )
    add_logging_flags(drill)
    drill.set_defaults(func=_cmd_drill)

    sites = subparsers.add_parser(
        "sites", help="list the registered fault sites"
    )
    add_logging_flags(sites)
    sites.set_defaults(func=_cmd_sites)

    args = parser.parse_args(argv)
    configure_cli_logging(quiet=args.quiet, verbose=args.verbose)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
