"""Kill-and-resume drill: crash a campaign at every fault site, resume, diff.

The drill is the end-to-end proof behind the crash-safety story.  For each
bench case it first runs an uninterrupted **oracle** campaign and
fingerprints it (per-seed trajectories, best-vector bytes, evaluation
accounting, cache-content digest — the same
:func:`repro.analysis.determinism.fingerprint_outcome` bytes the
determinism auditor gates on).  Then, for every registered fault site and
each requested occurrence, it arms a deterministic
:class:`~repro.resilience.faults.FaultPlan`, runs a campaign with
checkpointing *and* a persistent evaluation-cache store until the injected
fault kills it, builds a fresh campaign over the same on-disk state —
repairing the cache store's torn tail where the fault left one — resumes
from the latest snapshot, and byte-diffs the finished run against the
oracle.

What "byte-identical" means per scenario:

* When the crashed run had completed at least one checkpoint, the resumed
  run restores the full campaign state (cache content *and* hit/miss
  accounting included), so the entire fingerprint must match the oracle.
* When the fault struck before the first checkpoint, the resumed run
  cold-starts against the persistent store's surviving pairs — its
  trajectories, best vectors and final cache digest must still match the
  oracle bit for bit, but its hit/miss counters legitimately differ (disk
  pairs hit where the oracle computed), so those are excluded from the
  comparison for that scenario only.

A plan whose site is never reached (e.g. ``optimizer.refit`` under a
surrogate-free optimizer) completes normally and is compared directly —
reported as unfired, still required to match.

The **worker-kill** scenarios (:func:`drill_worker_kill`) extend the same
proof across process boundaries: a sharded run
(:class:`~repro.shard.ShardedExecutor`) has one worker SIGKILLed — a real
``os.kill``, not an exception — right before a checkpoint write, the
parent surfaces the dead worker's shard identity, and a resumed executor
continues that shard from its surviving snapshot.  The finished state must
match the in-process sequential oracle in full: per-shard campaigns keep
their own counters, so even the hit/miss accounting is exact.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.resilience.faults import (
    FaultPlan,
    InjectedFault,
    inject,
    registered_fault_sites,
)

#: Counter fields that legitimately differ when a run cold-starts against
#: a warm persistent store instead of restoring a snapshot.
_COUNTER_FIELDS = ("engine_calls", "cache_hits", "cache_misses")


@dataclass(frozen=True)
class DrillOutcome:
    """One (case, site, occurrence) kill-and-resume scenario's verdict."""

    case: str
    site: str
    occurrence: int
    #: Whether the armed fault actually fired (its site was reached).
    fired: bool
    #: Round the resumed campaign restored from (``None``: cold-started).
    resumed_from_round: Optional[int]
    #: Bytes the cache store trimmed repairing a torn tail on reopen.
    repaired_bytes: int
    identical: bool
    #: Pointer to the first differing field when the diff failed.
    divergence: Optional[str] = None

    def format(self) -> str:
        status = "OK  " if self.identical else "DIFF"
        if not self.fired:
            how = "site never reached, ran to completion"
        elif self.resumed_from_round is not None:
            how = f"fired, resumed from round {self.resumed_from_round}"
        else:
            how = "fired before first checkpoint, cold-started on the store"
        if self.repaired_bytes:
            how += f", repaired {self.repaired_bytes} B torn tail"
        line = f"{status} {self.site} x{self.occurrence}: {how}"
        if self.divergence:
            line += f"\n       first divergence: {self.divergence}"
        return line


@dataclass(frozen=True)
class DrillReport:
    """All scenarios of a drill run."""

    suite: str
    seeds: Tuple[int, ...]
    occurrences: Tuple[int, ...]
    outcomes: Tuple[DrillOutcome, ...]

    @property
    def ok(self) -> bool:
        return all(outcome.identical for outcome in self.outcomes)

    @property
    def fired_count(self) -> int:
        return sum(outcome.fired for outcome in self.outcomes)

    def format(self) -> str:
        sites = list(registered_fault_sites())
        if any(outcome.site == "worker.kill" for outcome in self.outcomes):
            sites.append("worker.kill")
        lines = [
            f"kill-and-resume drill: suite {self.suite!r}, seeds "
            f"{list(self.seeds)}, occurrences {list(self.occurrences)}, "
            f"sites {sites}"
        ]
        by_case: Dict[str, List[DrillOutcome]] = {}
        for outcome in self.outcomes:
            by_case.setdefault(outcome.case, []).append(outcome)
        for case, outcomes in by_case.items():
            lines.append(f"{case}:")
            lines.extend("  " + outcome.format() for outcome in outcomes)
        verdict = (
            f"all {len(self.outcomes)} resumed runs byte-identical to the "
            f"oracle ({self.fired_count} faults fired)"
            if self.ok
            else "RESUME DIVERGENCE DETECTED"
        )
        lines.append(verdict)
        return "\n".join(lines)


def _strip_counters(fingerprint: Dict[str, Any]) -> Dict[str, Any]:
    """The fingerprint minus cache accounting (deep-copied via JSON)."""
    stripped = json.loads(json.dumps(fingerprint))
    for field in _COUNTER_FIELDS:
        stripped.pop(field, None)
    for record in stripped["per_seed"]:
        for field in _COUNTER_FIELDS:
            record.pop(field, None)
    return stripped


def _compare(
    oracle: Dict[str, Any], resumed: Dict[str, Any], full: bool
) -> Tuple[bool, Optional[str]]:
    from repro.analysis.determinism import _first_divergence

    left, right = (
        (oracle, resumed) if full else (_strip_counters(oracle), _strip_counters(resumed))
    )
    left_bytes = json.dumps(left, sort_keys=True).encode("utf-8")
    right_bytes = json.dumps(right, sort_keys=True).encode("utf-8")
    if left_bytes == right_bytes:
        return True, None
    return False, _first_divergence(left, right)


def drill_case(
    case: Any,
    seeds: Sequence[int],
    occurrences: Sequence[int],
    workdir: str,
) -> List[DrillOutcome]:
    """Run every (site, occurrence) kill-and-resume scenario for one case."""
    # Imported lazily (with the bench/search stack) so repro.resilience's
    # leaf modules stay importable without it.
    from repro.analysis.determinism import fingerprint_outcome

    seeds = [int(seed) for seed in seeds]
    oracle_campaign = case.build_campaign(seeds)
    oracle_outcome = oracle_campaign.run()
    oracle = fingerprint_outcome(
        oracle_outcome, oracle_campaign.cache.state_digest(), seeds
    )
    outcomes: List[DrillOutcome] = []
    for site in registered_fault_sites():
        for occurrence in occurrences:
            scenario = f"{site.replace('.', '-')}-occ{occurrence}"
            scenario_dir = os.path.join(workdir, case.slug, scenario)
            checkpoint_dir = os.path.join(scenario_dir, "checkpoints")
            cache_path = os.path.join(scenario_dir, "cache.evc")
            os.makedirs(scenario_dir, exist_ok=True)
            plan = FaultPlan(site, occurrence=occurrence)
            campaign = case.build_campaign(seeds, cache_path=cache_path)
            outcome = None
            try:
                with inject(plan):
                    outcome = campaign.run(checkpoint_dir=checkpoint_dir)
            except InjectedFault:
                pass
            finally:
                campaign.close()
            repaired_bytes = 0
            if plan.fired:
                resumed = case.build_campaign(seeds, cache_path=cache_path)
                repaired_bytes = resumed.cache.repaired_bytes
                try:
                    outcome = resumed.run(resume_from=checkpoint_dir)
                    digest = resumed.cache.state_digest()
                finally:
                    resumed.close()
            else:
                digest = campaign.cache.state_digest()
            fingerprint = fingerprint_outcome(outcome, digest, seeds)
            # Restoring a snapshot carries the cache content and accounting
            # exactly, so those scenarios must match the oracle in full; a
            # cold-start against the surviving store hits pairs the oracle
            # computed, so only its counters are excused.
            full = not plan.fired or outcome.resumed_from_round is not None
            identical, divergence = _compare(oracle, fingerprint, full)
            outcomes.append(
                DrillOutcome(
                    case=case.name,
                    site=site,
                    occurrence=occurrence,
                    fired=plan.fired,
                    resumed_from_round=outcome.resumed_from_round,
                    repaired_bytes=repaired_bytes,
                    identical=identical,
                    divergence=divergence,
                )
            )
    return outcomes


def drill_worker_kill(
    case: Any,
    seeds: Sequence[int],
    occurrences: Sequence[int],
    workdir: str,
) -> List[DrillOutcome]:
    """SIGKILL a sharded worker mid-run, resume its shard, diff the result.

    For each occurrence ``N`` the scenario arms a kill plan on shard 0:
    its worker process dies on a real ``SIGKILL`` right before its ``N``-th
    checkpoint write (so the shard's latest surviving snapshot is round
    ``N - 1``; at ``N = 1`` the shard cold-restarts).  The parent must
    surface the failure as a :class:`~repro.shard.ShardWorkerError` naming
    the dead worker's unfinished shard, and a second executor with
    ``resume=True`` must finish from the surviving per-shard checkpoints —
    byte-identical **in full** to the in-process sequential oracle,
    counters included, because every shard owns its own campaign state.
    """
    from repro.analysis.determinism import fingerprint_outcome
    from repro.shard import ShardedExecutor, ShardWorkerError, run_sequential

    seeds = [int(seed) for seed in seeds]
    # Spawned kill plans need at least two shards (the in-process fast
    # path refuses them — it would SIGKILL the parent).
    while len(seeds) < 2:
        seeds.append(max(seeds) + 1 if seeds else 0)
    specs = case.shard_specs(seeds)
    oracle_outcome = run_sequential(specs)
    oracle = fingerprint_outcome(oracle_outcome, oracle_outcome.cache_digest, seeds)
    outcomes: List[DrillOutcome] = []
    for occurrence in occurrences:
        scenario_dir = os.path.join(
            workdir, case.slug, f"worker-kill-occ{occurrence}"
        )
        checkpoint_dir = os.path.join(scenario_dir, "checkpoints")
        os.makedirs(scenario_dir, exist_ok=True)
        fired = True
        try:
            outcome = ShardedExecutor(
                specs,
                workers=2,
                checkpoint_dir=checkpoint_dir,
                collect_cache_content=True,
                kill_plans={0: occurrence},
            ).run()
            # Occurrence beyond the shard's checkpoint count: the plan
            # never fires and the run completes normally — compared
            # directly, like an unreached fault site.
            fired = False
        except ShardWorkerError:
            outcome = ShardedExecutor(
                specs,
                workers=2,
                checkpoint_dir=checkpoint_dir,
                resume=True,
                collect_cache_content=True,
            ).run()
        fingerprint = fingerprint_outcome(outcome, outcome.cache_digest, seeds)
        identical, divergence = _compare(oracle, fingerprint, full=True)
        outcomes.append(
            DrillOutcome(
                case=case.name,
                site="worker.kill",
                occurrence=occurrence,
                fired=fired,
                resumed_from_round=(
                    outcome.shards[0].resumed_from_round if fired else None
                ),
                repaired_bytes=0,
                identical=identical,
                divergence=divergence,
            )
        )
    return outcomes


def drill_suite(
    suite: str = "drill",
    seeds: Sequence[int] = (0,),
    occurrences: Sequence[int] = (1, 3),
    workdir: str = "drill-workdir",
    worker_kill: bool = True,
) -> DrillReport:
    """Drill every case of a bench suite; see :class:`DrillReport`.

    ``worker_kill`` appends the multi-process SIGKILL scenarios
    (:func:`drill_worker_kill`) after the in-process fault sites.
    """
    from repro.bench.registry import get_suite

    outcomes: List[DrillOutcome] = []
    for case in get_suite(suite):
        outcomes.extend(drill_case(case, seeds, occurrences, workdir))
        if worker_kill:
            outcomes.extend(drill_worker_kill(case, seeds, occurrences, workdir))
    return DrillReport(
        suite=suite,
        seeds=tuple(int(seed) for seed in seeds),
        occurrences=tuple(int(occurrence) for occurrence in occurrences),
        outcomes=tuple(outcomes),
    )
