"""Crash safety for long-lived campaigns: snapshots, persistence, drills.

The package has four pieces:

* :mod:`repro.resilience.atomic` — the shared write-temp + fsync +
  ``os.replace`` helper every committed artifact goes through;
* :mod:`repro.resilience.snapshot` — versioned, CRC-checked campaign
  snapshots (:func:`save_snapshot` / :func:`load_snapshot`);
* :mod:`repro.resilience.store` — the append-only on-disk store behind
  ``EvaluationCache(persist_path=...)``, with torn-tail repair on reopen;
* :mod:`repro.resilience.faults` — deterministic fault injection at named
  engine sites, driving the kill-and-resume drill
  (``python -m repro.resilience drill``, :mod:`repro.resilience.drill`).

The drill module is imported lazily (by ``__main__``) — it pulls in the
bench stack, which the leaf helpers here must stay independent of.
"""

from repro.resilience.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    fsync_replace,
)
from repro.resilience.faults import (
    FaultPlan,
    InjectedFault,
    fault_point,
    inject,
    register_fault_site,
    registered_fault_sites,
)
from repro.resilience.snapshot import (
    SNAPSHOT_FORMAT,
    SnapshotError,
    load_snapshot,
    save_snapshot,
)
from repro.resilience.store import CacheStore, StoreError

__all__ = [
    "CacheStore",
    "FaultPlan",
    "InjectedFault",
    "SNAPSHOT_FORMAT",
    "SnapshotError",
    "StoreError",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "fault_point",
    "fsync_replace",
    "inject",
    "load_snapshot",
    "register_fault_site",
    "registered_fault_sites",
    "save_snapshot",
]
