"""Benchmark runner: execute suites, aggregate, and emit BENCH JSON.

Every case runs the same progressive trust-region search users get from
:func:`repro.search.sizing.size_problem`, once per seed, and records the
numbers the ROADMAP tracks per PR:

* **success rate** — fraction of seeds whose winner passes every spec at
  every corner of the case's corner set;
* **median evaluations-to-feasible** — median (over successful seeds) of
  true-evaluator calls consumed, the paper's efficiency metric;
* **surrogate-refit seconds** — wall time inside the incremental MLP refits;
* **wall seconds** — end-to-end search time.

The JSON artifact schema is ``repro.bench/v3`` (see README "Benchmarking").
Relative to v2 it adds the ``corner_engine`` (stacked corner tensorization
vs the looped oracle) at the top level and per case, ``eval_seconds`` — wall
time inside the true corner evaluator — next to ``refit_seconds``, and the
``failing_corners`` names per seed so an unsolved run says *which* corners
sank it:

.. code-block:: json

    {
      "schema": "repro.bench/v3",
      "suite": "smoke",
      "seeds": [0, 1, 2],
      "backend": "fused",
      "corner_engine": "stacked",
      "cases": [
        {
          "name": "two_stage_opamp/nominal/nine",
          "topology": "two_stage_opamp", "tier": "nominal",
          "corner_set": "nine", "design_dims": 8, "backend": "fused",
          "corner_engine": "stacked",
          "success_rate": 1.0,
          "median_evaluations_to_feasible": 113,
          "mean_refit_seconds": 0.04, "mean_eval_seconds": 0.004,
          "mean_wall_seconds": 0.06,
          "per_seed": [{"seed": 0, "solved": true, "evaluations": 169,
                        "refit_seconds": 0.05, "eval_seconds": 0.004,
                        "wall_seconds": 0.07, "phases": 2,
                        "failing_corners": [],
                        "best_sizing": {"w1": 4.6e-05}}]
        }
      ],
      "totals": {"cases": 4, "solved_fraction": 1.0, "wall_seconds": 0.9}
    }
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from statistics import median
from typing import Any, Dict, List, Optional, Sequence

from repro.bench.registry import BenchCase, get_suite
from repro.circuits.topologies import get_topology
from repro.search.progressive import ProgressiveConfig
from repro.search.sizing import size_problem

SCHEMA = "repro.bench/v3"


def run_case(
    case: BenchCase,
    seeds: Sequence[int],
    backend: Optional[str] = None,
    corner_engine: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one benchmark case across seeds and aggregate the statistics.

    ``backend`` overrides the surrogate-training backend of every seed's
    config (``None`` keeps the case default, i.e. the library default);
    ``corner_engine`` likewise selects stacked corner evaluation vs the
    looped oracle.
    """
    problem_cls = get_topology(case.topology)
    design_dims = len(problem_cls.VARIABLE_NAMES)
    per_seed: List[Dict[str, Any]] = []
    effective_backend = backend if backend is not None else case.config(0).backend
    # Derived, not duplicated: with no override, size_problem defers to the
    # ProgressiveConfig default, so report exactly that.
    effective_engine = (
        corner_engine if corner_engine is not None else ProgressiveConfig().corner_engine
    )
    for seed in seeds:
        config = case.config(seed)
        if backend is not None:
            config = replace(config, backend=backend)
        started = time.perf_counter()
        result = size_problem(
            case.topology,
            technology=case.technology,
            load_cap=case.load_cap,
            tier=case.tier,
            corners=case.corners(),
            config=config,
            max_phases=case.max_phases,
            corner_engine=corner_engine,
        )
        wall = time.perf_counter() - started
        per_seed.append(
            {
                "seed": int(seed),
                "solved": bool(result.solved_all_corners),
                "evaluations": int(result.evaluations),
                "refit_seconds": round(result.refit_seconds, 6),
                "eval_seconds": round(result.eval_seconds, 6),
                "wall_seconds": round(wall, 6),
                "phases": len(result.phase_results),
                "failing_corners": [
                    corner.name for corner in result.failing_corners()
                ],
                "best_sizing": {k: float(v) for k, v in result.best_sizing.items()},
            }
        )

    solved = [record for record in per_seed if record["solved"]]

    def mean_of(key: str) -> float:
        if not per_seed:
            return 0.0
        return round(sum(record[key] for record in per_seed) / len(per_seed), 6)

    return {
        "name": case.name,
        "topology": case.topology,
        "tier": case.tier,
        "corner_set": case.corner_set,
        "technology": case.technology,
        "design_dims": design_dims,
        "backend": effective_backend,
        "corner_engine": effective_engine,
        "success_rate": len(solved) / len(per_seed) if per_seed else 0.0,
        "median_evaluations_to_feasible": (
            int(median(record["evaluations"] for record in solved)) if solved else None
        ),
        "mean_refit_seconds": mean_of("refit_seconds"),
        "mean_eval_seconds": mean_of("eval_seconds"),
        "mean_wall_seconds": mean_of("wall_seconds"),
        "per_seed": per_seed,
    }


def run_suite(
    suite: str = "smoke",
    seeds: Sequence[int] = (0, 1, 2),
    backend: Optional[str] = None,
    corner_engine: Optional[str] = None,
) -> Dict[str, Any]:
    """Run every case of a suite; returns the ``repro.bench/v3`` payload."""
    cases = get_suite(suite)
    started = time.perf_counter()
    case_results = [
        run_case(case, seeds, backend=backend, corner_engine=corner_engine)
        for case in cases
    ]
    wall = time.perf_counter() - started
    runs = [record for result in case_results for record in result["per_seed"]]
    case_backends = {result["backend"] for result in case_results}
    case_engines = {result["corner_engine"] for result in case_results}
    return {
        "schema": SCHEMA,
        "suite": suite,
        "seeds": [int(seed) for seed in seeds],
        "backend": next(iter(case_backends)) if len(case_backends) == 1 else "mixed",
        "corner_engine": (
            next(iter(case_engines)) if len(case_engines) == 1 else "mixed"
        ),
        "cases": case_results,
        "totals": {
            "cases": len(case_results),
            "solved_fraction": (
                sum(record["solved"] for record in runs) / len(runs) if runs else 0.0
            ),
            "wall_seconds": round(wall, 6),
        },
    }


def write_bench_json(payload: Dict[str, Any], path: str) -> None:
    """Write the payload as a stable, diff-friendly JSON artifact."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


#: The cross-check speed guard passes while the fused refit stays under
#: this fraction of the autodiff refit.  The real ratio is ~0.4 (fused is
#: ~2.5-3x faster end to end), so 0.75 keeps the guard meaningful while
#: absorbing scheduler stalls on shared CI runners — the refit totals are
#: only tens of milliseconds per run.
CROSS_CHECK_MAX_RATIO = 0.75


def cross_check(suite: str = "tiny", seed: int = 0) -> int:
    """Fused-vs-autodiff guard on one case; returns a process exit code.

    Runs the first case of ``suite`` once per backend at the same seed and
    checks two invariants:

    * **parity** — the backends are bit-identical per training step, so the
      search trajectories must agree exactly (same evaluations, same
      winning sizing);
    * **speed** — the fused refit must stay under
      ``CROSS_CHECK_MAX_RATIO`` of the autodiff refit on the same
      trajectory.  The comparison is relative, on the same machine and the
      same case, so the guard does not flake with host speed.  The
      autodiff run goes first so the fused measurement never pays the
      process warm-up.
    """
    case = get_suite(suite)[0]
    autodiff = run_case(case, seeds=[seed], backend="autodiff")["per_seed"][0]
    fused = run_case(case, seeds=[seed], backend="fused")["per_seed"][0]
    parity = (
        fused["best_sizing"] == autodiff["best_sizing"]
        and fused["evaluations"] == autodiff["evaluations"]
        and fused["solved"] == autodiff["solved"]
    )
    faster = fused["refit_seconds"] <= CROSS_CHECK_MAX_RATIO * autodiff["refit_seconds"]
    print(
        f"cross-check {case.name} seed {seed}: "
        f"fused refit {fused['refit_seconds']:.3f}s "
        f"vs autodiff {autodiff['refit_seconds']:.3f}s"
    )
    if not parity:
        print(
            "FAIL: backends diverged — "
            f"evaluations {fused['evaluations']} vs {autodiff['evaluations']}, "
            f"solved {fused['solved']} vs {autodiff['solved']}"
        )
    if not faster:
        print(
            f"FAIL: fused refit above {CROSS_CHECK_MAX_RATIO:.2f}x "
            "of the autodiff reference"
        )
    if parity and faster:
        print(
            f"parity OK, fused refit <= {CROSS_CHECK_MAX_RATIO:.2f}x autodiff refit"
        )
    return 0 if parity and faster else 1


def format_summary(payload: Dict[str, Any]) -> str:
    """Human-readable one-line-per-case table for CLI output."""
    lines = [
        f"suite {payload['suite']!r} | seeds {payload['seeds']} "
        f"| backend {payload['backend']} "
        f"| corners {payload['corner_engine']} "
        f"| {payload['totals']['wall_seconds']:.1f} s total",
        f"{'case':42s} {'dims':>4s} {'succ':>6s} {'evals':>6s} "
        f"{'refit_s':>8s} {'eval_s':>8s} {'wall_s':>7s}",
    ]
    for case in payload["cases"]:
        evals = case["median_evaluations_to_feasible"]
        lines.append(
            f"{case['name']:42s} {case['design_dims']:>4d} "
            f"{case['success_rate']:>6.2f} "
            f"{(str(evals) if evals is not None else '-'):>6s} "
            f"{case['mean_refit_seconds']:>8.3f} "
            f"{case['mean_eval_seconds']:>8.3f} {case['mean_wall_seconds']:>7.2f}"
        )
    totals = payload["totals"]
    lines.append(
        f"overall: {totals['solved_fraction'] * 100.0:.0f}% of runs solved "
        f"across {totals['cases']} cases"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``python -m repro.bench --suite smoke --seeds 3``."""
    import argparse

    from repro.bench.registry import available_suites

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run a sizing benchmark suite and write a BENCH JSON artifact.",
    )
    parser.add_argument(
        "--suite",
        default="smoke",
        choices=available_suites(),
        help="benchmark suite to run (default: smoke)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        metavar="N",
        help="number of seeds (0..N-1) per case (default: 3)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="JSON artifact path (default: BENCH_<suite>.json)",
    )
    parser.add_argument(
        "--fail-under",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="exit nonzero when the solved fraction falls below this "
        "threshold (default: 0.0, i.e. never fail; CI gates pass 1.0)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=("fused", "autodiff"),
        help="surrogate training backend override (default: the library "
        "default, fused; autodiff is the reference oracle)",
    )
    parser.add_argument(
        "--corner-engine",
        default=None,
        choices=("stacked", "looped"),
        help="multi-corner evaluation engine override (default: the library "
        "default, stacked; looped is the per-corner parity oracle)",
    )
    parser.add_argument(
        "--cross-check",
        action="store_true",
        help="instead of running the suite, run its first case once per "
        "backend and verify trajectory parity plus fused refit <= autodiff "
        "refit (the CI backend guard)",
    )
    args = parser.parse_args(argv)

    if args.cross_check:
        # The guard has its own fixed protocol (one seed, both backends, no
        # artifact); reject flags it would silently ignore.
        dropped = [
            flag
            for flag, value in (
                ("--seeds", args.seeds),
                ("--output", args.output),
                ("--backend", args.backend),
                ("--corner-engine", args.corner_engine),
            )
            if value is not None
        ]
        if args.fail_under != 0.0:
            dropped.append("--fail-under")
        if dropped:
            parser.error(f"--cross-check does not accept {', '.join(dropped)}")
        return cross_check(args.suite)

    seeds = 3 if args.seeds is None else args.seeds
    if seeds < 1:
        parser.error("--seeds must be at least 1")
    if not 0.0 <= args.fail_under <= 1.0:
        parser.error("--fail-under must be within [0, 1]")

    payload = run_suite(
        args.suite,
        seeds=range(seeds),
        backend=args.backend,
        corner_engine=args.corner_engine,
    )
    output = args.output or f"BENCH_{args.suite}.json"
    write_bench_json(payload, output)
    print(format_summary(payload))
    print(f"wrote {output}")
    solved_fraction = payload["totals"]["solved_fraction"]
    if solved_fraction < args.fail_under:
        print(
            f"FAIL: solved fraction {solved_fraction:.2f} "
            f"below --fail-under {args.fail_under:.2f}"
        )
        return 1
    return 0
