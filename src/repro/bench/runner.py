"""Benchmark runner: execute suites, aggregate, and emit BENCH JSON.

Every case runs the same progressive search users get from
:func:`repro.search.sizing.size_problem`, across seeds, and records the
numbers the ROADMAP tracks per PR:

* **success rate** — fraction of seeds whose winner passes every spec at
  every corner of the case's corner set;
* **median evaluations-to-feasible** — median (over successful seeds) of
  true-evaluator calls consumed, the paper's efficiency metric;
* **refit/eval/wall seconds** — surrogate-refit, true-evaluator and
  end-to-end wall time, totalled across the case's seeds.

Execution is the multi-seed vectorized
:class:`~repro.search.campaign.Campaign` by default: all seeds of a case
run in lockstep rounds sharing single stacked ``evaluate_corners`` passes
(far fewer, larger evaluator calls), bit-exact per seed versus
``--execution sequential``, the one-seed-at-a-time oracle path.

The JSON artifact schema is ``repro.bench/v8`` (see README "Benchmarking").
Relative to v7 it adds ``--execution sharded`` — multi-process execution
via :class:`repro.shard.ShardedExecutor`, bit-identical per seed to the
sequential oracle — and with it a per-case ``shard`` block (``null`` for
in-process executions): the worker count, the deterministic seed-to-worker
shard map, and per-worker wall/eval seconds.  v7 added the surrogate-refit
accounting: a per-case ``refit`` block (total ``refit_seconds``, the
number of lockstep rounds that actually refit, how many stacked multi-seed
kernel dispatches ran, and the ``refit_mode``) plus the top-level
``refit_mode``.  v6 added the per-case ``resilience`` block — the round
the campaign resumed from (``--resume``, ``null`` for uninterrupted runs)
and the persistent evaluation-cache accounting (``--cache-dir``: store
path, pairs preloaded from disk, warm/cold hit split, bytes trimmed
repairing a torn tail; ``null`` without a store).  The artifact itself is
written atomically (temp file + fsync + rename), so a crashed run never
leaves a half-written BENCH JSON:

.. code-block:: json

    {
      "schema": "repro.bench/v8",
      "suite": "smoke",
      "seeds": [0, 1, 2],
      "backend": "fused",
      "corner_engine": "stacked",
      "optimizer": "mixed",
      "execution": "campaign",
      "refit_mode": "batched",
      "cases": [
        {
          "name": "two_stage_opamp/nominal/nine",
          "topology": "two_stage_opamp", "tier": "nominal",
          "corner_set": "nine", "design_dims": 8, "backend": "fused",
          "corner_engine": "stacked", "optimizer": "trust_region",
          "execution": "campaign",
          "success_rate": 1.0,
          "median_evaluations_to_feasible": 113,
          "refit_seconds": 0.12, "eval_seconds": 0.01, "wall_seconds": 0.2,
          "eval": {"engine_calls": 31, "rounds": 29,
                   "cache_hits": 27, "cache_misses": 9486},
          "refit": {"refit_seconds": 0.12, "refit_rounds": 26,
                    "batched_kernel_calls": 24, "refit_mode": "batched"},
          "resilience": {"resumed_from_round": null,
                         "cache": {"path": "cache/two_stage.evc",
                                   "preloaded_pairs": 9486,
                                   "warm_hits": 9486, "cold_hits": 27,
                                   "repaired_bytes": 0}},
          "shard": {"workers": 4,
                    "shard_map": {"0": 0, "1": 1, "2": 2},
                    "per_worker": [{"worker": 0, "shards": 1,
                                    "wall_seconds": 0.21,
                                    "eval_seconds": 0.004}]},
          "telemetry": {"spans": {"trust_region.refit":
                                  {"count": 54, "seconds": 0.12}},
                        "events": {"campaign.solved": 3}},
          "per_seed": [{"seed": 0, "solved": true, "evaluations": 169,
                        "phases": 2, "refit_seconds": 0.05,
                        "eval_seconds": 0.004, "cache_hits": 9,
                        "cache_misses": 3162, "engine_calls": 11,
                        "failing_corners": [],
                        "best_sizing": {"w1": 4.6e-05}}]
        }
      ],
      "totals": {"cases": 5, "solved_fraction": 1.0, "wall_seconds": 0.9}
    }
"""

from __future__ import annotations

import logging
import os
from dataclasses import replace
from statistics import median
from typing import Any, Dict, List, Optional, Sequence

from repro.bench.registry import (
    CORNER_SETS,
    BenchCase,
    available_suites,
    get_suite,
)
from repro.circuits.topologies import available_topologies, get_topology
from repro.circuits.topologies.base import SPEC_TIERS
from repro.obs import diff_snapshots, get_tracer, profiled, tracing, tracing_enabled
from repro.obs.logs import add_logging_flags, configure_cli_logging
from repro.resilience import atomic_write_json
from repro.search.optimizer import available_optimizers
from repro.search.progressive import REFIT_MODES, ProgressiveConfig, ProgressiveResult
from repro.search.sizing import size_problem

SCHEMA = "repro.bench/v8"

module_logger = logging.getLogger(__name__)

#: How a case's seeds execute: ``campaign`` batches all seeds through
#: shared vectorized corner passes, ``sequential`` runs one
#: :func:`size_problem` per seed (the bit-exact oracle path), ``sharded``
#: partitions the seeds across spawned worker processes (bit-identical
#: per seed to ``sequential``; see :mod:`repro.shard`).
EXECUTIONS = ("campaign", "sequential", "sharded")

def _per_seed_record(seed: int, result: ProgressiveResult) -> Dict[str, Any]:
    record: Dict[str, Any] = {"seed": int(seed)}
    record.update(result.to_dict())
    record["refit_seconds"] = round(record["refit_seconds"], 6)
    record["eval_seconds"] = round(record["eval_seconds"], 6)
    return record


def _case_telemetry(
    before: Optional[Dict[str, Dict[str, Any]]],
) -> Optional[Dict[str, Any]]:
    """Per-case span/event rollups from the tracer's metrics registry.

    Built as a snapshot *diff* (what this case added on top of ``before``)
    rather than from the trace ring, so the rollup stays exact even when a
    long suite wraps the ring.  ``None`` when the run is not tracing.
    """
    if before is None:
        return None
    delta = diff_snapshots(before, get_tracer().metrics.snapshot())
    spans = {
        name[len("span.") :]: {
            "count": record["count"],
            "seconds": round(record["total"], 6),
        }
        for name, record in delta.items()
        if name.startswith("span.") and record["kind"] == "histogram"
    }
    events = {
        name[len("event.") :]: record["value"]
        for name, record in delta.items()
        if name.startswith("event.") and record["kind"] == "counter"
    }
    return {"spans": spans, "events": events}


def run_case(
    case: BenchCase,
    seeds: Sequence[int],
    backend: Optional[str] = None,
    corner_engine: Optional[str] = None,
    optimizer: Optional[str] = None,
    execution: str = "campaign",
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    cache_dir: Optional[str] = None,
    refit_mode: Optional[str] = None,
    workers: Optional[int] = None,
    worker_trace_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one benchmark case across seeds and aggregate the statistics.

    ``backend``, ``corner_engine``, ``optimizer`` and ``refit_mode``
    override the case's configuration when given (``None`` defers to the
    case, which defers to the library defaults).  ``execution`` selects the
    multi-seed vectorized campaign (default), the sequential per-seed
    oracle, or sharded multi-process execution (``workers`` processes via
    :class:`repro.shard.ShardedExecutor`); all three are bit-exact per
    seed and differ only in evaluator batching and process placement.
    ``refit_mode`` likewise trades dispatch only: ``"batched"`` trains all
    live seeds' surrogate refits through one stacked kernel per round,
    ``"sequential"`` refits inline, bit-identically.

    The resilience options need round boundaries, so they work under the
    campaign and sharded executions but not the sequential oracle.
    ``checkpoint_dir`` snapshots under ``<dir>/<case-slug>/`` after every
    round (sharded: one subdirectory per shard); ``resume=True`` restores
    from those snapshots first (a resumed run is bit-identical to an
    uninterrupted one); ``cache_dir`` persists the evaluation cache at
    ``<dir>/<case-slug>.evc`` for cross-process warm starts (sharded:
    workers warm-load the master read-only and the parent merges their
    private shard stores back after the run).  ``worker_trace_dir``
    (sharded only) gives each worker a ``worker-K.jsonl`` trace sink under
    ``<dir>/<case-slug>/``.
    """
    if execution not in EXECUTIONS:
        raise ValueError(
            f"unknown execution {execution!r}; available: {', '.join(EXECUTIONS)}"
        )
    if execution == "sequential" and (checkpoint_dir or resume or cache_dir):
        raise ValueError(
            "checkpoint/resume/cache-dir need the campaign or sharded "
            "execution; the sequential oracle path has no round boundaries "
            "to snapshot at"
        )
    if execution != "sharded" and (workers is not None or worker_trace_dir):
        raise ValueError("workers/worker_trace_dir need the sharded execution")
    if resume and not checkpoint_dir:
        raise ValueError("resume=True needs checkpoint_dir")
    problem_cls = get_topology(case.topology)
    design_dims = len(problem_cls.VARIABLE_NAMES)
    seeds = [int(seed) for seed in seeds]
    effective_backend = backend if backend is not None else case.config(0).backend
    # Derived, not duplicated: with no override, the campaign defers to the
    # ProgressiveConfig default, so report exactly that.
    effective_engine = (
        corner_engine if corner_engine is not None else ProgressiveConfig().corner_engine
    )
    effective_optimizer = optimizer if optimizer is not None else case.optimizer
    effective_refit_mode = (
        refit_mode if refit_mode is not None else ProgressiveConfig().refit_mode
    )

    module_logger.info(
        "case %s: %d seed(s), %s execution", case.name, len(seeds), execution
    )
    metrics_before = get_tracer().metrics.snapshot() if tracing_enabled() else None
    with profiled(
        "bench.run_case", case=case.name, topology=case.topology, tier=case.tier
    ) as wall_timer:
        if execution == "campaign":
            cache_path = (
                os.path.join(cache_dir, f"{case.slug}.evc") if cache_dir else None
            )
            if cache_dir:
                os.makedirs(cache_dir, exist_ok=True)
            case_checkpoint = (
                os.path.join(checkpoint_dir, case.slug) if checkpoint_dir else None
            )
            campaign = case.build_campaign(
                seeds,
                backend=backend,
                corner_engine=corner_engine,
                optimizer=effective_optimizer,
                cache_path=cache_path,
                refit_mode=refit_mode,
            )
            try:
                outcome = campaign.run(
                    checkpoint_dir=case_checkpoint,
                    resume_from=case_checkpoint if resume else None,
                )
                cache = campaign.cache
                resilience: Dict[str, Any] = {
                    "resumed_from_round": outcome.resumed_from_round,
                    "cache": (
                        {
                            "path": cache_path,
                            "preloaded_pairs": cache.preloaded_pairs,
                            "warm_hits": cache.warm_hits,
                            "cold_hits": cache.cold_hits,
                            "repaired_bytes": cache.repaired_bytes,
                        }
                        if cache_path
                        else None
                    ),
                }
            finally:
                campaign.close()
            results = outcome.results
            eval_block: Dict[str, Any] = {
                "engine_calls": outcome.engine_calls,
                "rounds": outcome.rounds,
                "cache_hits": outcome.cache_hits,
                "cache_misses": outcome.cache_misses,
            }
            eval_seconds = outcome.eval_seconds
            refit_counts: Dict[str, Any] = {
                "refit_rounds": outcome.refit_rounds,
                "batched_kernel_calls": outcome.batched_kernel_calls,
            }
            shard_block: Optional[Dict[str, Any]] = None
        elif execution == "sharded":
            # Imported lazily: the bench registry must stay importable
            # without pulling the executor (and its topology imports) in.
            from repro.shard import ShardedExecutor

            cache_path = (
                os.path.join(cache_dir, f"{case.slug}.evc") if cache_dir else None
            )
            if cache_dir:
                os.makedirs(cache_dir, exist_ok=True)
            specs = case.shard_specs(
                seeds,
                backend=backend,
                corner_engine=corner_engine,
                optimizer=effective_optimizer,
                refit_mode=refit_mode,
            )
            executor = ShardedExecutor(
                specs,
                workers=workers,
                cache_path=cache_path,
                checkpoint_dir=(
                    os.path.join(checkpoint_dir, case.slug) if checkpoint_dir else None
                ),
                resume=resume,
                trace_dir=(
                    os.path.join(worker_trace_dir, case.slug)
                    if worker_trace_dir
                    else None
                ),
            )
            outcome = executor.run()
            results = outcome.results
            eval_block = {
                "engine_calls": outcome.engine_calls,
                "rounds": outcome.rounds,
                "cache_hits": outcome.cache_hits,
                "cache_misses": outcome.cache_misses,
            }
            eval_seconds = outcome.eval_seconds
            refit_counts = {
                "refit_rounds": outcome.refit_rounds,
                "batched_kernel_calls": outcome.batched_kernel_calls,
            }
            resilience = {
                # Per-shard resume rounds live in the shard block's domain;
                # the campaign-level field stays None unless every shard
                # resumed (then the earliest round is the honest summary).
                "resumed_from_round": (
                    min(shard.resumed_from_round for shard in outcome.shards)
                    if all(
                        shard.resumed_from_round is not None
                        for shard in outcome.shards
                    )
                    else None
                ),
                "cache": (
                    {
                        "path": cache_path,
                        "preloaded_pairs": sum(
                            shard.cache_counters["preloaded_pairs"]
                            for shard in outcome.shards
                        ),
                        "warm_hits": sum(
                            shard.cache_counters["warm_hits"]
                            for shard in outcome.shards
                        ),
                        "cold_hits": sum(
                            shard.cache_counters["cold_hits"]
                            for shard in outcome.shards
                        ),
                        "repaired_bytes": sum(
                            shard.cache_counters["repaired_bytes"]
                            for shard in outcome.shards
                        ),
                    }
                    if cache_path
                    else None
                ),
            }
            shard_block = {
                "workers": outcome.workers,
                "shard_map": {
                    str(specs[index].seed): worker
                    for index, worker in outcome.shard_map.items()
                },
                "per_worker": [
                    {
                        "worker": record["worker"],
                        "shards": record["shards"],
                        "wall_seconds": round(record["wall_seconds"], 6),
                        "eval_seconds": round(record["eval_seconds"], 6),
                    }
                    for record in outcome.per_worker
                ],
            }
        else:
            results = []
            for seed in seeds:
                config = case.config(seed)
                if backend is not None:
                    config = replace(config, backend=backend)
                results.append(
                    size_problem(
                        case.topology,
                        technology=case.technology,
                        load_cap=case.load_cap,
                        tier=case.tier,
                        corners=case.corners(),
                        config=config,
                        max_phases=case.max_phases,
                        corner_engine=corner_engine,
                        optimizer=effective_optimizer,
                        refit_mode=refit_mode,
                    )
                )
            eval_block = {
                "engine_calls": sum(result.engine_calls for result in results),
                "rounds": None,
                "cache_hits": sum(result.cache_hits for result in results),
                "cache_misses": sum(result.cache_misses for result in results),
            }
            eval_seconds = sum(result.eval_seconds for result in results)
            resilience = {"resumed_from_round": None, "cache": None}
            # Round-level counters are campaign-wide quantities; the
            # one-seed-at-a-time oracle path has no shared rounds to count.
            refit_counts = {"refit_rounds": None, "batched_kernel_calls": None}
            shard_block = None
    wall = wall_timer.seconds

    per_seed = [_per_seed_record(seed, result) for seed, result in zip(seeds, results)]
    solved = [record for record in per_seed if record["solved"]]
    return {
        "name": case.name,
        "topology": case.topology,
        "tier": case.tier,
        "corner_set": case.corner_set,
        "technology": case.technology,
        "design_dims": design_dims,
        "backend": effective_backend,
        "corner_engine": effective_engine,
        "optimizer": effective_optimizer,
        "execution": execution,
        "success_rate": len(solved) / len(per_seed) if per_seed else 0.0,
        "median_evaluations_to_feasible": (
            int(median(record["evaluations"] for record in solved)) if solved else None
        ),
        "refit_seconds": round(sum(r["refit_seconds"] for r in per_seed), 6),
        "eval_seconds": round(eval_seconds, 6),
        "wall_seconds": round(wall, 6),
        "eval": eval_block,
        "refit": {
            "refit_seconds": round(sum(r["refit_seconds"] for r in per_seed), 6),
            "refit_rounds": refit_counts["refit_rounds"],
            "batched_kernel_calls": refit_counts["batched_kernel_calls"],
            "refit_mode": effective_refit_mode,
        },
        "resilience": resilience,
        "shard": shard_block,
        "telemetry": _case_telemetry(metrics_before),
        "per_seed": per_seed,
    }


def _uniform(values: Sequence[str]) -> str:
    unique = set(values)
    return next(iter(unique)) if len(unique) == 1 else "mixed"


def run_suite(
    suite: str = "smoke",
    seeds: Sequence[int] = (0, 1, 2),
    backend: Optional[str] = None,
    corner_engine: Optional[str] = None,
    optimizer: Optional[str] = None,
    execution: str = "campaign",
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    cache_dir: Optional[str] = None,
    refit_mode: Optional[str] = None,
    workers: Optional[int] = None,
    worker_trace_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run every case of a suite; returns the ``repro.bench/v8`` payload."""
    cases = get_suite(suite)
    module_logger.info("suite %r: %d case(s)", suite, len(cases))
    with profiled("bench.run_suite", suite=suite, cases=len(cases)) as wall_timer:
        case_results = [
            run_case(
                case,
                seeds,
                backend=backend,
                corner_engine=corner_engine,
                optimizer=optimizer,
                execution=execution,
                checkpoint_dir=checkpoint_dir,
                resume=resume,
                cache_dir=cache_dir,
                refit_mode=refit_mode,
                workers=workers,
                worker_trace_dir=worker_trace_dir,
            )
            for case in cases
        ]
    wall = wall_timer.seconds
    runs = [record for result in case_results for record in result["per_seed"]]
    return {
        "schema": SCHEMA,
        "suite": suite,
        "seeds": [int(seed) for seed in seeds],
        "backend": _uniform([result["backend"] for result in case_results]),
        "corner_engine": _uniform([result["corner_engine"] for result in case_results]),
        "optimizer": _uniform([result["optimizer"] for result in case_results]),
        "execution": execution,
        "refit_mode": _uniform(
            [result["refit"]["refit_mode"] for result in case_results]
        ),
        "cases": case_results,
        "totals": {
            "cases": len(case_results),
            "solved_fraction": (
                sum(record["solved"] for record in runs) / len(runs) if runs else 0.0
            ),
            "wall_seconds": round(wall, 6),
        },
    }


def write_bench_json(payload: Dict[str, Any], path: str) -> None:
    """Write the payload as a stable, diff-friendly JSON artifact.

    Atomic (temp file + fsync + rename): readers — and the next run's
    baseline diff — only ever see a complete artifact, even if the writer
    dies mid-dump.
    """
    atomic_write_json(path, payload)


#: The cross-check speed guard passes while the fused refit stays under
#: this fraction of the autodiff refit.  The real ratio is ~0.4 (fused is
#: ~2.5-3x faster end to end), so 0.75 keeps the guard meaningful while
#: absorbing scheduler stalls on shared CI runners — the refit totals are
#: only tens of milliseconds per run.
CROSS_CHECK_MAX_RATIO = 0.75


def cross_check(suite: str = "tiny", seed: int = 0) -> int:
    """Fused-vs-autodiff guard on one case; returns a process exit code.

    Runs the first case of ``suite`` once per backend at the same seed and
    checks two invariants:

    * **parity** — the backends are bit-identical per training step, so the
      search trajectories must agree exactly (same evaluations, same
      winning sizing);
    * **speed** — the fused refit must stay under
      ``CROSS_CHECK_MAX_RATIO`` of the autodiff refit on the same
      trajectory.  The comparison is relative, on the same machine and the
      same case, so the guard does not flake with host speed.  The
      autodiff run goes first so the fused measurement never pays the
      process warm-up.
    """
    case = get_suite(suite)[0]
    autodiff = run_case(case, seeds=[seed], backend="autodiff")["per_seed"][0]
    fused = run_case(case, seeds=[seed], backend="fused")["per_seed"][0]
    parity = (
        fused["best_sizing"] == autodiff["best_sizing"]
        and fused["evaluations"] == autodiff["evaluations"]
        and fused["solved"] == autodiff["solved"]
    )
    faster = fused["refit_seconds"] <= CROSS_CHECK_MAX_RATIO * autodiff["refit_seconds"]
    module_logger.info(
        "cross-check %s seed %d: fused refit %.3fs vs autodiff %.3fs",
        case.name,
        seed,
        fused["refit_seconds"],
        autodiff["refit_seconds"],
    )
    if not parity:
        module_logger.error(
            "cross-check FAIL: backends diverged — evaluations %s vs %s, "
            "solved %s vs %s",
            fused["evaluations"],
            autodiff["evaluations"],
            fused["solved"],
            autodiff["solved"],
        )
    if not faster:
        module_logger.error(
            "cross-check FAIL: fused refit above %.2fx of the autodiff reference",
            CROSS_CHECK_MAX_RATIO,
        )
    # The verdict is the machine-readable output; it stays on stdout.
    print("cross-check PASS" if parity and faster else "cross-check FAIL")
    return 0 if parity and faster else 1


#: Schema of the optional ``--refit-cross-check`` artifact.
REFIT_CHECK_SCHEMA = "repro.bench.refit/v1"


def refit_cross_check(
    suite: str = "smoke", seeds: int = 8, output: Optional[str] = None
) -> int:
    """Batched-vs-sequential refit guard; returns a process exit code.

    Runs the whole ``suite`` once per ``refit_mode`` at the same seeds and
    checks the tentpole guarantee: the batched round-level refit dispatch
    must be **bit-identical per seed** to the sequential inline path —
    same winning sizings, same evaluation counts, same solved verdicts for
    every (case, seed) pair.  The refit wall times of the two runs are
    reported alongside the verdict (and written to ``output`` when given);
    the speedup is informational, not gating — wall-clock ratios flake on
    shared CI runners, bits don't.

    The sequential run goes first, so the batched measurement never pays
    the process warm-up.
    """
    seed_range = range(seeds)
    sequential = run_suite(suite, seeds=seed_range, refit_mode="sequential")
    batched = run_suite(suite, seeds=seed_range, refit_mode="batched")
    mismatches: List[str] = []
    for seq_case, bat_case in zip(sequential["cases"], batched["cases"]):
        for seq_seed, bat_seed in zip(seq_case["per_seed"], bat_case["per_seed"]):
            same = (
                seq_seed["best_sizing"] == bat_seed["best_sizing"]
                and seq_seed["evaluations"] == bat_seed["evaluations"]
                and seq_seed["solved"] == bat_seed["solved"]
            )
            if not same:
                mismatches.append(f"{seq_case['name']} seed {seq_seed['seed']}")
    seq_refit = sum(case["refit_seconds"] for case in sequential["cases"])
    bat_refit = sum(case["refit_seconds"] for case in batched["cases"])
    speedup = seq_refit / bat_refit if bat_refit else float("inf")
    parity = not mismatches
    for mismatch in mismatches:
        module_logger.error("refit-cross-check diverged: %s", mismatch)
    if output is not None:
        write_bench_json(
            {
                "schema": REFIT_CHECK_SCHEMA,
                "suite": suite,
                "seeds": list(seed_range),
                "parity": parity,
                "sequential_refit_seconds": round(seq_refit, 6),
                "batched_refit_seconds": round(bat_refit, 6),
                "refit_speedup": round(speedup, 3),
                "cases": [
                    {
                        "name": seq_case["name"],
                        "sequential_refit_seconds": seq_case["refit_seconds"],
                        "batched_refit_seconds": bat_case["refit_seconds"],
                        "batched_kernel_calls": bat_case["refit"][
                            "batched_kernel_calls"
                        ],
                        "refit_rounds": bat_case["refit"]["refit_rounds"],
                        "success_rate": bat_case["success_rate"],
                    }
                    for seq_case, bat_case in zip(
                        sequential["cases"], batched["cases"]
                    )
                ],
            },
            output,
        )
        module_logger.info("wrote %s", output)
    # The verdict is the machine-readable output; it stays on stdout.
    print(
        f"refit-cross-check {'PASS' if parity else 'FAIL'} "
        f"(batched {bat_refit:.3f}s vs sequential {seq_refit:.3f}s, "
        f"{speedup:.2f}x, {seeds} seeds)"
    )
    return 0 if parity else 1


#: Schema of the ``--shard-scaling`` artifact (``BENCH_shard.json``).
SHARD_CHECK_SCHEMA = "repro.bench.shard/v1"

#: Per-seed fields the shard-scaling parity gate byte-compares across
#: worker counts: the full search outcome minus wall-clock timing.
_SHARD_PARITY_KEYS = (
    "seed",
    "solved",
    "evaluations",
    "phases",
    "engine_calls",
    "cache_hits",
    "cache_misses",
    "failing_corners",
    "best_sizing",
)


def shard_scaling(
    suite: str = "smoke",
    seeds: int = 16,
    workers_list: Sequence[int] = (1, 2, 4, 8),
    output: Optional[str] = None,
) -> int:
    """Sharded scaling curve + parity gate; returns a process exit code.

    Runs the whole ``suite`` once per worker count in ``workers_list``
    (``--execution sharded``) and checks the tentpole guarantee: every
    (case, seed) outcome must be **bit-identical across worker counts** —
    same winning sizings, evaluation counts, cache accounting and solved
    verdicts (the ``workers=1`` run is itself locked to the sequential
    oracle by the determinism auditor's sharded mode).  The wall-time
    curve and per-count speedups over ``workers=1`` are reported alongside
    (and written to ``output``, default ``BENCH_shard.json``); the speedup
    is informational, not gating — it tracks the host's core count
    (recorded in the artifact as ``host.cpu_count``), and wall-clock
    ratios flake on shared runners while bits don't.
    """
    seed_range = range(seeds)
    runs: List[Dict[str, Any]] = []
    for workers in workers_list:
        payload = run_suite(
            suite, seeds=seed_range, execution="sharded", workers=workers
        )
        runs.append(payload)
        module_logger.info(
            "shard-scaling %r workers=%d: %.3fs wall",
            suite,
            workers,
            payload["totals"]["wall_seconds"],
        )
    mismatches: List[str] = []
    baseline = runs[0]
    for payload, workers in zip(runs[1:], list(workers_list)[1:]):
        for base_case, case in zip(baseline["cases"], payload["cases"]):
            for base_seed, seed_record in zip(
                base_case["per_seed"], case["per_seed"]
            ):
                if any(
                    base_seed[key] != seed_record[key] for key in _SHARD_PARITY_KEYS
                ):
                    mismatches.append(
                        f"{case['name']} seed {seed_record['seed']} "
                        f"(workers {workers_list[0]} vs {workers})"
                    )
    parity = not mismatches
    for mismatch in mismatches:
        module_logger.error("shard-scaling diverged: %s", mismatch)
    base_wall = baseline["totals"]["wall_seconds"]
    curve = [
        {
            "workers": workers,
            "wall_seconds": payload["totals"]["wall_seconds"],
            "speedup": (
                round(base_wall / payload["totals"]["wall_seconds"], 3)
                if payload["totals"]["wall_seconds"]
                else None
            ),
            "cases": [
                {
                    "name": case["name"],
                    "wall_seconds": case["wall_seconds"],
                    "success_rate": case["success_rate"],
                    "shard": case["shard"],
                }
                for case in payload["cases"]
            ],
        }
        for workers, payload in zip(workers_list, runs)
    ]
    artifact_path = output or "BENCH_shard.json"
    write_bench_json(
        {
            "schema": SHARD_CHECK_SCHEMA,
            "suite": suite,
            "seeds": list(seed_range),
            "workers": list(workers_list),
            "parity": parity,
            # Speedup is bounded by the physical cores the run actually
            # had; recorded so scaling curves from different hosts compare
            # honestly.
            "host": {"cpu_count": os.cpu_count() or 1},
            "scaling": curve,
        },
        artifact_path,
    )
    module_logger.info("wrote %s", artifact_path)
    # The verdict is the machine-readable output; it stays on stdout.
    summary = ", ".join(
        f"w={entry['workers']}: {entry['wall_seconds']:.2f}s"
        + (f" ({entry['speedup']:.2f}x)" if entry["speedup"] else "")
        for entry in curve
    )
    print(
        f"shard-scaling {'PASS' if parity else 'FAIL'} "
        f"({seeds} seeds, {summary})"
    )
    return 0 if parity else 1


def format_summary(payload: Dict[str, Any]) -> str:
    """Human-readable one-line-per-case table for CLI output."""
    lines = [
        f"suite {payload['suite']!r} | seeds {payload['seeds']} "
        f"| backend {payload['backend']} "
        f"| corners {payload['corner_engine']} "
        f"| optimizer {payload['optimizer']} "
        f"| refit {payload['refit_mode']} "
        f"| {payload['execution']} execution "
        f"| {payload['totals']['wall_seconds']:.1f} s total",
        f"{'case':48s} {'dims':>4s} {'succ':>6s} {'evals':>6s} "
        f"{'refit_s':>8s} {'eval_s':>8s} {'calls':>6s} {'wall_s':>7s}",
    ]
    for case in payload["cases"]:
        evals = case["median_evaluations_to_feasible"]
        lines.append(
            f"{case['name']:48s} {case['design_dims']:>4d} "
            f"{case['success_rate']:>6.2f} "
            f"{(str(evals) if evals is not None else '-'):>6s} "
            f"{case['refit_seconds']:>8.3f} "
            f"{case['eval_seconds']:>8.3f} "
            f"{case['eval']['engine_calls']:>6d} {case['wall_seconds']:>7.2f}"
        )
    totals = payload["totals"]
    lines.append(
        f"overall: {totals['solved_fraction'] * 100.0:.0f}% of runs solved "
        f"across {totals['cases']} cases"
    )
    return "\n".join(lines)


def format_listing() -> str:
    """Everything the registry knows: suites, topologies, tiers, optimizers.

    The ``--list`` output (also shown when ``--suite`` names an unknown
    suite), so discovering what the harness can run never requires reading
    source.
    """
    lines = ["suites:"]
    for suite in available_suites():
        lines.append(f"  {suite}:")
        for case in get_suite(suite):
            lines.append(f"    {case.name}")
    lines.append(f"topologies: {', '.join(available_topologies())}")
    lines.append(f"spec tiers: {', '.join(SPEC_TIERS)}")
    lines.append(f"corner sets: {', '.join(sorted(CORNER_SETS))}")
    lines.append(f"optimizers: {', '.join(available_optimizers())}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``python -m repro.bench --suite smoke --seeds 3``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run a sizing benchmark suite and write a BENCH JSON artifact.",
    )
    parser.add_argument(
        "--suite",
        default="smoke",
        help="benchmark suite to run (default: smoke; see --list)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list registered suites, topologies, spec tiers, corner sets "
        "and optimizers, then exit",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        metavar="N",
        help="number of seeds (0..N-1) per case (default: 3)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="JSON artifact path (default: BENCH_<suite>.json)",
    )
    parser.add_argument(
        "--fail-under",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="exit nonzero when the solved fraction falls below this "
        "threshold (default: 0.0, i.e. never fail; CI gates pass 1.0)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=("fused", "autodiff"),
        help="surrogate training backend override (default: the library "
        "default, fused; autodiff is the reference oracle)",
    )
    parser.add_argument(
        "--corner-engine",
        default=None,
        choices=("stacked", "looped"),
        help="multi-corner evaluation engine override (default: the library "
        "default, stacked; looped is the per-corner parity oracle)",
    )
    parser.add_argument(
        "--optimizer",
        default=None,
        choices=available_optimizers(),
        help="search-strategy override for every case (default: each "
        "case's registered optimizer, usually trust_region)",
    )
    parser.add_argument(
        "--execution",
        default="campaign",
        choices=EXECUTIONS,
        help="how a case's seeds run: 'campaign' (default) batches all "
        "seeds through shared vectorized corner passes, 'sequential' runs "
        "one seed at a time (bit-exact per seed, more evaluator calls), "
        "'sharded' partitions seeds across spawned worker processes "
        "(bit-identical per seed to sequential; see --workers)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker process count for --execution sharded (default: the "
        "host CPU count; 1 runs every shard in-process, bit-for-bit equal "
        "to spawned execution)",
    )
    parser.add_argument(
        "--refit-mode",
        default=None,
        choices=REFIT_MODES,
        help="surrogate-refit dispatch override (default: the library "
        "default, batched — one stacked multi-seed training kernel per "
        "campaign round; sequential is the inline per-seed parity oracle)",
    )
    parser.add_argument(
        "--cross-check",
        action="store_true",
        help="instead of running the suite, run its first case once per "
        "backend and verify trajectory parity plus fused refit <= autodiff "
        "refit (the CI backend guard)",
    )
    parser.add_argument(
        "--refit-cross-check",
        action="store_true",
        help="instead of running the suite once, run it once per refit "
        "mode and verify per-seed trajectory parity (batched vs "
        "sequential); --seeds sets the fleet size (default 8), --output "
        "writes the speedup artifact",
    )
    parser.add_argument(
        "--shard-scaling",
        action="store_true",
        help="instead of running the suite once, run it at every "
        "--workers-list count under --execution sharded and verify "
        "per-seed bit-parity across worker counts; --seeds sets the fleet "
        "size (default 16), --output writes the scaling artifact "
        "(default BENCH_shard.json)",
    )
    parser.add_argument(
        "--workers-list",
        default="1,2,4,8",
        metavar="N,N,...",
        help="comma-separated worker counts for --shard-scaling "
        "(default: 1,2,4,8)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a repro.obs JSONL trace of the whole run to PATH "
        "(render with 'python -m repro.obs report PATH'); also populates "
        "the per-case telemetry block in the artifact",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="snapshot each case's campaign under DIR/<case>/ after every "
        "round (campaign execution only); a killed run resumes from there "
        "with --resume, bit-identical to an uninterrupted run",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="restore each case from its --checkpoint-dir snapshot before "
        "running (cases whose directory has no snapshot yet start cold)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist each case's evaluation cache at DIR/<case>.evc; "
        "reruns over the same workload warm-start from disk (the per-case "
        "resilience block reports the warm/cold hit split)",
    )
    add_logging_flags(parser)
    args = parser.parse_args(argv)
    configure_cli_logging(quiet=args.quiet, verbose=args.verbose)

    if args.list:
        print(format_listing())
        return 0
    if args.suite not in available_suites():
        print(f"unknown bench suite {args.suite!r}\n")
        print(format_listing())
        return 2

    if sum((args.cross_check, args.refit_cross_check, args.shard_scaling)) > 1:
        parser.error(
            "--cross-check, --refit-cross-check and --shard-scaling are exclusive"
        )
    if args.cross_check:
        # The guard has its own fixed protocol (one seed, both backends, no
        # artifact); reject flags it would silently ignore.
        dropped = [
            flag
            for flag, value in (
                ("--seeds", args.seeds),
                ("--output", args.output),
                ("--backend", args.backend),
                ("--corner-engine", args.corner_engine),
                ("--optimizer", args.optimizer),
                ("--refit-mode", args.refit_mode),
                ("--trace", args.trace),
                ("--checkpoint-dir", args.checkpoint_dir),
                ("--cache-dir", args.cache_dir),
                ("--workers", args.workers),
            )
            if value is not None
        ]
        if args.fail_under:
            dropped.append("--fail-under")
        if args.resume:
            dropped.append("--resume")
        if dropped:
            parser.error(f"--cross-check does not accept {', '.join(dropped)}")
        return cross_check(args.suite)
    if args.refit_cross_check:
        # Fixed two-run protocol over both refit modes; --seeds and
        # --output are meaningful, everything else would be ignored.
        dropped = [
            flag
            for flag, value in (
                ("--backend", args.backend),
                ("--corner-engine", args.corner_engine),
                ("--optimizer", args.optimizer),
                ("--refit-mode", args.refit_mode),
                ("--trace", args.trace),
                ("--checkpoint-dir", args.checkpoint_dir),
                ("--cache-dir", args.cache_dir),
                ("--workers", args.workers),
            )
            if value is not None
        ]
        if args.fail_under:
            dropped.append("--fail-under")
        if args.resume:
            dropped.append("--resume")
        if dropped:
            parser.error(f"--refit-cross-check does not accept {', '.join(dropped)}")
        seeds = 8 if args.seeds is None else args.seeds
        if seeds < 1:
            parser.error("--seeds must be at least 1")
        return refit_cross_check(args.suite, seeds=seeds, output=args.output)
    if args.shard_scaling:
        # Fixed protocol: the suite at every worker count, sharded
        # execution, library-default knobs (the single-knob overrides
        # belong to the determinism auditor's sharded mode).
        dropped = [
            flag
            for flag, value in (
                ("--backend", args.backend),
                ("--corner-engine", args.corner_engine),
                ("--optimizer", args.optimizer),
                ("--refit-mode", args.refit_mode),
                ("--trace", args.trace),
                ("--checkpoint-dir", args.checkpoint_dir),
                ("--cache-dir", args.cache_dir),
                ("--workers", args.workers),
            )
            if value is not None
        ]
        if args.fail_under:
            dropped.append("--fail-under")
        if args.resume:
            dropped.append("--resume")
        if args.execution != "campaign":
            dropped.append("--execution")
        if dropped:
            parser.error(f"--shard-scaling does not accept {', '.join(dropped)}")
        try:
            workers_list = [int(item) for item in args.workers_list.split(",")]
        except ValueError:
            parser.error("--workers-list must be comma-separated integers")
        if not workers_list or any(workers < 1 for workers in workers_list):
            parser.error("--workers-list counts must be at least 1")
        seeds = 16 if args.seeds is None else args.seeds
        if seeds < 1:
            parser.error("--seeds must be at least 1")
        return shard_scaling(
            args.suite, seeds=seeds, workers_list=workers_list, output=args.output
        )

    seeds = 3 if args.seeds is None else args.seeds
    if seeds < 1:
        parser.error("--seeds must be at least 1")
    if not 0.0 <= args.fail_under <= 1.0:
        parser.error("--fail-under must be within [0, 1]")
    if args.execution == "sequential" and (
        args.checkpoint_dir or args.resume or args.cache_dir
    ):
        parser.error(
            "--checkpoint-dir/--resume/--cache-dir need --execution "
            "campaign or sharded"
        )
    if args.workers is not None and args.execution != "sharded":
        parser.error("--workers needs --execution sharded")
    if args.workers is not None and args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.resume and not args.checkpoint_dir:
        parser.error("--resume needs --checkpoint-dir")
    # A sharded traced run gives every worker its own sink next to the
    # parent's; 'python -m repro.obs report <PATH>.workers' merges them.
    worker_trace_dir = (
        f"{args.trace}.workers"
        if args.trace and args.execution == "sharded"
        else None
    )

    def _run() -> Dict[str, Any]:
        return run_suite(
            args.suite,
            seeds=range(seeds),
            backend=args.backend,
            corner_engine=args.corner_engine,
            optimizer=args.optimizer,
            execution=args.execution,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            cache_dir=args.cache_dir,
            refit_mode=args.refit_mode,
            workers=args.workers,
            worker_trace_dir=worker_trace_dir,
        )

    if args.trace:
        # Tracing is trajectory-neutral (locked by tests), so the traced
        # run produces the same artifact plus the telemetry block.
        with tracing(sink=args.trace):
            payload = _run()
        module_logger.info("wrote trace %s", args.trace)
    else:
        payload = _run()
    output = args.output or f"BENCH_{args.suite}.json"
    write_bench_json(payload, output)
    print(format_summary(payload))
    print(f"wrote {output}")
    solved_fraction = payload["totals"]["solved_fraction"]
    if solved_fraction < args.fail_under:
        print(
            f"FAIL: solved fraction {solved_fraction:.2f} "
            f"below --fail-under {args.fail_under:.2f}"
        )
        return 1
    return 0
