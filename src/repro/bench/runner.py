"""Benchmark runner: execute suites, aggregate, and emit BENCH JSON.

Every case runs the same progressive trust-region search users get from
:func:`repro.search.sizing.size_problem`, once per seed, and records the
numbers the ROADMAP tracks per PR:

* **success rate** — fraction of seeds whose winner passes every spec at
  every corner of the case's corner set;
* **median evaluations-to-feasible** — median (over successful seeds) of
  true-evaluator calls consumed, the paper's efficiency metric;
* **surrogate-refit seconds** — wall time inside the incremental MLP refits;
* **wall seconds** — end-to-end search time.

The JSON artifact schema is ``repro.bench/v1`` (see README "Benchmarking"):

.. code-block:: json

    {
      "schema": "repro.bench/v1",
      "suite": "smoke",
      "seeds": [0, 1, 2],
      "cases": [
        {
          "name": "two_stage_opamp/nominal/nine",
          "topology": "two_stage_opamp", "tier": "nominal",
          "corner_set": "nine", "design_dims": 8,
          "success_rate": 1.0,
          "median_evaluations_to_feasible": 120,
          "mean_refit_seconds": 0.27, "mean_wall_seconds": 1.4,
          "per_seed": [{"seed": 0, "solved": true, "evaluations": 120,
                        "refit_seconds": 0.27, "wall_seconds": 1.4,
                        "phases": 1, "best_sizing": {"w1": 4.3e-05}}]
        }
      ],
      "totals": {"cases": 4, "solved_fraction": 1.0, "wall_seconds": 12.3}
    }
"""

from __future__ import annotations

import json
import time
from statistics import median
from typing import Any, Dict, List, Optional, Sequence

from repro.bench.registry import BenchCase, get_suite
from repro.circuits.topologies import get_topology
from repro.search.sizing import size_problem

SCHEMA = "repro.bench/v1"


def run_case(case: BenchCase, seeds: Sequence[int]) -> Dict[str, Any]:
    """Run one benchmark case across seeds and aggregate the statistics."""
    problem_cls = get_topology(case.topology)
    design_dims = len(problem_cls.VARIABLE_NAMES)
    per_seed: List[Dict[str, Any]] = []
    for seed in seeds:
        started = time.perf_counter()
        result = size_problem(
            case.topology,
            technology=case.technology,
            load_cap=case.load_cap,
            tier=case.tier,
            corners=case.corners(),
            config=case.config(seed),
            max_phases=case.max_phases,
        )
        wall = time.perf_counter() - started
        per_seed.append(
            {
                "seed": int(seed),
                "solved": bool(result.solved_all_corners),
                "evaluations": int(result.evaluations),
                "refit_seconds": round(result.refit_seconds, 6),
                "wall_seconds": round(wall, 6),
                "phases": len(result.phase_results),
                "best_sizing": {k: float(v) for k, v in result.best_sizing.items()},
            }
        )

    solved = [record for record in per_seed if record["solved"]]
    return {
        "name": case.name,
        "topology": case.topology,
        "tier": case.tier,
        "corner_set": case.corner_set,
        "technology": case.technology,
        "design_dims": design_dims,
        "success_rate": len(solved) / len(per_seed) if per_seed else 0.0,
        "median_evaluations_to_feasible": (
            int(median(record["evaluations"] for record in solved)) if solved else None
        ),
        "mean_refit_seconds": (
            round(sum(r["refit_seconds"] for r in per_seed) / len(per_seed), 6)
            if per_seed
            else 0.0
        ),
        "mean_wall_seconds": (
            round(sum(r["wall_seconds"] for r in per_seed) / len(per_seed), 6)
            if per_seed
            else 0.0
        ),
        "per_seed": per_seed,
    }


def run_suite(suite: str = "smoke", seeds: Sequence[int] = (0, 1, 2)) -> Dict[str, Any]:
    """Run every case of a suite; returns the ``repro.bench/v1`` payload."""
    cases = get_suite(suite)
    started = time.perf_counter()
    case_results = [run_case(case, seeds) for case in cases]
    wall = time.perf_counter() - started
    runs = [record for result in case_results for record in result["per_seed"]]
    return {
        "schema": SCHEMA,
        "suite": suite,
        "seeds": [int(seed) for seed in seeds],
        "cases": case_results,
        "totals": {
            "cases": len(case_results),
            "solved_fraction": (
                sum(record["solved"] for record in runs) / len(runs) if runs else 0.0
            ),
            "wall_seconds": round(wall, 6),
        },
    }


def write_bench_json(payload: Dict[str, Any], path: str) -> None:
    """Write the payload as a stable, diff-friendly JSON artifact."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_summary(payload: Dict[str, Any]) -> str:
    """Human-readable one-line-per-case table for CLI output."""
    lines = [
        f"suite {payload['suite']!r} | seeds {payload['seeds']} "
        f"| {payload['totals']['wall_seconds']:.1f} s total",
        f"{'case':42s} {'dims':>4s} {'succ':>6s} {'evals':>6s} "
        f"{'refit_s':>8s} {'wall_s':>7s}",
    ]
    for case in payload["cases"]:
        evals = case["median_evaluations_to_feasible"]
        lines.append(
            f"{case['name']:42s} {case['design_dims']:>4d} "
            f"{case['success_rate']:>6.2f} "
            f"{(str(evals) if evals is not None else '-'):>6s} "
            f"{case['mean_refit_seconds']:>8.3f} {case['mean_wall_seconds']:>7.2f}"
        )
    totals = payload["totals"]
    lines.append(
        f"overall: {totals['solved_fraction'] * 100.0:.0f}% of runs solved "
        f"across {totals['cases']} cases"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``python -m repro.bench --suite smoke --seeds 3``."""
    import argparse

    from repro.bench.registry import available_suites

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run a sizing benchmark suite and write a BENCH JSON artifact.",
    )
    parser.add_argument(
        "--suite",
        default="smoke",
        choices=available_suites(),
        help="benchmark suite to run (default: smoke)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=3,
        metavar="N",
        help="number of seeds (0..N-1) per case (default: 3)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="JSON artifact path (default: BENCH_<suite>.json)",
    )
    parser.add_argument(
        "--fail-under",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="exit nonzero when the solved fraction falls below this "
        "threshold (default: 0.0, i.e. never fail; CI gates pass 1.0)",
    )
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error("--seeds must be at least 1")
    if not 0.0 <= args.fail_under <= 1.0:
        parser.error("--fail-under must be within [0, 1]")

    payload = run_suite(args.suite, seeds=range(args.seeds))
    output = args.output or f"BENCH_{args.suite}.json"
    write_bench_json(payload, output)
    print(format_summary(payload))
    print(f"wrote {output}")
    solved_fraction = payload["totals"]["solved_fraction"]
    if solved_fraction < args.fail_under:
        print(
            f"FAIL: solved fraction {solved_fraction:.2f} "
            f"below --fail-under {args.fail_under:.2f}"
        )
        return 1
    return 0
