"""``python -m repro.bench`` — run a benchmark suite, write a BENCH JSON."""

import sys

from repro.bench.runner import main

if __name__ == "__main__":
    sys.exit(main())
