"""Benchmark harness: measure search efficiency across the topology zoo.

``python -m repro.bench --suite smoke --seeds 3`` runs the progressive
trust-region search on every registered (topology, spec tier, corner set)
case and writes a ``BENCH_<suite>.json`` artifact with per-problem success
rate, median evaluations-to-feasible, surrogate-refit time, true-evaluator
time and wall time — the numbers every scaling/speed PR is measured
against.  ``--backend`` selects the surrogate training path and
``--corner-engine`` the multi-corner evaluation engine; both knobs are
bit-identical across their settings, so they trade speed only.
"""

from repro.bench.registry import (
    CORNER_SETS,
    BenchCase,
    available_suites,
    get_suite,
    register_benchmark,
)
from repro.bench.runner import (
    SCHEMA,
    cross_check,
    format_summary,
    run_case,
    run_suite,
    write_bench_json,
)

__all__ = [
    "BenchCase",
    "CORNER_SETS",
    "SCHEMA",
    "available_suites",
    "cross_check",
    "format_summary",
    "get_suite",
    "register_benchmark",
    "run_case",
    "run_suite",
    "write_bench_json",
]
