"""Benchmark harness: measure search efficiency across the topology zoo.

``python -m repro.bench --suite smoke --seeds 3`` runs the progressive
trust-region search on every registered (topology, spec tier, corner set)
case and writes a ``BENCH_<suite>.json`` artifact with per-problem success
rate, median evaluations-to-feasible, surrogate-refit time, true-evaluator
time and wall time — the numbers every scaling/speed PR is measured
against.  All seeds of a case run as one multi-seed
:class:`~repro.search.campaign.Campaign` by default (shared vectorized
corner passes; ``--execution sequential`` is the per-seed oracle).
``--backend`` selects the surrogate training path, ``--corner-engine`` the
multi-corner evaluation engine and ``--optimizer`` the search strategy;
the first two are bit-identical across their settings, so they trade speed
only.  ``--list`` enumerates everything the registry can run.
"""

from repro.bench.registry import (
    CORNER_SETS,
    BenchCase,
    available_suites,
    get_suite,
    register_benchmark,
)
from repro.bench.runner import (
    EXECUTIONS,
    SCHEMA,
    cross_check,
    format_listing,
    format_summary,
    run_case,
    run_suite,
    write_bench_json,
)

__all__ = [
    "BenchCase",
    "CORNER_SETS",
    "EXECUTIONS",
    "SCHEMA",
    "available_suites",
    "cross_check",
    "format_listing",
    "format_summary",
    "get_suite",
    "register_benchmark",
    "run_case",
    "run_suite",
    "write_bench_json",
]
