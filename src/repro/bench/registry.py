"""Benchmark registry: (topology, spec tier, corner set) triples.

A :class:`BenchCase` names one search problem the harness can run: which
topology from the zoo, which tier of its spec ladder, and which PVT corner
set the progressive loop must sign off.  Cases are grouped into named
*suites*; ``smoke`` is the CI suite (every topology once, budgets small
enough for a pull-request gate), ``full`` is the overnight matrix.

Third-party workloads can extend the registry::

    from repro.bench import BenchCase, register_benchmark
    register_benchmark("smoke", BenchCase("my_topology", "smoke", "hardest"))
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.circuits.pvt import (
    NOMINAL,
    PVTCondition,
    full_corner_grid,
    hardest_condition,
    nine_corner_grid,
)
from repro.circuits.topologies import SPEC_TIERS
from repro.search.optimizer import available_optimizers
from repro.search.trust_region import TrustRegionConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.search.campaign import Campaign
    from repro.shard.executor import ShardSpec

#: Named sign-off corner sets a case can request.
CORNER_SETS: Dict[str, Callable[[], List[PVTCondition]]] = {
    "nominal": lambda: [NOMINAL],
    "hardest": lambda: [hardest_condition(nine_corner_grid())],
    "nine": nine_corner_grid,
    "full45": full_corner_grid,
}


@dataclass(frozen=True)
class BenchCase:
    """One benchmark problem: a topology at a spec tier over a corner set.

    ``optimizer`` names the registered search strategy the case runs
    (``"trust_region"`` default); baseline cases pin ``"random"`` or
    ``"cross_entropy"`` so the artifacts calibrate what surrogate guidance
    actually buys.
    """

    topology: str
    tier: str
    corner_set: str = "nine"
    technology: str = "bsim45"
    load_cap: float = 2e-12
    max_evaluations: int = 400
    max_phases: int = 4
    optimizer: str = "trust_region"

    def __post_init__(self) -> None:
        if self.tier not in SPEC_TIERS:
            raise ValueError(
                f"unknown spec tier {self.tier!r}; "
                f"available: {', '.join(SPEC_TIERS)}"
            )
        if self.corner_set not in CORNER_SETS:
            raise ValueError(
                f"unknown corner set {self.corner_set!r}; "
                f"available: {', '.join(sorted(CORNER_SETS))}"
            )
        if self.optimizer not in available_optimizers():
            raise ValueError(
                f"unknown optimizer {self.optimizer!r}; "
                f"available: {', '.join(available_optimizers())}"
            )

    @property
    def name(self) -> str:
        """Stable display/JSON key, e.g. ``two_stage_opamp/nominal/nine``.

        Any field deviating from its default is appended as a suffix
        (``ota_5t/smoke/nominal@max_evaluations=200``) so two cases that
        differ only in budget, technology or load never collide on the
        identity key used by :func:`register_benchmark` and the JSON
        artifact.
        """
        base = f"{self.topology}/{self.tier}/{self.corner_set}"
        extras = [
            f"{f.name}={getattr(self, f.name):g}"
            if isinstance(getattr(self, f.name), float)
            else f"{f.name}={getattr(self, f.name)}"
            for f in fields(self)
            if f.name not in ("topology", "tier", "corner_set")
            and getattr(self, f.name) != f.default
        ]
        return base + (f"@{','.join(extras)}" if extras else "")

    @property
    def slug(self) -> str:
        """Filesystem-safe variant of :attr:`name` for per-case artifact
        directories (checkpoints, persistent caches, drill workdirs)."""
        return self.name.replace("/", "_").replace("@", "_").replace(",", "_")

    def corners(self) -> List[PVTCondition]:
        return CORNER_SETS[self.corner_set]()

    def config(self, seed: int) -> TrustRegionConfig:
        """Per-seed trust-region config.

        Everything except the seed and the evaluation budget stays at the
        library defaults so benchmark numbers track the defaults users get.
        """
        return TrustRegionConfig(seed=seed, max_evaluations=self.max_evaluations)

    def build_campaign(
        self,
        seeds: Sequence[int],
        backend: Optional[str] = None,
        corner_engine: Optional[str] = None,
        optimizer: Optional[str] = None,
        cache_path: Optional[str] = None,
        refit_mode: Optional[str] = None,
    ) -> "Campaign":
        """The ready-to-run multi-seed :class:`Campaign` for this case.

        Exactly the construction the bench runner's campaign execution
        path performs, factored here so the resilience drill and the
        determinism auditor rebuild byte-identical campaigns from a case
        alone.  Overrides follow :func:`repro.search.sizing.build_campaign`
        semantics (``None`` defers to the case, then the library default).
        """
        # Imported lazily: repro.search.sizing pulls in the topology zoo,
        # which this registry module must not import at module level.
        from repro.search.sizing import build_campaign

        seeds = [int(seed) for seed in seeds]
        return build_campaign(
            self.topology,
            technology=self.technology,
            load_cap=self.load_cap,
            tier=self.tier,
            corners=self.corners(),
            config=self.config(seeds[0] if seeds else 0),
            seeds=seeds,
            cache_path=cache_path,
            backend=backend,
            corner_engine=corner_engine,
            optimizer=optimizer if optimizer is not None else self.optimizer,
            max_phases=self.max_phases,
            refit_mode=refit_mode,
        )

    def shard_specs(
        self,
        seeds: Sequence[int],
        backend: Optional[str] = None,
        corner_engine: Optional[str] = None,
        optimizer: Optional[str] = None,
        refit_mode: Optional[str] = None,
    ) -> "List[ShardSpec]":
        """One picklable :class:`~repro.shard.executor.ShardSpec` per seed.

        Each spec carries a **fully resolved**
        :class:`~repro.search.progressive.ProgressiveConfig` (same
        override semantics as :meth:`build_campaign`, with the seed baked
        into the per-phase trust-region config), so a spawned worker
        rebuilds exactly the single-seed campaign this case would run for
        that seed — the construction behind ``--execution sharded``.
        """
        # Imported lazily for the same circularity reason as build_campaign.
        from repro.search.sizing import resolve_config
        from repro.shard.executor import ShardSpec

        corners = tuple(self.corners())
        specs = []
        for seed in seeds:
            seed = int(seed)
            config = resolve_config(
                self.config(seed),
                backend=backend,
                corner_engine=corner_engine,
                optimizer=optimizer if optimizer is not None else self.optimizer,
                max_phases=self.max_phases,
                refit_mode=refit_mode,
            )
            specs.append(
                ShardSpec(
                    topology=self.topology,
                    seed=seed,
                    config=config,
                    tier=self.tier,
                    technology=self.technology,
                    load_cap=self.load_cap,
                    corners=corners,
                    label=self.name,
                )
            )
        return specs


_SUITES: Dict[str, List[BenchCase]] = {
    # CI gate: every registered topology once, each case hard enough that
    # the surrogate-guided search (not the Monte-Carlo seed) does the work.
    # The two-stage runs its headline nominal tier over the full grid — the
    # historical opamp demo, kept bit-compatible.  The 5T OTA's nominal tier
    # is structurally infeasible across all nine corners at once (the +10%
    # supply corner caps the current budget the slow corner needs), so it
    # signs off at the hardest corner only.
    "smoke": [
        BenchCase("two_stage_opamp", "nominal", "nine"),
        BenchCase("ota_5t", "nominal", "hardest"),
        BenchCase("folded_cascode", "nominal", "nine"),
        BenchCase("telescopic", "nominal", "nine"),
        # Monte-Carlo baseline on an easy single-corner case (the smoke
        # tier is ~1-in-47 feasible under uniform sampling, so a 400-eval
        # random search signs off deterministically at the CI seeds):
        # calibrates what the surrogate-guided agent buys, and keeps a
        # non-trust-region optimizer exercised by every smoke run.
        BenchCase("two_stage_opamp", "smoke", "nominal", optimizer="random"),
    ],
    # Overnight matrix: the nominal cases plus the stretch tiers at the
    # hardest corner with a doubled budget.
    "full": [
        BenchCase("two_stage_opamp", "nominal", "nine"),
        BenchCase("ota_5t", "nominal", "hardest"),
        BenchCase("folded_cascode", "nominal", "nine"),
        BenchCase("telescopic", "nominal", "nine"),
        BenchCase("two_stage_opamp", "stretch", "hardest", max_evaluations=800),
        BenchCase("ota_5t", "stretch", "hardest", max_evaluations=800),
        BenchCase("folded_cascode", "stretch", "hardest", max_evaluations=800),
        BenchCase("telescopic", "stretch", "hardest", max_evaluations=800),
    ],
    # Single fast case for unit tests and bisection.
    "tiny": [
        BenchCase("ota_5t", "smoke", "nominal", max_evaluations=200, max_phases=1),
    ],
    # Kill-and-resume drill workload (python -m repro.resilience drill): a
    # fast case hard enough that the Monte-Carlo seed does NOT solve it, so
    # the surrogate refit loop runs and every registered fault site
    # (cache.append, engine.call, optimizer.refit, snapshot.write) is
    # reached within the first few occurrences.  The tiny case solves
    # during initial sampling and never refits — useless for drilling.
    "drill": [
        BenchCase("ota_5t", "nominal", "hardest", max_evaluations=120, max_phases=1),
    ],
    # Corner-axis scaling: the same workload signed off on the 9-corner grid
    # and on the full 45-corner grid, so BENCH artifacts track how the
    # stacked corner engine scales with the corner count (run with
    # ``--corner-engine looped`` for the oracle baseline).
    "corners": [
        BenchCase("two_stage_opamp", "smoke", "nine"),
        BenchCase("two_stage_opamp", "smoke", "full45"),
    ],
}


def available_suites() -> Tuple[str, ...]:
    """Names of all registered suites, sorted."""
    return tuple(sorted(_SUITES))


def get_suite(name: str) -> Tuple[BenchCase, ...]:
    """The cases of one suite, in registration order.

    Raises
    ------
    KeyError
        If the suite is unknown; the message lists the available suites.
    """
    try:
        return tuple(_SUITES[name])
    except KeyError:
        raise KeyError(
            f"unknown bench suite {name!r}; available: {', '.join(available_suites())}"
        ) from None


def register_benchmark(suite: str, case: BenchCase) -> None:
    """Add a case to a suite, creating the suite if needed."""
    cases = _SUITES.setdefault(suite, [])
    if any(existing.name == case.name for existing in cases):
        raise ValueError(f"suite {suite!r} already contains case {case.name!r}")
    cases.append(case)
