"""Fused pure-NumPy training backend for the surrogate MLP.

The autodiff path (:mod:`repro.autodiff`) builds a Python-object graph for
every minibatch — hundreds of ``Tensor`` allocations, backward closures and a
topological sort per step.  For the tiny fixed-architecture MLP the search
refits every iteration (Algorithm 1, line 8) that bookkeeping *is* the cost:
the smoke benchmark spends ~90% of its wall time inside ``train_regressor``.

:class:`FusedMLP` removes it.  The forward pass, the hand-derived backward
pass (Linear / tanh / relu / sigmoid stacks under an MSE loss) and a
flat-buffer :class:`FusedAdam` all operate on one concatenated ``float64``
parameter vector, so a training step is a fixed, small sequence of NumPy
calls with no per-op Python structures.

Every floating-point expression below is written to match the autodiff
engine's backward pass operation for operation (same order, same
power-of-two factors), so the two backends produce **bit-identical** losses,
gradients and post-Adam weights on the same minibatch stream.  That property
is what lets the search switch backend without re-locking its trajectories,
and it is enforced by ``tests/test_fused.py``.

Weights round-trip with the autodiff :class:`~repro.nn.modules.MLP` via
:meth:`FusedMLP.from_module` / :meth:`FusedMLP.to_module`, and the
``state_dict`` layout (``param_0`` = first weight, ``param_1`` = first bias,
...) is interchangeable between the two classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.contracts import ArraySpec, contract
from repro.nn.modules import MLP, Activation, Linear
from repro.nn.optim import bias_correction
from repro.obs import span


class FusedMLP:
    """An MLP whose parameters live in one flat ``float64`` buffer.

    Accepts the same constructor arguments as :class:`repro.nn.modules.MLP`
    and performs the same RNG draws, so ``FusedMLP(..., rng=g)`` and
    ``MLP(..., rng=g2)`` with identically-seeded generators start from
    bit-identical weights.

    Attributes
    ----------
    theta:
        The concatenated parameter vector.  Per-layer weight/bias arrays are
        *views* into it, so a flat optimizer step updates the layers in place.
    """

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        out_features: int,
        activation: str = "tanh",
        output_activation: str = "identity",
        rng: Optional[np.random.Generator] = None,
        init: str = "xavier",
    ) -> None:
        # Delegate initialization to the reference module so the two classes
        # can never drift on init schemes or RNG draw order.
        template = MLP(
            in_features,
            hidden,
            out_features,
            activation=activation,
            output_activation=output_activation,
            rng=rng,
            init=init,
        )
        self._adopt(template)

    # ------------------------------------------------------------------
    # Construction / module interop
    # ------------------------------------------------------------------
    def _adopt(self, module: MLP) -> None:
        """Read architecture and weights out of an autodiff MLP."""
        linears: List[Linear] = []
        activations: List[str] = []
        for layer in module.body.layers:
            if isinstance(layer, Linear):
                linears.append(layer)
                activations.append("identity")
            elif isinstance(layer, Activation):
                if not linears:
                    raise ValueError("activation before the first Linear layer")
                activations[-1] = layer.name
            else:
                raise TypeError(
                    f"FusedMLP only supports Linear/Activation stacks, got {type(layer).__name__}"
                )
        if not linears:
            raise ValueError("module has no Linear layers")

        self.in_features = module.in_features
        self.out_features = module.out_features
        self.hidden = module.hidden
        self._activations: Tuple[str, ...] = tuple(activations)
        self._shapes: List[Tuple[int, int]] = [
            (layer.in_features, layer.out_features) for layer in linears
        ]

        total = sum(i * o + o for i, o in self._shapes)
        self.theta = np.empty(total, dtype=np.float64)
        # The per-step gradient lives in a single reusable buffer; per-layer
        # weight/bias gradients are views into it so the backward pass can
        # write matmul results straight into place with ``out=``.  The array
        # returned by :meth:`loss_and_grad` is therefore only valid until the
        # next call — copy it to keep it.
        self._grad = np.empty(total, dtype=np.float64)
        # Per-batch-size scratch buffers for every forward/backward
        # intermediate (see _scratch_for); the training step performs no
        # heap allocation after the first batch of a given size.
        self._scratch: Dict[int, tuple] = {}
        self._weights: List[np.ndarray] = []
        self._biases: List[np.ndarray] = []
        self._grad_weights: List[np.ndarray] = []
        self._grad_biases: List[np.ndarray] = []
        offset = 0
        for layer, (fan_in, fan_out) in zip(linears, self._shapes):
            w_slice = slice(offset, offset + fan_in * fan_out)
            offset += fan_in * fan_out
            b_slice = slice(offset, offset + fan_out)
            offset += fan_out
            weight = self.theta[w_slice].reshape(fan_in, fan_out)
            bias = self.theta[b_slice]
            weight[...] = layer.weight.data
            bias[...] = layer.bias.data
            self._weights.append(weight)
            self._biases.append(bias)
            self._grad_weights.append(self._grad[w_slice].reshape(fan_in, fan_out))
            self._grad_biases.append(self._grad[b_slice])

    @classmethod
    def from_module(cls, module: MLP) -> "FusedMLP":
        """Build a fused copy of an autodiff MLP (weights are copied)."""
        fused = cls.__new__(cls)
        fused._adopt(module)
        return fused

    def to_module(self, module: Optional[MLP] = None) -> MLP:
        """Write the flat weights into an autodiff MLP (new one by default)."""
        if module is None:
            module = MLP(
                self.in_features,
                self.hidden,
                self.out_features,
                activation=self._activations[0] if len(self._activations) > 1 else "tanh",
                output_activation=self._activations[-1],
            )
        module.load_state_dict(self.state_dict())
        return module

    # ------------------------------------------------------------------
    # Serialization (interchangeable with Module.state_dict)
    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        return self.theta.size

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Parameter arrays in ``MLP.parameters()`` order (W0, b0, W1, ...)."""
        state: Dict[str, np.ndarray] = {}
        index = 0
        for weight, bias in zip(self._weights, self._biases):
            # analysis: allow(hot-loop-alloc) serialization is cold by design
            state[f"param_{index}"] = weight.copy()
            state[f"param_{index + 1}"] = bias.copy()  # analysis: allow(hot-loop-alloc)
            index += 2
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        arrays = [self._weights[i // 2] if i % 2 == 0 else self._biases[i // 2]
                  for i in range(2 * len(self._weights))]
        if len(state) != len(arrays):
            raise ValueError(
                f"state has {len(state)} entries but model has {len(arrays)} parameters"
            )
        for i, target in enumerate(arrays):
            # analysis: allow(hot-loop-alloc) deserialization is cold by design
            incoming = np.asarray(state[f"param_{i}"], dtype=np.float64)
            if incoming.shape != target.shape:
                raise ValueError(
                    f"parameter {i} shape mismatch: {incoming.shape} vs {target.shape}"
                )
            target[...] = incoming

    # ------------------------------------------------------------------
    # Forward / fused backward
    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference forward pass on raw arrays."""
        if not (isinstance(x, np.ndarray) and x.ndim == 2 and x.dtype == np.float64):
            x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        h = x
        for weight, bias, act in zip(self._weights, self._biases, self._activations):
            h = Activation.apply_numpy(act, h @ weight + bias)
        return h

    __call__ = predict

    def _scratch_for(self, rows: int) -> tuple:
        """Reusable per-layer buffers for a given minibatch row count.

        ``z``/``a`` hold pre-/post-activation values (aliased for identity
        layers), ``g`` the backward gradients per layer, ``tmp`` activation-
        derivative workspace (the last entry doubles as the squared-error
        buffer).  Allocated once per distinct batch size, then reused.
        """
        cached = self._scratch.get(rows)
        if cached is None:
            z_buffers, a_buffers, g_buffers, tmp_buffers = [], [], [], []
            # The allocations below run once per distinct batch size and are
            # what keeps loss_and_grad itself allocation-free.
            for (_, fan_out), act in zip(self._shapes, self._activations):
                z = np.empty((rows, fan_out))  # analysis: allow(hot-loop-alloc)
                z_buffers.append(z)
                # analysis: allow(hot-loop-alloc) one-time scratch
                a_buffers.append(z if act == "identity" else np.empty((rows, fan_out)))
                g_buffers.append(np.empty((rows, fan_out)))  # analysis: allow(hot-loop-alloc)
                tmp_buffers.append(np.empty((rows, fan_out)))  # analysis: allow(hot-loop-alloc)
            cached = (z_buffers, a_buffers, g_buffers, tmp_buffers)
            self._scratch[rows] = cached
        return cached

    def loss_and_grad(self, inputs: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        """One fused MSE step: scalar loss plus the flat gradient vector.

        The expressions mirror the autodiff chain for
        ``mse_loss(model(Tensor(x)), Tensor(y)).backward()`` term by term:
        the mean splits into ``sum * (1/size)``, the squared difference
        contributes its gradient twice (``g + g`` rather than ``2*g`` — the
        same bits either way), and each layer differentiates in the same
        operand order as the Tensor closures.  Every intermediate lands in a
        per-batch-size scratch buffer via ``out=``, so a step is a fixed
        sequence of allocation-free NumPy calls.

        The returned gradient is a reusable internal buffer, overwritten by
        the next ``loss_and_grad`` call; copy it if you need to keep it.
        """
        if not (isinstance(inputs, np.ndarray) and inputs.ndim == 2
                and inputs.dtype == np.float64):
            inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        if not (isinstance(targets, np.ndarray) and targets.ndim == 2
                and targets.dtype == np.float64):
            targets = np.atleast_2d(np.asarray(targets, dtype=np.float64))
        weights, biases, activations = self._weights, self._biases, self._activations
        last = len(weights) - 1
        if targets.shape != (inputs.shape[0], weights[last].shape[1]):
            raise ValueError(
                f"targets shape {targets.shape} does not match "
                f"({inputs.shape[0]}, {weights[last].shape[1]})"
            )
        z_buffers, a_buffers, g_buffers, tmp_buffers = self._scratch_for(inputs.shape[0])

        # Forward, caching pre- and post-activation values per layer.
        h = inputs
        for index in range(last + 1):
            z = z_buffers[index]
            np.matmul(h, weights[index], out=z)
            np.add(z, biases[index], out=z)
            act = activations[index]
            if act == "tanh":
                h = np.tanh(z, out=a_buffers[index])
            elif act == "relu":
                h = np.maximum(z, 0.0, out=a_buffers[index])
            elif act == "sigmoid":
                a = a_buffers[index]
                np.negative(z, out=a)
                np.exp(a, out=a)
                np.add(a, 1.0, out=a)
                h = np.divide(1.0, a, out=a)
            else:
                h = z
        prediction = h

        # Loss and its gradient seed.
        diff = g_buffers[last]
        np.subtract(prediction, targets, out=diff)
        squared = tmp_buffers[last]
        np.multiply(diff, diff, out=squared)
        inv_count = 1.0 / diff.size
        loss = float(squared.sum() * inv_count)
        np.multiply(diff, inv_count, out=diff)
        grad_out = np.add(diff, diff, out=diff)

        # Backward through the stack, writing straight into the flat grad.
        for index in range(last, -1, -1):
            act = activations[index]
            if act == "tanh":
                a, tmp = a_buffers[index], tmp_buffers[index]
                np.multiply(a, a, out=tmp)
                np.subtract(1.0, tmp, out=tmp)
                np.multiply(grad_out, tmp, out=grad_out)
            elif act == "relu":
                np.multiply(grad_out, z_buffers[index] > 0.0, out=grad_out)
            elif act == "sigmoid":
                a, tmp = a_buffers[index], tmp_buffers[index]
                np.multiply(grad_out, a, out=grad_out)
                np.subtract(1.0, a, out=tmp)
                np.multiply(grad_out, tmp, out=grad_out)
            h = inputs if index == 0 else a_buffers[index - 1]
            np.matmul(h.T, grad_out, out=self._grad_weights[index])
            np.add.reduce(grad_out, axis=0, out=self._grad_biases[index])
            if index > 0:
                grad_out = np.matmul(grad_out, weights[index].T, out=g_buffers[index - 1])
        return loss, self._grad

    @contract(
        args={"inputs": ArraySpec("n", None), "targets": ArraySpec("n", None)},
        frozen=("inputs", "targets"),
    )
    @span("nn.fused_fit")
    def fit(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        epochs: int,
        batch_size: int,
        optimizer: "FusedAdam",
        rng: np.random.Generator,
    ) -> List[float]:
        """Tight minibatch-Adam loop; returns the per-epoch mean losses.

        Matches :func:`repro.nn.training.iterate_minibatches` semantics and
        RNG consumption exactly (one permutation drawn per epoch, batches
        taken in permuted order), but gathers each epoch's shuffle once and
        hands contiguous slices to :meth:`loss_and_grad` — the same bits at
        a fraction of the per-batch Python overhead.
        """
        count = inputs.shape[0]
        loss_and_grad = self.loss_and_grad
        step = optimizer.step
        epoch_losses: List[float] = []
        for _ in range(epochs):
            order = rng.permutation(count)
            shuffled_x = inputs[order]
            shuffled_y = targets[order]
            losses = []
            for start in range(0, count, batch_size):
                stop = start + batch_size
                loss, grad = loss_and_grad(shuffled_x[start:stop], shuffled_y[start:stop])
                step(grad)
                losses.append(loss)
            epoch_losses.append(float(np.mean(losses)))
        return epoch_losses

    def __repr__(self) -> str:
        return (
            f"FusedMLP(in={self.in_features}, hidden={self.hidden}, "
            f"out={self.out_features}, params={self.num_parameters})"
        )


class FusedAdam:
    """Adam over one flat parameter vector.

    Performs the same elementwise update sequence as
    :class:`repro.nn.optim.Adam` (same ``m``/``v`` recurrences, same bias
    correction, same epsilon placement), just on the concatenated buffer —
    so its steps are bit-identical to the per-parameter optimizer's.
    """

    def __init__(
        self,
        model: FusedMLP,
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        self.model = model
        self.theta = model.theta
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = np.zeros_like(self.theta)
        self._v = np.zeros_like(self.theta)
        # Scratch buffers so a step performs zero heap allocations; every
        # ``out=`` rewrite below computes the same value, in the same
        # rounding order, as the plain-expression per-parameter optimizer.
        self._s1 = np.empty_like(self.theta)
        self._s2 = np.empty_like(self.theta)
        self._t = 0

    def state_dict(self) -> Dict[str, object]:
        """The optimizer moments and step count, for checkpoint/resume."""
        return {"t": self._t, "m": self._m.copy(), "v": self._v.copy()}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore :meth:`state_dict` output (flat shapes must match)."""
        for name, source in (("m", state["m"]), ("v", state["v"])):
            if source.shape != self.theta.shape:
                raise ValueError(
                    f"moment {name!r} has shape {source.shape}, "
                    f"theta is {self.theta.shape}"
                )
        self._m[...] = state["m"]
        self._v[...] = state["v"]
        self._t = int(state["t"])

    def step(self, grad: np.ndarray) -> None:
        """Apply one Adam update for the given flat gradient."""
        if grad.shape != self.theta.shape:
            raise ValueError(f"gradient shape {grad.shape} vs theta {self.theta.shape}")
        self._t += 1
        if self.weight_decay:
            grad = grad + self.weight_decay * self.theta
        m, v, s1, s2 = self._m, self._v, self._s1, self._s2
        # m = beta1*m + (1-beta1)*grad
        np.multiply(m, self.beta1, out=m)
        np.multiply(grad, 1.0 - self.beta1, out=s1)
        np.add(m, s1, out=m)
        # v = beta2*v + (1-beta2)*grad^2
        np.multiply(v, self.beta2, out=v)
        np.multiply(grad, grad, out=s1)
        np.multiply(s1, 1.0 - self.beta2, out=s1)
        np.add(v, s1, out=v)
        # theta -= lr * m_hat / (sqrt(v_hat) + eps)
        np.divide(m, bias_correction(self.beta1, self._t), out=s1)
        np.divide(v, bias_correction(self.beta2, self._t), out=s2)
        np.sqrt(s2, out=s2)
        np.add(s2, self.eps, out=s2)
        np.multiply(s1, self.lr, out=s1)
        np.divide(s1, s2, out=s1)
        np.subtract(self.theta, s1, out=self.theta)



class BatchedFusedMLP:
    """``n_seeds`` independent :class:`FusedMLP` replicas trained as one tensor.

    The same tensorization move the corner engine applied to evaluation,
    applied to training: the seeds' flat parameter vectors stack into a
    ``(n_seeds, n_params)`` tensor whose per-layer weight/bias arrays are
    *views* (``theta[:, w_slice].reshape(n_seeds, fan_in, fan_out)``), so one
    broadcast forward/backward step advances every seed at once.  All seeds
    must share one architecture (see :func:`fit_job_signature`) **and one
    minibatch shape per step**: a 3-D ``matmul`` runs each seed's slice
    through the same 2-D gemm the single-seed path runs, so same-shape
    stacking is bit-transparent, whereas zero-padding ragged rows is *not*
    (BLAS picks row-count-dependent kernels — a padded gemm's first rows can
    differ from the unpadded gemm's in the last ulp).  That is why
    :func:`fit_batched` buckets jobs by dataset geometry instead of padding.

    Per-seed loss reduction (no cross-seed leakage) happens over each seed's
    own contiguous ``(rows, out)`` block, the same shape the single-seed
    path reduces, so NumPy's pairwise summation takes the same tree and the
    same bits.  Weights move between the stacked tensor and the per-seed
    models through :meth:`gather` / :meth:`scatter`, which copy the flat
    buffers directly (the flat layout *is* the ``state_dict`` layout, W0 b0
    W1 b1 ...), so checkpoint snapshots keep their per-member format.
    Parity is locked by ``tests/test_batched_refit.py``.
    """

    def __init__(self, template: FusedMLP, n_seeds: int) -> None:
        if n_seeds < 1:
            raise ValueError(f"n_seeds must be >= 1, got {n_seeds}")
        self.n_seeds = n_seeds
        self.in_features = template.in_features
        self.out_features = template.out_features
        self.hidden = template.hidden
        self._activations = template._activations
        self._shapes = list(template._shapes)
        total = template.num_parameters
        self.theta = np.empty((n_seeds, total), dtype=np.float64)
        self._grad = np.empty((n_seeds, total), dtype=np.float64)
        self._scratch: Dict[int, tuple] = {}
        self._weights: List[np.ndarray] = []
        self._biases: List[np.ndarray] = []
        self._grad_weights: List[np.ndarray] = []
        self._grad_biases: List[np.ndarray] = []
        offset = 0
        for fan_in, fan_out in self._shapes:
            w_slice = slice(offset, offset + fan_in * fan_out)
            offset += fan_in * fan_out
            b_slice = slice(offset, offset + fan_out)
            offset += fan_out
            self._weights.append(self.theta[:, w_slice].reshape(n_seeds, fan_in, fan_out))
            self._biases.append(self.theta[:, b_slice])
            self._grad_weights.append(
                self._grad[:, w_slice].reshape(n_seeds, fan_in, fan_out)
            )
            self._grad_biases.append(self._grad[:, b_slice])

    @property
    def num_parameters(self) -> int:
        return self.theta.shape[1]

    def gather(self, models: Sequence[FusedMLP]) -> None:
        """Copy each model's flat parameter vector into the stacked tensor."""
        if len(models) != self.n_seeds:
            raise ValueError(f"expected {self.n_seeds} models, got {len(models)}")
        for index, model in enumerate(models):
            if model._shapes != self._shapes or model._activations != self._activations:
                raise ValueError(f"model {index} architecture does not match the template")
            self.theta[index] = model.theta

    def scatter(self, models: Sequence[FusedMLP]) -> None:
        """Write the stacked parameters back into the per-seed models."""
        if len(models) != self.n_seeds:
            raise ValueError(f"expected {self.n_seeds} models, got {len(models)}")
        for index, model in enumerate(models):
            model.theta[...] = self.theta[index]

    def _scratch_for(self, rows: int) -> tuple:
        """Stacked per-layer buffers for a given minibatch row count.

        Same role as :meth:`FusedMLP._scratch_for` with a leading seed axis;
        allocated once per distinct row count, then reused.
        """
        cached = self._scratch.get(rows)
        if cached is None:
            z_buffers, a_buffers, g_buffers, tmp_buffers = [], [], [], []
            for (_, fan_out), act in zip(self._shapes, self._activations):
                # analysis: allow(hot-loop-alloc) one-time scratch per row count
                z = np.empty((self.n_seeds, rows, fan_out))
                z_buffers.append(z)
                if act == "identity":
                    a_buffers.append(z)
                else:
                    # analysis: allow(hot-loop-alloc) one-time scratch
                    a_buffers.append(np.empty((self.n_seeds, rows, fan_out)))
                # analysis: allow(hot-loop-alloc) one-time scratch
                g_buffers.append(np.empty((self.n_seeds, rows, fan_out)))
                # analysis: allow(hot-loop-alloc) one-time scratch
                tmp_buffers.append(np.empty((self.n_seeds, rows, fan_out)))
            cached = (z_buffers, a_buffers, g_buffers, tmp_buffers)
            self._scratch[rows] = cached
        return cached

    def loss_and_grad(self, inputs: np.ndarray, targets: np.ndarray) -> List[float]:
        """One fused MSE step over all seeds at once.

        ``inputs``/``targets`` are ``(n_seeds, rows, features)`` — every
        seed contributes the same number of rows (callers bucket by
        geometry), so every ``matmul``/ufunc below is the single-seed op
        with one leading batch axis and the bits come out identical to
        ``n_seeds`` independent :meth:`FusedMLP.loss_and_grad` calls.

        Returns the per-seed losses; the gradients land in ``self._grad``
        (valid until the next call).
        """
        rows = inputs.shape[1]
        weights, biases = self._weights, self._biases
        activations = self._activations
        last = len(weights) - 1
        if inputs.shape[0] != self.n_seeds or targets.shape != (
            self.n_seeds, rows, self._shapes[last][1]
        ):
            raise ValueError(
                f"batched step expects inputs ({self.n_seeds}, rows, in) and "
                f"matching targets, got {inputs.shape} / {targets.shape}"
            )
        z_buffers, a_buffers, g_buffers, tmp_buffers = self._scratch_for(rows)

        # Forward, caching pre- and post-activation values per layer.
        h = inputs
        for index in range(last + 1):
            z = z_buffers[index]
            np.matmul(h, weights[index], out=z)
            np.add(z, biases[index][:, None, :], out=z)
            act = activations[index]
            if act == "tanh":
                h = np.tanh(z, out=a_buffers[index])
            elif act == "relu":
                h = np.maximum(z, 0.0, out=a_buffers[index])
            elif act == "sigmoid":
                a = a_buffers[index]
                np.negative(z, out=a)
                np.exp(a, out=a)
                np.add(a, 1.0, out=a)
                h = np.divide(1.0, a, out=a)
            else:
                h = z
        prediction = h

        # Loss and its gradient seed.  The per-seed mean divides by one
        # seed's element count, and each seed's sum reduces its own
        # contiguous (rows, out) block — same tree, same bits as solo.
        diff = g_buffers[last]
        np.subtract(prediction, targets, out=diff)
        squared = tmp_buffers[last]
        np.multiply(diff, diff, out=squared)
        inv_count = 1.0 / (rows * self._shapes[last][1])
        losses = [
            float(squared[index].sum() * inv_count) for index in range(self.n_seeds)
        ]
        np.multiply(diff, inv_count, out=diff)
        grad_out = np.add(diff, diff, out=diff)

        # Backward through the stack, writing straight into the flat grads.
        for index in range(last, -1, -1):
            act = activations[index]
            if act == "tanh":
                a, tmp = a_buffers[index], tmp_buffers[index]
                np.multiply(a, a, out=tmp)
                np.subtract(1.0, tmp, out=tmp)
                np.multiply(grad_out, tmp, out=grad_out)
            elif act == "relu":
                np.multiply(grad_out, z_buffers[index] > 0.0, out=grad_out)
            elif act == "sigmoid":
                a, tmp = a_buffers[index], tmp_buffers[index]
                np.multiply(grad_out, a, out=grad_out)
                np.subtract(1.0, a, out=tmp)
                np.multiply(grad_out, tmp, out=grad_out)
            h = inputs if index == 0 else a_buffers[index - 1]
            np.matmul(h.transpose(0, 2, 1), grad_out, out=self._grad_weights[index])
            np.add.reduce(grad_out, axis=1, out=self._grad_biases[index])
            if index > 0:
                grad_out = np.matmul(
                    grad_out,
                    weights[index].transpose(0, 2, 1),
                    out=g_buffers[index - 1],
                )
        return losses

    def __repr__(self) -> str:
        return (
            f"BatchedFusedMLP(seeds={self.n_seeds}, in={self.in_features}, "
            f"hidden={self.hidden}, out={self.out_features}, "
            f"params={self.num_parameters})"
        )


class BatchedFusedAdam:
    """Adam over the ``(n_seeds, n_params)`` stacked parameter tensor.

    Runs :class:`FusedAdam`'s exact ``out=`` update sequence with a leading
    seed axis.  Each seed keeps its own integer step count (seeds may
    arrive mid-training with different histories), and the bias corrections
    are computed with the same Python ``**`` on that count
    (:func:`repro.nn.optim.bias_correction`) before broadcasting, so every
    seed's update is bit-identical to its solo :class:`FusedAdam` one.
    """

    def __init__(
        self,
        model: BatchedFusedMLP,
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        self.model = model
        self.theta = model.theta
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = np.zeros_like(self.theta)
        self._v = np.zeros_like(self.theta)
        self._s1 = np.empty_like(self.theta)
        self._s2 = np.empty_like(self.theta)
        self._t: List[int] = [0] * model.n_seeds
        # Per-seed bias-correction denominators, broadcast over parameters.
        self._bc1 = np.empty((model.n_seeds, 1), dtype=np.float64)
        self._bc2 = np.empty((model.n_seeds, 1), dtype=np.float64)

    def gather(self, optimizers: Sequence[FusedAdam]) -> None:
        """Copy each seed's Adam moments and step count into the stack."""
        if len(optimizers) != self.model.n_seeds:
            raise ValueError(
                f"expected {self.model.n_seeds} optimizers, got {len(optimizers)}"
            )
        for index, optimizer in enumerate(optimizers):
            self._m[index] = optimizer._m
            self._v[index] = optimizer._v
            self._t[index] = optimizer._t

    def scatter(self, optimizers: Sequence[FusedAdam]) -> None:
        """Write the stacked moments and step counts back per seed."""
        if len(optimizers) != self.model.n_seeds:
            raise ValueError(
                f"expected {self.model.n_seeds} optimizers, got {len(optimizers)}"
            )
        for index, optimizer in enumerate(optimizers):
            optimizer._m[...] = self._m[index]
            optimizer._v[...] = self._v[index]
            optimizer._t = self._t[index]

    def step(self, grad: np.ndarray) -> None:
        """Apply one Adam update across all seeds for the stacked gradient."""
        if grad.shape != self.theta.shape:
            raise ValueError(f"gradient shape {grad.shape} vs theta {self.theta.shape}")
        if self.weight_decay:
            grad = grad + self.weight_decay * self.theta
        m, v, s1, s2 = self._m, self._v, self._s1, self._s2
        bc1, bc2 = self._bc1, self._bc2
        for index in range(self.model.n_seeds):
            step_count = self._t[index] + 1
            self._t[index] = step_count
            bc1[index, 0] = bias_correction(self.beta1, step_count)
            bc2[index, 0] = bias_correction(self.beta2, step_count)
        # m = beta1*m + (1-beta1)*grad
        np.multiply(m, self.beta1, out=m)
        np.multiply(grad, 1.0 - self.beta1, out=s1)
        np.add(m, s1, out=m)
        # v = beta2*v + (1-beta2)*grad^2
        np.multiply(v, self.beta2, out=v)
        np.multiply(grad, grad, out=s1)
        np.multiply(s1, 1.0 - self.beta2, out=s1)
        np.add(v, s1, out=v)
        # theta -= lr * m_hat / (sqrt(v_hat) + eps), per-seed bias terms
        np.divide(m, bc1, out=s1)
        np.divide(v, bc2, out=s2)
        np.sqrt(s2, out=s2)
        np.add(s2, self.eps, out=s2)
        np.multiply(s1, self.lr, out=s1)
        np.divide(s1, s2, out=s1)
        np.subtract(self.theta, s1, out=self.theta)


@dataclass
class FusedFitJob:
    """One seed's pending training run, as consumed by :func:`fit_batched`.

    Exactly the arguments :meth:`FusedMLP.fit` would take, bundled so a
    round's worth of refits can be collected first and dispatched together.
    """

    model: FusedMLP
    adam: FusedAdam
    inputs: np.ndarray
    targets: np.ndarray
    epochs: int
    batch_size: int
    rng: np.random.Generator


def fit_job_signature(job: FusedFitJob) -> tuple:
    """Grouping key for jobs that may share one batched kernel dispatch.

    Jobs in one :func:`fit_batched` call must agree on architecture and
    Adam hyper-parameters; dataset geometry may differ (``fit_batched``
    buckets by it internally).  Callers bucket by this key first.
    """
    model, adam = job.model, job.adam
    return (
        model.in_features,
        tuple(model.hidden),
        model.out_features,
        model._activations,
        adam.lr,
        adam.beta1,
        adam.beta2,
        adam.eps,
        adam.weight_decay,
    )


def _fit_bucket(jobs: List[FusedFitJob], inputs_list: List[np.ndarray],
                targets_list: List[np.ndarray]) -> List[List[float]]:
    """Lockstep-train jobs that share one dataset geometry.

    All jobs have the same (row count, batch size, epochs), so each global
    step runs one stacked forward/backward/Adam update in which every
    seed's slice has the single-seed shapes — the bit-transparent case.
    Each seed draws its epoch permutations from its own generator, in the
    same order the sequential path would.
    """
    n = len(jobs)
    count = inputs_list[0].shape[0]
    epochs, batch_size = jobs[0].epochs, jobs[0].batch_size
    batched = BatchedFusedMLP(jobs[0].model, n)
    batched.gather([job.model for job in jobs])
    adam = BatchedFusedAdam(
        batched,
        lr=jobs[0].adam.lr,
        betas=(jobs[0].adam.beta1, jobs[0].adam.beta2),
        eps=jobs[0].adam.eps,
        weight_decay=jobs[0].adam.weight_decay,
    )
    adam.gather([job.adam for job in jobs])

    shuf_x = np.empty((n, count, batched.in_features))
    shuf_y = np.empty((n, count, batched.out_features))
    grad = batched._grad
    epoch_losses: List[List[float]] = [[] for _ in range(n)]
    step_losses: List[List[float]] = [[] for _ in range(n)]
    for _ in range(epochs):
        for index, job in enumerate(jobs):
            permutation = job.rng.permutation(count)
            np.take(inputs_list[index], permutation, axis=0, out=shuf_x[index])
            np.take(targets_list[index], permutation, axis=0, out=shuf_y[index])
        for start in range(0, count, batch_size):
            stop = min(start + batch_size, count)
            losses = batched.loss_and_grad(
                shuf_x[:, start:stop], shuf_y[:, start:stop]
            )
            adam.step(grad)
            for index in range(n):
                step_losses[index].append(losses[index])
        for index in range(n):
            epoch_losses[index].append(float(np.mean(step_losses[index])))
            step_losses[index].clear()

    batched.scatter([job.model for job in jobs])
    adam.scatter([job.adam for job in jobs])
    return epoch_losses


def fit_batched(jobs: Sequence[FusedFitJob]) -> List[List[float]]:
    """Train every job's model through stacked kernels; bit-identical bits.

    Jobs must share one architecture and Adam hyper-parameters
    (:func:`fit_job_signature`); within that, they are bucketed by dataset
    geometry — ``(rows, batch_size, epochs)`` — and each bucket trains in
    lockstep through one :class:`BatchedFusedMLP`/:class:`BatchedFusedAdam`
    stack.  Bucketing (rather than pad-and-mask) is what preserves bitwise
    parity: BLAS gemm kernels are row-count-dependent in the last ulp, so
    only same-shape stacking is safe.  In the campaign the live members of
    a phase share geometry (same round, same schedule), which is exactly
    where the refit time is spent.  Ragged stragglers simply land in
    smaller buckets; a one-job bucket degenerates to the sequential
    computation on stacked views.

    Returns each job's per-epoch mean losses, in input order.
    """
    if not jobs:
        return []
    reference = fit_job_signature(jobs[0])
    for job in jobs[1:]:
        if fit_job_signature(job) != reference:
            raise ValueError(
                "fit_batched needs jobs sharing one architecture and Adam "
                "hyper-parameters; bucket by fit_job_signature first"
            )

    inputs_list: List[np.ndarray] = []
    targets_list: List[np.ndarray] = []
    for job in jobs:
        # Cold per-dispatch coercion, mirroring train_regressor's (a no-op
        # for the float64 2-D views the search hands over).
        # analysis: allow(hot-loop-alloc)
        inputs = np.atleast_2d(np.asarray(job.inputs, dtype=np.float64))
        # analysis: allow(hot-loop-alloc)
        targets = np.atleast_2d(np.asarray(job.targets, dtype=np.float64))
        if inputs.shape[0] != targets.shape[0] or inputs.shape[0] < 1:
            raise ValueError(
                f"job has {inputs.shape[0]} input rows vs {targets.shape[0]} target rows"
            )
        if job.epochs < 0 or job.batch_size < 1:
            raise ValueError(f"bad epochs/batch_size: {job.epochs}/{job.batch_size}")
        inputs_list.append(inputs)
        targets_list.append(targets)

    buckets: Dict[tuple, List[int]] = {}
    for index, job in enumerate(jobs):
        key = (inputs_list[index].shape[0], job.batch_size, job.epochs)
        buckets.setdefault(key, []).append(index)

    results: List[List[float]] = [[] for _ in jobs]
    for (_, batch_size, epochs), indices in buckets.items():
        if epochs == 0:
            continue
        if len(indices) == 1:
            # A lone job gains nothing from the stacked views; run it
            # through the very kernel the sequential path runs (trivially
            # bit-identical, and none of the gather/stack overhead).
            index = indices[0]
            job = jobs[index]
            results[index] = job.model.fit(
                inputs_list[index],
                targets_list[index],
                epochs,
                batch_size,
                job.adam,
                job.rng,
            )
            continue
        bucket_losses = _fit_bucket(
            [jobs[i] for i in indices],
            [inputs_list[i] for i in indices],
            [targets_list[i] for i in indices],
        )
        for position, original in enumerate(indices):
            results[original] = bucket_losses[position]
    return results
