"""Fused pure-NumPy training backend for the surrogate MLP.

The autodiff path (:mod:`repro.autodiff`) builds a Python-object graph for
every minibatch — hundreds of ``Tensor`` allocations, backward closures and a
topological sort per step.  For the tiny fixed-architecture MLP the search
refits every iteration (Algorithm 1, line 8) that bookkeeping *is* the cost:
the smoke benchmark spends ~90% of its wall time inside ``train_regressor``.

:class:`FusedMLP` removes it.  The forward pass, the hand-derived backward
pass (Linear / tanh / relu / sigmoid stacks under an MSE loss) and a
flat-buffer :class:`FusedAdam` all operate on one concatenated ``float64``
parameter vector, so a training step is a fixed, small sequence of NumPy
calls with no per-op Python structures.

Every floating-point expression below is written to match the autodiff
engine's backward pass operation for operation (same order, same
power-of-two factors), so the two backends produce **bit-identical** losses,
gradients and post-Adam weights on the same minibatch stream.  That property
is what lets the search switch backend without re-locking its trajectories,
and it is enforced by ``tests/test_fused.py``.

Weights round-trip with the autodiff :class:`~repro.nn.modules.MLP` via
:meth:`FusedMLP.from_module` / :meth:`FusedMLP.to_module`, and the
``state_dict`` layout (``param_0`` = first weight, ``param_1`` = first bias,
...) is interchangeable between the two classes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.contracts import ArraySpec, contract
from repro.nn.modules import MLP, Activation, Linear
from repro.obs import span


class FusedMLP:
    """An MLP whose parameters live in one flat ``float64`` buffer.

    Accepts the same constructor arguments as :class:`repro.nn.modules.MLP`
    and performs the same RNG draws, so ``FusedMLP(..., rng=g)`` and
    ``MLP(..., rng=g2)`` with identically-seeded generators start from
    bit-identical weights.

    Attributes
    ----------
    theta:
        The concatenated parameter vector.  Per-layer weight/bias arrays are
        *views* into it, so a flat optimizer step updates the layers in place.
    """

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        out_features: int,
        activation: str = "tanh",
        output_activation: str = "identity",
        rng: Optional[np.random.Generator] = None,
        init: str = "xavier",
    ) -> None:
        # Delegate initialization to the reference module so the two classes
        # can never drift on init schemes or RNG draw order.
        template = MLP(
            in_features,
            hidden,
            out_features,
            activation=activation,
            output_activation=output_activation,
            rng=rng,
            init=init,
        )
        self._adopt(template)

    # ------------------------------------------------------------------
    # Construction / module interop
    # ------------------------------------------------------------------
    def _adopt(self, module: MLP) -> None:
        """Read architecture and weights out of an autodiff MLP."""
        linears: List[Linear] = []
        activations: List[str] = []
        for layer in module.body.layers:
            if isinstance(layer, Linear):
                linears.append(layer)
                activations.append("identity")
            elif isinstance(layer, Activation):
                if not linears:
                    raise ValueError("activation before the first Linear layer")
                activations[-1] = layer.name
            else:
                raise TypeError(
                    f"FusedMLP only supports Linear/Activation stacks, got {type(layer).__name__}"
                )
        if not linears:
            raise ValueError("module has no Linear layers")

        self.in_features = module.in_features
        self.out_features = module.out_features
        self.hidden = module.hidden
        self._activations: Tuple[str, ...] = tuple(activations)
        self._shapes: List[Tuple[int, int]] = [
            (layer.in_features, layer.out_features) for layer in linears
        ]

        total = sum(i * o + o for i, o in self._shapes)
        self.theta = np.empty(total, dtype=np.float64)
        # The per-step gradient lives in a single reusable buffer; per-layer
        # weight/bias gradients are views into it so the backward pass can
        # write matmul results straight into place with ``out=``.  The array
        # returned by :meth:`loss_and_grad` is therefore only valid until the
        # next call — copy it to keep it.
        self._grad = np.empty(total, dtype=np.float64)
        # Per-batch-size scratch buffers for every forward/backward
        # intermediate (see _scratch_for); the training step performs no
        # heap allocation after the first batch of a given size.
        self._scratch: Dict[int, tuple] = {}
        self._weights: List[np.ndarray] = []
        self._biases: List[np.ndarray] = []
        self._grad_weights: List[np.ndarray] = []
        self._grad_biases: List[np.ndarray] = []
        offset = 0
        for layer, (fan_in, fan_out) in zip(linears, self._shapes):
            w_slice = slice(offset, offset + fan_in * fan_out)
            offset += fan_in * fan_out
            b_slice = slice(offset, offset + fan_out)
            offset += fan_out
            weight = self.theta[w_slice].reshape(fan_in, fan_out)
            bias = self.theta[b_slice]
            weight[...] = layer.weight.data
            bias[...] = layer.bias.data
            self._weights.append(weight)
            self._biases.append(bias)
            self._grad_weights.append(self._grad[w_slice].reshape(fan_in, fan_out))
            self._grad_biases.append(self._grad[b_slice])

    @classmethod
    def from_module(cls, module: MLP) -> "FusedMLP":
        """Build a fused copy of an autodiff MLP (weights are copied)."""
        fused = cls.__new__(cls)
        fused._adopt(module)
        return fused

    def to_module(self, module: Optional[MLP] = None) -> MLP:
        """Write the flat weights into an autodiff MLP (new one by default)."""
        if module is None:
            module = MLP(
                self.in_features,
                self.hidden,
                self.out_features,
                activation=self._activations[0] if len(self._activations) > 1 else "tanh",
                output_activation=self._activations[-1],
            )
        module.load_state_dict(self.state_dict())
        return module

    # ------------------------------------------------------------------
    # Serialization (interchangeable with Module.state_dict)
    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        return self.theta.size

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Parameter arrays in ``MLP.parameters()`` order (W0, b0, W1, ...)."""
        state: Dict[str, np.ndarray] = {}
        index = 0
        for weight, bias in zip(self._weights, self._biases):
            # analysis: allow(hot-loop-alloc) serialization is cold by design
            state[f"param_{index}"] = weight.copy()
            state[f"param_{index + 1}"] = bias.copy()  # analysis: allow(hot-loop-alloc)
            index += 2
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        arrays = [self._weights[i // 2] if i % 2 == 0 else self._biases[i // 2]
                  for i in range(2 * len(self._weights))]
        if len(state) != len(arrays):
            raise ValueError(
                f"state has {len(state)} entries but model has {len(arrays)} parameters"
            )
        for i, target in enumerate(arrays):
            # analysis: allow(hot-loop-alloc) deserialization is cold by design
            incoming = np.asarray(state[f"param_{i}"], dtype=np.float64)
            if incoming.shape != target.shape:
                raise ValueError(
                    f"parameter {i} shape mismatch: {incoming.shape} vs {target.shape}"
                )
            target[...] = incoming

    # ------------------------------------------------------------------
    # Forward / fused backward
    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference forward pass on raw arrays."""
        if not (isinstance(x, np.ndarray) and x.ndim == 2 and x.dtype == np.float64):
            x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        h = x
        for weight, bias, act in zip(self._weights, self._biases, self._activations):
            h = Activation.apply_numpy(act, h @ weight + bias)
        return h

    __call__ = predict

    def _scratch_for(self, rows: int) -> tuple:
        """Reusable per-layer buffers for a given minibatch row count.

        ``z``/``a`` hold pre-/post-activation values (aliased for identity
        layers), ``g`` the backward gradients per layer, ``tmp`` activation-
        derivative workspace (the last entry doubles as the squared-error
        buffer).  Allocated once per distinct batch size, then reused.
        """
        cached = self._scratch.get(rows)
        if cached is None:
            z_buffers, a_buffers, g_buffers, tmp_buffers = [], [], [], []
            # The allocations below run once per distinct batch size and are
            # what keeps loss_and_grad itself allocation-free.
            for (_, fan_out), act in zip(self._shapes, self._activations):
                z = np.empty((rows, fan_out))  # analysis: allow(hot-loop-alloc)
                z_buffers.append(z)
                # analysis: allow(hot-loop-alloc) one-time scratch
                a_buffers.append(z if act == "identity" else np.empty((rows, fan_out)))
                g_buffers.append(np.empty((rows, fan_out)))  # analysis: allow(hot-loop-alloc)
                tmp_buffers.append(np.empty((rows, fan_out)))  # analysis: allow(hot-loop-alloc)
            cached = (z_buffers, a_buffers, g_buffers, tmp_buffers)
            self._scratch[rows] = cached
        return cached

    def loss_and_grad(self, inputs: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        """One fused MSE step: scalar loss plus the flat gradient vector.

        The expressions mirror the autodiff chain for
        ``mse_loss(model(Tensor(x)), Tensor(y)).backward()`` term by term:
        the mean splits into ``sum * (1/size)``, the squared difference
        contributes its gradient twice (``g + g`` rather than ``2*g`` — the
        same bits either way), and each layer differentiates in the same
        operand order as the Tensor closures.  Every intermediate lands in a
        per-batch-size scratch buffer via ``out=``, so a step is a fixed
        sequence of allocation-free NumPy calls.

        The returned gradient is a reusable internal buffer, overwritten by
        the next ``loss_and_grad`` call; copy it if you need to keep it.
        """
        if not (isinstance(inputs, np.ndarray) and inputs.ndim == 2
                and inputs.dtype == np.float64):
            inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        if not (isinstance(targets, np.ndarray) and targets.ndim == 2
                and targets.dtype == np.float64):
            targets = np.atleast_2d(np.asarray(targets, dtype=np.float64))
        weights, biases, activations = self._weights, self._biases, self._activations
        last = len(weights) - 1
        if targets.shape != (inputs.shape[0], weights[last].shape[1]):
            raise ValueError(
                f"targets shape {targets.shape} does not match "
                f"({inputs.shape[0]}, {weights[last].shape[1]})"
            )
        z_buffers, a_buffers, g_buffers, tmp_buffers = self._scratch_for(inputs.shape[0])

        # Forward, caching pre- and post-activation values per layer.
        h = inputs
        for index in range(last + 1):
            z = z_buffers[index]
            np.matmul(h, weights[index], out=z)
            np.add(z, biases[index], out=z)
            act = activations[index]
            if act == "tanh":
                h = np.tanh(z, out=a_buffers[index])
            elif act == "relu":
                h = np.maximum(z, 0.0, out=a_buffers[index])
            elif act == "sigmoid":
                a = a_buffers[index]
                np.negative(z, out=a)
                np.exp(a, out=a)
                np.add(a, 1.0, out=a)
                h = np.divide(1.0, a, out=a)
            else:
                h = z
        prediction = h

        # Loss and its gradient seed.
        diff = g_buffers[last]
        np.subtract(prediction, targets, out=diff)
        squared = tmp_buffers[last]
        np.multiply(diff, diff, out=squared)
        inv_count = 1.0 / diff.size
        loss = float(squared.sum() * inv_count)
        np.multiply(diff, inv_count, out=diff)
        grad_out = np.add(diff, diff, out=diff)

        # Backward through the stack, writing straight into the flat grad.
        for index in range(last, -1, -1):
            act = activations[index]
            if act == "tanh":
                a, tmp = a_buffers[index], tmp_buffers[index]
                np.multiply(a, a, out=tmp)
                np.subtract(1.0, tmp, out=tmp)
                np.multiply(grad_out, tmp, out=grad_out)
            elif act == "relu":
                np.multiply(grad_out, z_buffers[index] > 0.0, out=grad_out)
            elif act == "sigmoid":
                a, tmp = a_buffers[index], tmp_buffers[index]
                np.multiply(grad_out, a, out=grad_out)
                np.subtract(1.0, a, out=tmp)
                np.multiply(grad_out, tmp, out=grad_out)
            h = inputs if index == 0 else a_buffers[index - 1]
            np.matmul(h.T, grad_out, out=self._grad_weights[index])
            np.add.reduce(grad_out, axis=0, out=self._grad_biases[index])
            if index > 0:
                grad_out = np.matmul(grad_out, weights[index].T, out=g_buffers[index - 1])
        return loss, self._grad

    @contract(
        args={"inputs": ArraySpec("n", None), "targets": ArraySpec("n", None)},
        frozen=("inputs", "targets"),
    )
    @span("nn.fused_fit")
    def fit(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        epochs: int,
        batch_size: int,
        optimizer: "FusedAdam",
        rng: np.random.Generator,
    ) -> List[float]:
        """Tight minibatch-Adam loop; returns the per-epoch mean losses.

        Matches :func:`repro.nn.training.iterate_minibatches` semantics and
        RNG consumption exactly (one permutation drawn per epoch, batches
        taken in permuted order), but gathers each epoch's shuffle once and
        hands contiguous slices to :meth:`loss_and_grad` — the same bits at
        a fraction of the per-batch Python overhead.
        """
        count = inputs.shape[0]
        loss_and_grad = self.loss_and_grad
        step = optimizer.step
        epoch_losses: List[float] = []
        for _ in range(epochs):
            order = rng.permutation(count)
            shuffled_x = inputs[order]
            shuffled_y = targets[order]
            losses = []
            for start in range(0, count, batch_size):
                stop = start + batch_size
                loss, grad = loss_and_grad(shuffled_x[start:stop], shuffled_y[start:stop])
                step(grad)
                losses.append(loss)
            epoch_losses.append(float(np.mean(losses)))
        return epoch_losses

    def __repr__(self) -> str:
        return (
            f"FusedMLP(in={self.in_features}, hidden={self.hidden}, "
            f"out={self.out_features}, params={self.num_parameters})"
        )


class FusedAdam:
    """Adam over one flat parameter vector.

    Performs the same elementwise update sequence as
    :class:`repro.nn.optim.Adam` (same ``m``/``v`` recurrences, same bias
    correction, same epsilon placement), just on the concatenated buffer —
    so its steps are bit-identical to the per-parameter optimizer's.
    """

    def __init__(
        self,
        model: FusedMLP,
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        self.model = model
        self.theta = model.theta
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = np.zeros_like(self.theta)
        self._v = np.zeros_like(self.theta)
        # Scratch buffers so a step performs zero heap allocations; every
        # ``out=`` rewrite below computes the same value, in the same
        # rounding order, as the plain-expression per-parameter optimizer.
        self._s1 = np.empty_like(self.theta)
        self._s2 = np.empty_like(self.theta)
        self._t = 0

    def state_dict(self) -> Dict[str, object]:
        """The optimizer moments and step count, for checkpoint/resume."""
        return {"t": self._t, "m": self._m.copy(), "v": self._v.copy()}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore :meth:`state_dict` output (flat shapes must match)."""
        for name, source in (("m", state["m"]), ("v", state["v"])):
            if source.shape != self.theta.shape:
                raise ValueError(
                    f"moment {name!r} has shape {source.shape}, "
                    f"theta is {self.theta.shape}"
                )
        self._m[...] = state["m"]
        self._v[...] = state["v"]
        self._t = int(state["t"])

    def step(self, grad: np.ndarray) -> None:
        """Apply one Adam update for the given flat gradient."""
        if grad.shape != self.theta.shape:
            raise ValueError(f"gradient shape {grad.shape} vs theta {self.theta.shape}")
        self._t += 1
        if self.weight_decay:
            grad = grad + self.weight_decay * self.theta
        m, v, s1, s2 = self._m, self._v, self._s1, self._s2
        # m = beta1*m + (1-beta1)*grad
        np.multiply(m, self.beta1, out=m)
        np.multiply(grad, 1.0 - self.beta1, out=s1)
        np.add(m, s1, out=m)
        # v = beta2*v + (1-beta2)*grad^2
        np.multiply(v, self.beta2, out=v)
        np.multiply(grad, grad, out=s1)
        np.multiply(s1, 1.0 - self.beta2, out=s1)
        np.add(v, s1, out=v)
        # theta -= lr * m_hat / (sqrt(v_hat) + eps)
        np.divide(m, 1.0 - self.beta1 ** self._t, out=s1)
        np.divide(v, 1.0 - self.beta2 ** self._t, out=s2)
        np.sqrt(s2, out=s2)
        np.add(s2, self.eps, out=s2)
        np.multiply(s1, self.lr, out=s1)
        np.divide(s1, s2, out=s1)
        np.subtract(self.theta, s1, out=self.theta)
