"""Feature scaling helpers.

The surrogate network is trained on the fly from a handful of SPICE samples,
so robust input/output normalisation matters much more than architecture.
Two scalers are provided: a standard (z-score) scaler and a min-max scaler.
Both tolerate degenerate (constant) columns, and both validate the feature
dimension on every transform — NumPy broadcasting would otherwise happily
"normalise" an array with the wrong column count into garbage.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def _validated_2d(data: np.ndarray, fitted_features: int, operation: str) -> np.ndarray:
    """Coerce to (count, features) float64 and check the column count."""
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    if data.shape[1] != fitted_features:
        raise ValueError(
            f"{operation} expects {fitted_features} feature column(s), "
            f"got array of shape {data.shape}"
        )
    return data


class StandardScaler:
    """Per-column z-score normalisation with constant-column protection."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, data: np.ndarray) -> "StandardScaler":
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        self.mean_ = data.mean(axis=0)
        std = data.std(axis=0)
        std[std < 1e-12] = 1.0
        self.std_ = std
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("scaler must be fitted before transform")
        return (_validated_2d(data, len(self.mean_), "transform") - self.mean_) / self.std_

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("scaler must be fitted before inverse_transform")
        return _validated_2d(data, len(self.mean_), "inverse_transform") * self.std_ + self.mean_


class MinMaxScaler:
    """Scale each column into [0, 1] with constant-column protection."""

    def __init__(self) -> None:
        self.low_: Optional[np.ndarray] = None
        self.span_: Optional[np.ndarray] = None

    def fit(self, data: np.ndarray) -> "MinMaxScaler":
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        self.low_ = data.min(axis=0)
        span = data.max(axis=0) - self.low_
        span[span < 1e-12] = 1.0
        self.span_ = span
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        if self.low_ is None or self.span_ is None:
            raise RuntimeError("scaler must be fitted before transform")
        return (_validated_2d(data, len(self.low_), "transform") - self.low_) / self.span_

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        if self.low_ is None or self.span_ is None:
            raise RuntimeError("scaler must be fitted before inverse_transform")
        return _validated_2d(data, len(self.low_), "inverse_transform") * self.span_ + self.low_
