"""Feature scaling helpers.

The surrogate network is trained on the fly from a handful of SPICE samples,
so robust input/output normalisation matters much more than architecture.
Two scalers are provided: a standard (z-score) scaler and a min-max scaler.
Both tolerate degenerate (constant) columns.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class StandardScaler:
    """Per-column z-score normalisation with constant-column protection."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, data: np.ndarray) -> "StandardScaler":
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        self.mean_ = data.mean(axis=0)
        std = data.std(axis=0)
        std[std < 1e-12] = 1.0
        self.std_ = std
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("scaler must be fitted before transform")
        return (np.atleast_2d(np.asarray(data, dtype=np.float64)) - self.mean_) / self.std_

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("scaler must be fitted before inverse_transform")
        return np.atleast_2d(np.asarray(data, dtype=np.float64)) * self.std_ + self.mean_


class MinMaxScaler:
    """Scale each column into [0, 1] with constant-column protection."""

    def __init__(self) -> None:
        self.low_: Optional[np.ndarray] = None
        self.span_: Optional[np.ndarray] = None

    def fit(self, data: np.ndarray) -> "MinMaxScaler":
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        self.low_ = data.min(axis=0)
        span = data.max(axis=0) - self.low_
        span[span < 1e-12] = 1.0
        self.span_ = span
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        if self.low_ is None or self.span_ is None:
            raise RuntimeError("scaler must be fitted before transform")
        return (np.atleast_2d(np.asarray(data, dtype=np.float64)) - self.low_) / self.span_

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        if self.low_ is None or self.span_ is None:
            raise RuntimeError("scaler must be fitted before inverse_transform")
        return np.atleast_2d(np.asarray(data, dtype=np.float64)) * self.span_ + self.low_
