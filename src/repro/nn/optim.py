"""Gradient-based optimizers for :mod:`repro.nn` modules."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.autodiff import Tensor


def bias_correction(beta: float, t: int) -> float:
    """Adam's ``1 - beta**t`` debiasing denominator.

    Every Adam flavour in the repo (:class:`Adam`,
    :class:`repro.nn.fused.FusedAdam`,
    :class:`repro.nn.fused.BatchedFusedAdam`) must compute this with the
    same Python ``**`` on the integer step count — sharing the helper keeps
    their bits from drifting apart.
    """
    return 1.0 - beta ** t


class Optimizer:
    """Base class holding parameter references."""

    def __init__(self, parameters: Iterable[Tensor]) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            velocity *= self.momentum
            velocity -= self.lr * grad
            param.data += velocity


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def state_dict(self) -> Dict[str, object]:
        """The optimizer moments and step count, for checkpoint/resume."""
        return {
            "t": self._t,
            "m": [moment.copy() for moment in self._m],
            "v": [moment.copy() for moment in self._v],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore :meth:`state_dict` output (shapes must match)."""
        if len(state["m"]) != len(self._m):
            raise ValueError(
                f"state has {len(state['m'])} moment arrays, "
                f"optimizer has {len(self._m)} parameters"
            )
        for target, source in zip(self._m, state["m"]):
            target[...] = source
        for target, source in zip(self._v, state["v"]):
            target[...] = source
        self._t = int(state["t"])

    def step(self) -> None:
        self._t += 1
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias_correction(self.beta1, self._t)
            v_hat = v / bias_correction(self.beta2, self._t)
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is at most ``max_norm``.

    Returns the norm before clipping.
    """
    parameters = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in parameters)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for param in parameters:
            param.grad *= scale
    return total
