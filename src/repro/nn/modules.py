"""Neural network modules built on the :mod:`repro.autodiff` engine.

Only what the paper needs is implemented: fully-connected layers, the common
activations, and a small multi-layer perceptron container.  The paper's SPICE
approximator (Eq. 3) is a plain 3-layer feed-forward network, and the
model-free baselines use MLP policy / value heads.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.autodiff import Tensor
from repro.nn.seeding import resolve_rng


class Module:
    """Base class for everything that owns trainable parameters."""

    def parameters(self) -> List[Tensor]:
        """Return the flat list of trainable tensors."""
        params: List[Tensor] = []
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
                    elif isinstance(item, Tensor) and item.requires_grad:
                        params.append(item)
        return params

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- serialization ------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of all parameter arrays keyed by position."""
        return {f"param_{i}": p.data.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter arrays previously produced by :meth:`state_dict`."""
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} entries but module has {len(params)} parameters"
            )
        for i, param in enumerate(params):
            incoming = np.asarray(state[f"param_{i}"], dtype=np.float64)
            if incoming.shape != param.data.shape:
                raise ValueError(
                    f"parameter {i} shape mismatch: {incoming.shape} vs {param.data.shape}"
                )
            param.data[...] = incoming


class Linear(Module):
    """Affine layer ``y = x W + b`` with Xavier/He initialization."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        init: str = "xavier",
        seed: Optional[int] = None,
    ) -> None:
        rng = resolve_rng(rng, seed)
        if init == "xavier":
            scale = np.sqrt(2.0 / (in_features + out_features))
        elif init == "he":
            scale = np.sqrt(2.0 / in_features)
        elif init == "small":
            scale = 1e-2
        else:
            raise ValueError(f"unknown init scheme: {init!r}")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            rng.normal(0.0, scale, size=(in_features, out_features)), requires_grad=True
        )
        self.bias = Tensor(np.zeros(out_features), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


class Activation(Module):
    """Stateless activation wrapper so activations compose in Sequential."""

    _FUNCTIONS: Dict[str, Callable[[Tensor], Tensor]] = {
        "tanh": lambda t: t.tanh(),
        "relu": lambda t: t.relu(),
        "sigmoid": lambda t: t.sigmoid(),
        "identity": lambda t: t,
    }

    #: Raw-array twins of the Tensor activations (bit-identical expressions);
    #: the inference fast paths (``MLP.predict``, ``repro.nn.fused``) use
    #: these so prediction never builds an autodiff graph.
    _NUMPY_FUNCTIONS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
        "tanh": np.tanh,
        "relu": lambda x: np.maximum(x, 0.0),
        "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-x)),
        "identity": lambda x: x,
    }

    @classmethod
    def apply_numpy(cls, name: str, x: np.ndarray) -> np.ndarray:
        """Apply an activation to a raw array (no graph bookkeeping)."""
        return cls._NUMPY_FUNCTIONS[name](x)

    def __init__(self, name: str) -> None:
        if name not in self._FUNCTIONS:
            raise ValueError(f"unknown activation: {name!r}")
        self.name = name

    def forward(self, x: Tensor) -> Tensor:
        return self._FUNCTIONS[self.name](x)


class Sequential(Module):
    """Run modules in order."""

    def __init__(self, *layers: Module) -> None:
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class MLP(Module):
    """Multi-layer perceptron.

    Parameters
    ----------
    in_features:
        Input dimensionality (number of sizing variables).
    hidden:
        Sizes of the hidden layers; the paper uses a 3-layer network.
    out_features:
        Output dimensionality (number of circuit measurements, or action
        logits for the baselines).
    activation:
        Hidden-layer activation name.
    output_activation:
        Optional activation on the final layer (``"identity"`` by default).
    """

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        out_features: int,
        activation: str = "tanh",
        output_activation: str = "identity",
        rng: Optional[np.random.Generator] = None,
        init: str = "xavier",
        seed: Optional[int] = None,
    ) -> None:
        rng = resolve_rng(rng, seed)
        layers: List[Module] = []
        previous = in_features
        for width in hidden:
            layers.append(Linear(previous, width, rng=rng, init=init))
            layers.append(Activation(activation))
            previous = width
        layers.append(Linear(previous, out_features, rng=rng, init=init))
        if output_activation != "identity":
            layers.append(Activation(output_activation))
        self.body = Sequential(*layers)
        self.in_features = in_features
        self.out_features = out_features
        self.hidden = tuple(hidden)

    def forward(self, x: Tensor) -> Tensor:
        return self.body(x)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Forward pass on raw arrays without building gradients.

        Plain Linear/Activation stacks (everything this class constructs)
        run directly on NumPy arrays — no Tensor allocation, no backward
        closures, no graph bookkeeping — which matters in the search loop
        where the surrogate scores candidate pools every iteration.  Exotic
        layer types fall back to the Tensor forward pass.
        """
        data = np.atleast_2d(np.asarray(x, dtype=np.float64))
        layers = self.body.layers
        if all(isinstance(layer, (Linear, Activation)) for layer in layers):
            for layer in layers:
                if isinstance(layer, Linear):
                    data = data @ layer.weight.data + layer.bias.data
                else:
                    data = Activation.apply_numpy(layer.name, data)
            return data
        return self.forward(Tensor(data)).data

    def copy_weights_from(self, other: "MLP") -> None:
        """Copy parameters from another MLP with identical architecture."""
        self.load_state_dict(other.state_dict())
