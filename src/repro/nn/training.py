"""Mini-batch supervised training loop for MLP regressors.

The paper (Section IV-B) trains the SPICE approximator with plain supervised
learning, one gradient pass per search iteration (Algorithm 1, line 8).  The
:func:`train_regressor` helper below supports both that incremental mode and
the full multi-epoch fit used when the trust-region region is (re)entered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.autodiff import Tensor
from repro.nn.losses import mse_loss
from repro.nn.modules import MLP
from repro.nn.optim import Adam, Optimizer


@dataclass
class TrainingHistory:
    """Loss trace of a fit; useful for convergence diagnostics and tests."""

    losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def initial_loss(self) -> float:
        return self.losses[0] if self.losses else float("nan")

    def improved(self) -> bool:
        """True when the loss decreased over the fit."""
        return bool(self.losses) and self.final_loss <= self.initial_loss


def iterate_minibatches(
    inputs: np.ndarray,
    targets: np.ndarray,
    batch_size: int,
    rng: np.random.Generator,
):
    """Yield shuffled (input, target) mini-batches."""
    count = inputs.shape[0]
    order = rng.permutation(count)
    for start in range(0, count, batch_size):
        index = order[start : start + batch_size]
        yield inputs[index], targets[index]


def train_regressor(
    model: MLP,
    inputs: np.ndarray,
    targets: np.ndarray,
    epochs: int = 100,
    batch_size: int = 32,
    lr: float = 1e-3,
    optimizer: Optional[Optimizer] = None,
    rng: Optional[np.random.Generator] = None,
    l2: float = 0.0,
) -> TrainingHistory:
    """Fit ``model`` to map ``inputs`` to ``targets`` with MSE.

    Parameters
    ----------
    model:
        The MLP to train in-place.
    inputs, targets:
        2-D arrays of shape ``(n_samples, n_features)`` / ``(n_samples, n_outputs)``.
    epochs, batch_size, lr:
        Usual training hyper-parameters.
    optimizer:
        Optional pre-built optimizer (so the agent can keep Adam moments
        across incremental refits).
    l2:
        Weight decay strength.
    """
    rng = rng or np.random.default_rng()
    inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
    targets = np.atleast_2d(np.asarray(targets, dtype=np.float64))
    if inputs.shape[0] != targets.shape[0]:
        raise ValueError("inputs and targets must have the same number of rows")
    if optimizer is None:
        optimizer = Adam(model.parameters(), lr=lr, weight_decay=l2)
    history = TrainingHistory()
    for _ in range(epochs):
        epoch_losses = []
        for batch_x, batch_y in iterate_minibatches(inputs, targets, batch_size, rng):
            optimizer.zero_grad()
            prediction = model(Tensor(batch_x))
            loss = mse_loss(prediction, Tensor(batch_y))
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())
        history.losses.append(float(np.mean(epoch_losses)))
    return history
