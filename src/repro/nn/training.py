"""Mini-batch supervised training loop for MLP regressors.

The paper (Section IV-B) trains the SPICE approximator with plain supervised
learning, one gradient pass per search iteration (Algorithm 1, line 8).  The
:func:`train_regressor` helper below supports both that incremental mode and
the full multi-epoch fit used when the trust-region region is (re)entered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.autodiff import Tensor
from repro.nn.fused import FusedAdam, FusedMLP
from repro.nn.losses import mse_loss
from repro.nn.modules import MLP
from repro.nn.optim import Adam, Optimizer
from repro.nn.seeding import resolve_rng

#: Training backends: ``"fused"`` is the hand-derived NumPy fast path,
#: ``"autodiff"`` the Tensor-graph reference oracle.  ``"auto"`` picks by
#: model type.  The two are bit-identical per step (see tests/test_fused.py).
BACKENDS = ("auto", "fused", "autodiff")


@dataclass
class TrainingHistory:
    """Loss trace of a fit; useful for convergence diagnostics and tests."""

    losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def initial_loss(self) -> float:
        return self.losses[0] if self.losses else float("nan")

    def improved(self) -> bool:
        """True when the loss decreased over the fit."""
        return bool(self.losses) and self.final_loss <= self.initial_loss


def iterate_minibatches(
    inputs: np.ndarray,
    targets: np.ndarray,
    batch_size: int,
    rng: np.random.Generator,
):
    """Yield shuffled (input, target) mini-batches."""
    count = inputs.shape[0]
    order = rng.permutation(count)
    for start in range(0, count, batch_size):
        index = order[start : start + batch_size]
        yield inputs[index], targets[index]


def _resolve_backend(model: Union[MLP, FusedMLP], backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; available: {', '.join(BACKENDS)}")
    if backend == "auto":
        return "fused" if isinstance(model, FusedMLP) else "autodiff"
    if backend == "autodiff" and isinstance(model, FusedMLP):
        raise ValueError("backend='autodiff' requires an autodiff MLP, got FusedMLP")
    return backend


def train_regressor(
    model: Union[MLP, FusedMLP],
    inputs: np.ndarray,
    targets: np.ndarray,
    epochs: int = 100,
    batch_size: int = 32,
    lr: float = 1e-3,
    optimizer: Optional[Union[Optimizer, FusedAdam]] = None,
    rng: Optional[np.random.Generator] = None,
    l2: float = 0.0,
    backend: str = "auto",
    seed: Optional[int] = None,
) -> TrainingHistory:
    """Fit ``model`` to map ``inputs`` to ``targets`` with MSE.

    Parameters
    ----------
    model:
        The MLP (autodiff or fused) to train in-place.
    inputs, targets:
        2-D arrays of shape ``(n_samples, n_features)`` / ``(n_samples, n_outputs)``.
    epochs, batch_size, lr:
        Usual training hyper-parameters.
    optimizer:
        Optional pre-built optimizer (so the agent can keep Adam moments
        across incremental refits).  Must match the backend: an autodiff
        :class:`Adam`/:class:`Optimizer` for ``"autodiff"``, a
        :class:`FusedAdam` for ``"fused"``.
    rng, seed:
        Minibatch-shuffling RNG: pass a Generator to share a stream, or a
        seed to build one.  With neither, the fixed library default seed is
        used (:mod:`repro.nn.seeding`) — never OS entropy, so a fit is
        reproducible even when the caller forgets to thread an rng.
    l2:
        Weight decay strength.
    backend:
        ``"auto"`` (default) trains a :class:`FusedMLP` with the fused path
        and an autodiff :class:`MLP` with the Tensor graph.  ``"fused"`` on
        an autodiff MLP converts it, trains with the fast path, and writes
        the weights back — identical results, one-off conversion cost.

    Both backends consume the same minibatch RNG stream and perform
    bit-identical floating-point updates, so the choice never changes the
    fitted weights — only how fast they are reached.
    """
    rng = resolve_rng(rng, seed)
    inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
    targets = np.atleast_2d(np.asarray(targets, dtype=np.float64))
    if inputs.shape[0] != targets.shape[0]:
        raise ValueError("inputs and targets must have the same number of rows")
    backend = _resolve_backend(model, backend)
    history = TrainingHistory()

    if backend == "fused":
        write_back: Optional[MLP] = None
        if isinstance(model, FusedMLP):
            fused = model
        else:
            if optimizer is not None:
                raise ValueError(
                    "backend='fused' on an autodiff MLP cannot reuse a pre-built "
                    "optimizer; hold a FusedMLP + FusedAdam for persistent moments"
                )
            fused = FusedMLP.from_module(model)
            write_back = model
        if optimizer is None:
            optimizer = FusedAdam(fused, lr=lr, weight_decay=l2)
        elif not isinstance(optimizer, FusedAdam):
            raise ValueError("backend='fused' requires a FusedAdam optimizer")
        history.losses.extend(fused.fit(inputs, targets, epochs, batch_size, optimizer, rng))
        if write_back is not None:
            fused.to_module(write_back)
        return history

    if optimizer is None:
        optimizer = Adam(model.parameters(), lr=lr, weight_decay=l2)
    elif isinstance(optimizer, FusedAdam):
        raise ValueError("backend='autodiff' requires an autodiff optimizer, got FusedAdam")
    for _ in range(epochs):
        epoch_losses = []
        for batch_x, batch_y in iterate_minibatches(inputs, targets, batch_size, rng):
            optimizer.zero_grad()
            prediction = model(Tensor(batch_x))
            loss = mse_loss(prediction, Tensor(batch_y))
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())
        history.losses.append(float(np.mean(epoch_losses)))
    return history
