"""Deterministic RNG resolution for the surrogate stack.

``np.random.default_rng()`` without arguments seeds itself from OS entropy,
so a bare ``rng or default_rng()`` fallback makes surrogate initialization
nondeterministic exactly when the caller forgets to thread an rng — the
one failure mode the bit-exact trajectory locks cannot tolerate.
:func:`resolve_rng` is the only sanctioned fallback: an explicit generator
wins, an explicit seed builds one, and the default is the fixed
:data:`DEFAULT_SEED` — never hidden entropy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Seed used when neither an rng nor a seed is supplied.  Any fixed value
#: works (the search stack always passes an explicit generator); what
#: matters is that the default is *a* seed, not OS entropy.
DEFAULT_SEED = 0


def resolve_rng(
    rng: Optional[np.random.Generator] = None, seed: Optional[int] = None
) -> np.random.Generator:
    """Resolve an optional rng/seed pair to a deterministic Generator.

    Exactly one source wins: a passed ``rng`` is returned as-is, a passed
    ``seed`` builds a fresh generator, and with neither the generator is
    seeded with :data:`DEFAULT_SEED`.  Passing both is rejected — silently
    ignoring one of them would hide a caller bug.
    """
    if rng is not None:
        if seed is not None:
            raise ValueError("pass either rng or seed, not both")
        return rng
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)
