"""Loss functions used by the surrogate model and the RL baselines."""

from __future__ import annotations

import numpy as np

from repro.autodiff import Tensor


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error, Eq. (4) of the paper."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss; a robust alternative exposed for the value-head baselines."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target
    abs_diff = diff.abs()
    quadratic = 0.5 * diff * diff
    linear = delta * abs_diff - 0.5 * delta ** 2
    mask = np.asarray(abs_diff.data <= delta, dtype=np.float64)
    combined = quadratic * Tensor(mask) + linear * Tensor(1.0 - mask)
    return combined.mean()


def mae_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error (used for surrogate diagnostics)."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target
    return diff.abs().mean()
