"""NumPy neural-network library used by the surrogate and the RL baselines."""

from repro.nn.fused import (
    BatchedFusedAdam,
    BatchedFusedMLP,
    FusedAdam,
    FusedFitJob,
    FusedMLP,
    fit_batched,
    fit_job_signature,
)
from repro.nn.losses import huber_loss, mae_loss, mse_loss
from repro.nn.modules import MLP, Activation, Linear, Module, Sequential
from repro.nn.optim import SGD, Adam, Optimizer, clip_grad_norm
from repro.nn.scalers import MinMaxScaler, StandardScaler
from repro.nn.training import (
    BACKENDS,
    TrainingHistory,
    iterate_minibatches,
    train_regressor,
)

__all__ = [
    "BACKENDS",
    "BatchedFusedAdam",
    "BatchedFusedMLP",
    "FusedAdam",
    "FusedFitJob",
    "FusedMLP",
    "fit_batched",
    "fit_job_signature",
    "MLP",
    "Activation",
    "Linear",
    "Module",
    "Sequential",
    "SGD",
    "Adam",
    "Optimizer",
    "clip_grad_norm",
    "MinMaxScaler",
    "StandardScaler",
    "TrainingHistory",
    "iterate_minibatches",
    "train_regressor",
    "mse_loss",
    "mae_loss",
    "huber_loss",
]
