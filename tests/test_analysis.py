"""The AST lint engine: every rule fires on bad code, stays silent on good.

Each rule gets a minimal good/bad snippet pair, run with the rule selected
in isolation so the corpus never cross-fires other rules.  The repo
self-check at the bottom is the same gate CI runs: the linter must exit
clean on the final ``src/`` tree, and the determinism auditor must byte-diff
a double-run to zero.
"""

import os
import subprocess
import sys

import pytest

from repro.analysis import (
    AnalysisConfig,
    available_rules,
    get_rule,
    lint_paths,
    lint_source,
)
from repro.analysis.cli import main as analysis_main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

#: (rule id, bad snippet that must fire, good snippet that must stay silent).
CORPUS = [
    (
        "unseeded-rng",
        "import numpy as np\n"
        "def init():\n"
        "    return np.random.default_rng()\n",
        "import numpy as np\n"
        "def init(seed):\n"
        "    return np.random.default_rng(seed)\n",
    ),
    (
        "unseeded-rng",
        "import numpy as np\n"
        "def draw():\n"
        "    return np.random.normal(0.0, 1.0)\n",
        "import numpy as np\n"
        "def draw(rng):\n"
        "    return rng.normal(0.0, 1.0)\n",
    ),
    (
        "float-equality",
        "def check(x):\n"
        "    return x == 1.0\n",
        "def check(x):\n"
        "    return x >= 1.0\n",
    ),
    (
        "float-equality",
        "def check(x, y):\n"
        "    return float(x) != y\n",
        "def check(x, y):\n"
        "    return x != y\n",
    ),
    (
        "hot-loop-alloc",
        "import numpy as np\n"
        "from repro.analysis import hot_path\n"
        "@hot_path\n"
        "def step(n):\n"
        "    for _ in range(n):\n"
        "        buf = np.zeros(8)\n"
        "    return buf\n",
        "import numpy as np\n"
        "from repro.analysis import hot_path\n"
        "@hot_path\n"
        "def step(n, out):\n"
        "    buf = np.zeros(8)\n"
        "    for _ in range(n):\n"
        "        np.multiply(buf, 2.0, out=out)\n"
        "    return out\n",
    ),
    (
        "corner-python-loop",
        "class Stacked:\n"
        "    supports_stacked_corners = True\n"
        "    def evaluate_corners(self, samples, corners):\n"
        "        return [self.one(samples, corner) for corner in corners]\n",
        "class Stacked:\n"
        "    supports_stacked_corners = True\n"
        "    def evaluate_corners_looped(self, samples, corners):\n"
        "        return [self.one(samples, corner) for corner in corners]\n",
    ),
    (
        "naked-except",
        "def risky():\n"
        "    try:\n"
        "        return 1\n"
        "    except:\n"
        "        return None\n",
        "def risky():\n"
        "    try:\n"
        "        return 1\n"
        "    except ValueError:\n"
        "        return None\n",
    ),
    (
        "mutable-default",
        "def collect(item, into=[]):\n"
        "    into.append(item)\n"
        "    return into\n",
        "def collect(item, into=None):\n"
        "    into = [] if into is None else into\n"
        "    into.append(item)\n"
        "    return into\n",
    ),
    (
        "ad-hoc-timing",
        "import time\n"
        "def measure(fn):\n"
        "    t0 = time.perf_counter()\n"
        "    fn()\n"
        "    return time.perf_counter() - t0\n",
        "from repro.obs import profiled\n"
        "def measure(fn):\n"
        "    with profiled('measure') as timer:\n"
        "        fn()\n"
        "    return timer.seconds\n",
    ),
    (
        "ad-hoc-timing",
        "from time import monotonic as clock\n"
        "def stamp():\n"
        "    return clock()\n",
        "import time\n"
        "def pause():\n"
        "    time.sleep(0.01)\n",
    ),
    (
        "missing-parity-oracle",
        "class Fast:\n"
        "    def evaluate_corners(self, samples, corners):\n"
        "        return samples\n",
        "class Fast:\n"
        "    def evaluate_corners(self, samples, corners):\n"
        "        return samples\n"
        "    def evaluate_corners_looped(self, samples, corners):\n"
        "        return samples\n",
    ),
    (
        "missing-parity-oracle",
        "class Fast:\n"
        "    supports_stacked_corners = True\n"
        "    def evaluate_corners(self, samples, corners):\n"
        "        return samples\n"
        "    def evaluate_corners_looped(self, samples, corners):\n"
        "        return samples\n",
        "class Fast:\n"
        "    supports_stacked_corners = True\n"
        "    def evaluate_corners(self, samples, corners):\n"
        "        return samples\n"
        "    def evaluate_corners_looped(self, samples, corners):\n"
        "        return samples\n"
        "    def _small_signal_parts(self, samples, card=None, temperature_c=None):\n"
        "        return {}\n"
        "    def _metrics_from_parts(self, parts):\n"
        "        return parts\n",
    ),
    (
        "non-atomic-artifact-write",
        "import json\n"
        "def dump(payload, path):\n"
        "    with open(path, 'w') as handle:\n"
        "        json.dump(payload, handle)\n",
        "from repro.resilience import atomic_write_json\n"
        "def dump(payload, path):\n"
        "    atomic_write_json(path, payload)\n",
    ),
    (
        "non-atomic-artifact-write",
        "def append(path, line):\n"
        "    with open(path, mode='ab') as handle:\n"
        "        handle.write(line)\n",
        "def load(path):\n"
        "    with open(path, 'rb') as handle:\n"
        "        return handle.read()\n",
    ),
    (
        "spawn-unsafe",
        "import multiprocessing\n"
        "def launch(run):\n"
        "    return multiprocessing.Process(target=run)\n",
        "import multiprocessing\n"
        "def launch(run):\n"
        "    context = multiprocessing.get_context('spawn')\n"
        "    return context.Process(target=run)\n",
    ),
    (
        "spawn-unsafe",
        "import multiprocessing as mp\n"
        "def pool():\n"
        "    return mp.get_context().Pool(2)\n",
        "import multiprocessing as mp\n"
        "def pool():\n"
        "    return mp.get_context('spawn').Pool(2)\n",
    ),
    (
        "spawn-unsafe",
        "from multiprocessing import Process\n"
        "def launch(run):\n"
        "    return Process(target=run)\n",
        "from multiprocessing import get_context\n"
        "def launch(run):\n"
        "    return get_context('spawn').Process(target=run)\n",
    ),
]


def lint_with(rule_id, source, path="src/repro/example.py"):
    return lint_source(source, path, AnalysisConfig(select=(rule_id,)))


class TestRuleCorpus:
    @pytest.mark.parametrize(
        "rule_id,bad,good", CORPUS, ids=[f"{c[0]}-{i}" for i, c in enumerate(CORPUS)]
    )
    def test_fires_on_bad_and_stays_silent_on_good(self, rule_id, bad, good):
        bad_findings = lint_with(rule_id, bad)
        assert bad_findings, f"{rule_id} did not fire on the bad snippet"
        assert all(f.rule == rule_id for f in bad_findings)
        assert lint_with(rule_id, good) == []

    def test_every_registered_rule_has_corpus_coverage(self):
        covered = {rule_id for rule_id, _, _ in CORPUS}
        assert covered == set(available_rules())

    def test_findings_carry_location(self):
        (finding,) = lint_with("naked-except", CORPUS[6][1])
        assert finding.path == "src/repro/example.py"
        assert finding.line == 4
        assert "except" in finding.format()


class TestScoping:
    def test_unseeded_rng_allowed_in_tests(self):
        bad = CORPUS[0][1]
        assert lint_with("unseeded-rng", bad, path="tests/test_example.py") == []

    def test_hot_module_functions_are_hot_without_decorator(self):
        source = (
            "import numpy as np\n"
            "def helper(n):\n"
            "    for _ in range(n):\n"
            "        x = np.empty(4)\n"
            "    return x\n"
        )
        hot = lint_with("hot-loop-alloc", source, path="src/repro/nn/fused.py")
        cold = lint_with("hot-loop-alloc", source, path="src/repro/nn/other.py")
        assert hot and not cold

    def test_hot_function_names_are_hot_anywhere(self):
        source = (
            "import numpy as np\n"
            "def evaluate_batch(self, samples):\n"
            "    for row in samples:\n"
            "        out = np.zeros(4)\n"
            "    return out\n"
        )
        assert lint_with("hot-loop-alloc", source, path="src/repro/cold.py")

    def test_looped_oracle_exempt_from_corner_loop_rule(self):
        source = (
            "class Stacked:\n"
            "    supports_stacked_corners = True\n"
            "    def evaluate_corners_looped(self, samples, corners):\n"
            "        out = []\n"
            "        for corner in corners:\n"
            "            out.append(corner)\n"
            "        return out\n"
        )
        assert lint_with("corner-python-loop", source) == []

    def test_ad_hoc_timing_allowed_inside_repro_obs(self):
        source = (
            "import time\n"
            "def now():\n"
            "    return time.perf_counter()\n"
        )
        sanctioned = lint_with(
            "ad-hoc-timing", source, path="src/repro/obs/tracer.py"
        )
        elsewhere = lint_with(
            "ad-hoc-timing", source, path="src/repro/search/campaign.py"
        )
        in_tests = lint_with(
            "ad-hoc-timing", source, path="tests/test_example.py"
        )
        assert not sanctioned and not in_tests and elsewhere

    def test_atomic_write_rule_exempts_resilience_and_tests(self):
        source = (
            "def dump(path, data):\n"
            "    with open(path, 'wb') as handle:\n"
            "        handle.write(data)\n"
        )
        sanctioned = lint_with(
            "non-atomic-artifact-write", source, path="src/repro/resilience/atomic.py"
        )
        elsewhere = lint_with(
            "non-atomic-artifact-write", source, path="src/repro/bench/runner.py"
        )
        in_tests = lint_with(
            "non-atomic-artifact-write", source, path="tests/test_example.py"
        )
        assert not sanctioned and not in_tests and elsewhere

    def test_out_kwarg_exempts_alloc_rule(self):
        source = (
            "import numpy as np\n"
            "from repro.analysis import hot_path\n"
            "@hot_path\n"
            "def step(n, buf):\n"
            "    for _ in range(n):\n"
            "        np.add(buf, 1.0, out=buf)\n"
            "    return buf\n"
        )
        assert lint_with("hot-loop-alloc", source) == []


class TestPragma:
    BAD = (
        "import numpy as np\n"
        "from repro.analysis import hot_path\n"
        "@hot_path\n"
        "def step(n):\n"
        "    for _ in range(n):\n"
        "        buf = np.zeros(8)\n"
        "    return buf\n"
    )

    def test_pragma_on_the_finding_line(self):
        source = self.BAD.replace(
            "        buf = np.zeros(8)\n",
            "        buf = np.zeros(8)  # analysis: allow(hot-loop-alloc)\n",
        )
        assert lint_with("hot-loop-alloc", source) == []

    def test_pragma_on_the_line_above(self):
        source = self.BAD.replace(
            "        buf = np.zeros(8)\n",
            "        # analysis: allow(hot-loop-alloc) one-time scratch\n"
            "        buf = np.zeros(8)\n",
        )
        assert lint_with("hot-loop-alloc", source) == []

    def test_pragma_for_another_rule_does_not_suppress(self):
        source = self.BAD.replace(
            "        buf = np.zeros(8)\n",
            "        buf = np.zeros(8)  # analysis: allow(naked-except)\n",
        )
        assert lint_with("hot-loop-alloc", source)


class TestEngine:
    def test_syntax_error_reported_as_finding(self):
        findings = lint_source("def broken(:\n", "src/repro/x.py")
        assert findings and findings[0].rule == "syntax-error"

    def test_unknown_rule_lists_available(self):
        with pytest.raises(KeyError, match="unseeded-rng"):
            get_rule("nope")

    def test_lint_paths_walks_directories(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "bad.py").write_text("def f(x=[]):\n    return x\n")
        (package / "good.py").write_text("def f(x=None):\n    return x\n")
        findings = lint_paths([str(tmp_path)])
        assert [f.rule for f in findings] == ["mutable-default"]


class TestCLI:
    def test_lint_clean_repo_exits_zero(self):
        """The gate this whole PR is about: the final tree lints clean."""
        assert analysis_main(["lint", SRC]) == 0

    def test_lint_reports_findings_with_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n")
        assert analysis_main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "mutable-default" in out and "bad.py:1" in out

    def test_lint_select_restricts_rules(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n")
        assert analysis_main(["lint", str(bad), "--select", "naked-except"]) == 0

    def test_rules_subcommand_lists_all(self, capsys):
        assert analysis_main(["rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in available_rules():
            assert rule_id in out

    def test_module_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "rules"],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": SRC},
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0
        assert "unseeded-rng" in result.stdout


class TestDeterminismAuditor:
    def test_tiny_case_double_run_is_byte_identical(self):
        from repro.analysis.determinism import audit_case
        from repro.bench.registry import get_suite

        report = audit_case(get_suite("tiny")[0], seeds=[0])
        assert report.identical, report.divergence
        assert len(report.fingerprint_sha256) == 64

    def test_divergence_pointer_names_the_field(self):
        from repro.analysis.determinism import _first_divergence

        first = {"per_seed": [{"seed": 0, "evaluations": 10}]}
        second = {"per_seed": [{"seed": 0, "evaluations": 11}]}
        where = _first_divergence(first, second)
        assert "per_seed[0].evaluations" in where
