"""Fused NumPy training backend: parity with the autodiff reference oracle.

The contract of :mod:`repro.nn.fused` is stronger than "numerically close":
given the same minibatch stream, the fused backend produces *bit-identical*
losses, gradients and post-Adam weights to the Tensor-graph path.  These
tests pin that contract step by step, plus the module round-trips and the
backend knob plumbing on :func:`train_regressor`.
"""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import MLP, Adam, FusedAdam, FusedMLP, train_regressor
from repro.nn.losses import mse_loss


def flat_params(model: MLP) -> np.ndarray:
    return np.concatenate([p.data.ravel() for p in model.parameters()])


def flat_grads(model: MLP) -> np.ndarray:
    return np.concatenate([p.grad.ravel() for p in model.parameters()])


def make_pair(in_features=4, hidden=(16, 16), out_features=3, seed=7, **kwargs):
    """An autodiff MLP and its fused twin with identical weights."""
    model = MLP(in_features, hidden, out_features, rng=np.random.default_rng(seed), **kwargs)
    return model, FusedMLP.from_module(model)


def regression_data(count=96, in_features=4, out_features=3, seed=0):
    rng = np.random.default_rng(seed)
    inputs = rng.uniform(-1.0, 1.0, size=(count, in_features))
    targets = rng.normal(size=(count, out_features))
    return inputs, targets


class TestPerStepParity:
    """Identical minibatch order -> identical losses, gradients, weights."""

    @pytest.mark.parametrize("activation", ["tanh", "relu", "sigmoid"])
    def test_loss_grad_and_adam_step_bitwise(self, activation):
        model, fused = make_pair(activation=activation)
        adam = Adam(model.parameters(), lr=3e-3)
        fused_adam = FusedAdam(fused, lr=3e-3)
        inputs, targets = regression_data()
        rng = np.random.default_rng(11)
        for _ in range(30):
            index = rng.permutation(inputs.shape[0])[:32]
            batch_x, batch_y = inputs[index], targets[index]

            adam.zero_grad()
            loss = mse_loss(model(Tensor(batch_x)), Tensor(batch_y))
            loss.backward()
            reference_grad = flat_grads(model)
            adam.step()

            fused_loss, fused_grad = fused.loss_and_grad(batch_x, batch_y)
            fused_grad = fused_grad.copy()  # the buffer is reused
            fused_adam.step(fused_grad)

            assert loss.item() == fused_loss
            np.testing.assert_array_equal(reference_grad, fused_grad)
            np.testing.assert_array_equal(flat_params(model), fused.theta)

    def test_weight_decay_parity(self):
        model, fused = make_pair()
        adam = Adam(model.parameters(), lr=1e-2, weight_decay=1e-3)
        fused_adam = FusedAdam(fused, lr=1e-2, weight_decay=1e-3)
        inputs, targets = regression_data(count=32)
        for _ in range(10):
            adam.zero_grad()
            loss = mse_loss(model(Tensor(inputs)), Tensor(targets))
            loss.backward()
            adam.step()
            _, grad = fused.loss_and_grad(inputs, targets)
            fused_adam.step(grad)
        np.testing.assert_array_equal(flat_params(model), fused.theta)

    def test_train_regressor_backends_identical(self):
        """Full training runs through both backends end at the same weights."""
        model, fused = make_pair()
        inputs, targets = regression_data()
        history_autodiff = train_regressor(
            model, inputs, targets, epochs=12, batch_size=32, lr=3e-3,
            rng=np.random.default_rng(3), backend="autodiff",
        )
        history_fused = train_regressor(
            fused, inputs, targets, epochs=12, batch_size=32, lr=3e-3,
            rng=np.random.default_rng(3),
        )
        assert history_autodiff.losses == history_fused.losses
        np.testing.assert_array_equal(flat_params(model), fused.theta)

    def test_fused_backend_on_autodiff_model_writes_back(self):
        """backend='fused' on an MLP converts, trains fast, writes back."""
        reference, _ = make_pair()
        subject, _ = make_pair()
        inputs, targets = regression_data()
        train_regressor(reference, inputs, targets, epochs=8, batch_size=32,
                        lr=3e-3, rng=np.random.default_rng(5), backend="autodiff")
        train_regressor(subject, inputs, targets, epochs=8, batch_size=32,
                        lr=3e-3, rng=np.random.default_rng(5), backend="fused")
        np.testing.assert_array_equal(flat_params(reference), flat_params(subject))

    def test_predict_parity(self):
        model, fused = make_pair()
        x = np.random.default_rng(2).normal(size=(17, 4))
        np.testing.assert_array_equal(model.predict(x), fused.predict(x))


class TestModuleInterop:
    def test_constructor_matches_module_init(self):
        """Same seeded generator -> bit-identical initial weights."""
        module = MLP(5, (24, 24), 2, rng=np.random.default_rng(13))
        fused = FusedMLP(5, (24, 24), 2, rng=np.random.default_rng(13))
        np.testing.assert_array_equal(flat_params(module), fused.theta)

    def test_from_module_to_module_round_trip(self):
        module, fused = make_pair()
        restored = fused.to_module()
        x = np.random.default_rng(4).normal(size=(9, 4))
        np.testing.assert_array_equal(module.predict(x), restored.predict(x))

    def test_to_module_into_existing(self):
        module, fused = make_pair()
        fused.theta += 0.25  # diverge, then write back
        fused.to_module(module)
        np.testing.assert_array_equal(flat_params(module), fused.theta)

    def test_from_module_copies_weights(self):
        module, fused = make_pair()
        before = fused.theta.copy()
        module.parameters()[0].data += 1.0
        np.testing.assert_array_equal(fused.theta, before)

    def test_state_dict_interop_both_ways(self):
        module, fused = make_pair()
        clone = MLP(4, (16, 16), 3, rng=np.random.default_rng(99))
        clone.load_state_dict(fused.state_dict())
        np.testing.assert_array_equal(flat_params(clone), fused.theta)
        fused_clone = FusedMLP(4, (16, 16), 3, rng=np.random.default_rng(98))
        fused_clone.load_state_dict(module.state_dict())
        np.testing.assert_array_equal(fused_clone.theta, fused.theta)

    def test_load_state_dict_validates(self):
        _, fused = make_pair()
        state = fused.state_dict()
        with pytest.raises(ValueError):
            fused.load_state_dict({k: v for k, v in list(state.items())[:-1]})
        bad = dict(state)
        bad["param_0"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            fused.load_state_dict(bad)

    def test_rejects_non_linear_activation_stacks(self):
        class Odd(MLP):
            pass

        odd = Odd(3, (4,), 1)
        odd.body.layers.append(object())
        with pytest.raises(TypeError):
            FusedMLP.from_module(odd)


class TestBackendKnob:
    def test_unknown_backend_rejected(self):
        model, _ = make_pair()
        inputs, targets = regression_data(count=8)
        with pytest.raises(ValueError, match="unknown backend"):
            train_regressor(model, inputs, targets, epochs=1, backend="magic")

    def test_autodiff_backend_rejects_fused_model(self):
        _, fused = make_pair()
        inputs, targets = regression_data(count=8)
        with pytest.raises(ValueError, match="autodiff"):
            train_regressor(fused, inputs, targets, epochs=1, backend="autodiff")

    def test_fused_backend_rejects_autodiff_optimizer(self):
        _, fused = make_pair()
        inputs, targets = regression_data(count=8)
        model, _ = make_pair()
        with pytest.raises(ValueError):
            train_regressor(
                fused, inputs, targets, epochs=1,
                optimizer=Adam(model.parameters()), backend="fused",
            )

    def test_autodiff_backend_rejects_fused_optimizer(self):
        model, fused = make_pair()
        inputs, targets = regression_data(count=8)
        with pytest.raises(ValueError, match="FusedAdam"):
            train_regressor(
                model, inputs, targets, epochs=1,
                optimizer=FusedAdam(fused), backend="autodiff",
            )

    def test_fused_on_mlp_rejects_prebuilt_optimizer(self):
        """Conversion is per-call; persistent moments need a FusedMLP."""
        model, fused = make_pair()
        inputs, targets = regression_data(count=8)
        with pytest.raises(ValueError, match="persistent"):
            train_regressor(
                model, inputs, targets, epochs=1,
                optimizer=FusedAdam(fused), backend="fused",
            )


class TestSearchLevelParity:
    """The backend knob must never change a search trajectory."""

    def make_search(self, backend):
        from repro.core.design_space import DesignSpace, Parameter
        from repro.search import Spec, Specification, TrustRegionConfig, TrustRegionSearch

        def evaluator(samples):
            samples = np.atleast_2d(samples)
            x, y = samples[:, 0], samples[:, 1]
            a = 1.0 - (x - 0.7) ** 2 - (y - 0.3) ** 2
            b = (x - 0.7) ** 2 + (y - 0.3) ** 2
            return np.stack([a, b], axis=1)

        space = DesignSpace(
            [Parameter("x", 0.0, 1.0, grid_points=101),
             Parameter("y", 0.0, 1.0, grid_points=101)]
        )
        spec = Specification([Spec("a", ">=", 0.99), Spec("b", "<=", 0.01)], ["a", "b"])
        config = TrustRegionConfig(
            seed=0, initial_samples=24, batch_size=6, candidate_pool=128,
            max_evaluations=300, surrogate_hidden=(24, 24),
            initial_epochs=60, refit_epochs=15, backend=backend,
        )
        return TrustRegionSearch(evaluator, space, spec, config)

    def test_toy_csp_trajectories_identical(self):
        fused = self.make_search("fused").run()
        autodiff = self.make_search("autodiff").run()
        assert fused.evaluations == autodiff.evaluations
        assert fused.best_score == autodiff.best_score
        np.testing.assert_array_equal(fused.best_vector, autodiff.best_vector)
        assert len(fused.history) == len(autodiff.history)

    def test_two_stage_demo_seed0_backend_parity(self):
        """The historical demo reaches the same sizing on either backend."""
        from repro.search.opamp_demo import size_two_stage_opamp

        fused = size_two_stage_opamp(seed=0)
        autodiff = size_two_stage_opamp(seed=0, backend="autodiff")
        assert fused.solved_all_corners and autodiff.solved_all_corners
        assert fused.evaluations == autodiff.evaluations
        np.testing.assert_array_equal(fused.best_vector, autodiff.best_vector)
        # The fast path must actually be faster on the identical trajectory.
        assert fused.refit_seconds < autodiff.refit_seconds
