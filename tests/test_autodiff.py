"""Finite-difference gradient checks for every Tensor operation."""

import numpy as np
import pytest

from repro.autodiff import Tensor, concatenate, stack, where

RNG = np.random.default_rng(12345)
EPS = 1e-6


def numeric_grad(func, value):
    """Central-difference gradient of scalar-valued ``func`` at ``value``."""
    value = np.asarray(value, dtype=np.float64)
    grad = np.zeros_like(value)
    flat = value.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + EPS
        upper = func(value.copy())
        flat[i] = original - EPS
        lower = func(value.copy())
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * EPS)
    return grad


def check_unary(op, data, tol=1e-5):
    tensor = Tensor(data, requires_grad=True)
    out = op(tensor)
    out.sum().backward()
    expected = numeric_grad(lambda x: float(op(Tensor(x)).data.sum()), np.asarray(data, float))
    np.testing.assert_allclose(tensor.grad, expected, rtol=tol, atol=tol)


def check_binary(op, a_data, b_data, tol=1e-5):
    a = Tensor(a_data, requires_grad=True)
    b = Tensor(b_data, requires_grad=True)
    op(a, b).sum().backward()
    expected_a = numeric_grad(
        lambda x: float(op(Tensor(x), Tensor(b_data)).data.sum()), np.asarray(a_data, float)
    )
    expected_b = numeric_grad(
        lambda x: float(op(Tensor(a_data), Tensor(x)).data.sum()), np.asarray(b_data, float)
    )
    np.testing.assert_allclose(a.grad, expected_a, rtol=tol, atol=tol)
    np.testing.assert_allclose(b.grad, expected_b, rtol=tol, atol=tol)


class TestElementwise:
    def test_add(self):
        check_binary(lambda a, b: a + b, RNG.normal(size=(3, 4)), RNG.normal(size=(3, 4)))

    def test_add_broadcast(self):
        check_binary(lambda a, b: a + b, RNG.normal(size=(3, 4)), RNG.normal(size=(4,)))

    def test_mul(self):
        check_binary(lambda a, b: a * b, RNG.normal(size=(3, 4)), RNG.normal(size=(3, 4)))

    def test_mul_broadcast(self):
        check_binary(lambda a, b: a * b, RNG.normal(size=(2, 3)), RNG.normal(size=(1, 3)))

    def test_sub(self):
        check_binary(lambda a, b: a - b, RNG.normal(size=(5,)), RNG.normal(size=(5,)))

    def test_div(self):
        check_binary(
            lambda a, b: a / b,
            RNG.normal(size=(4,)),
            RNG.uniform(0.5, 2.0, size=(4,)),
        )

    def test_pow(self):
        check_unary(lambda t: t ** 3.0, RNG.uniform(0.5, 2.0, size=(3, 3)))

    def test_neg(self):
        check_unary(lambda t: -t, RNG.normal(size=(4,)))

    def test_abs(self):
        check_unary(lambda t: t.abs(), RNG.normal(size=(3, 4)) + 0.1)

    def test_abs_zero_is_finite(self):
        tensor = Tensor(np.array([0.0, -1.5, 2.0]), requires_grad=True)
        tensor.abs().sum().backward()
        assert np.all(np.isfinite(tensor.grad))
        np.testing.assert_allclose(tensor.grad, [0.0, -1.0, 1.0])

    def test_dunder_abs(self):
        tensor = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        np.testing.assert_allclose(abs(tensor).data, [2.0, 3.0])


class TestLinearAlgebra:
    def test_matmul_2d(self):
        check_binary(lambda a, b: a @ b, RNG.normal(size=(3, 4)), RNG.normal(size=(4, 2)))

    def test_matmul_vector(self):
        check_binary(lambda a, b: a @ b, RNG.normal(size=(4,)), RNG.normal(size=(4, 2)))

    def test_transpose(self):
        weights = RNG.normal(size=(4, 3))
        check_unary(lambda t: t.T * Tensor(weights), RNG.normal(size=(3, 4)))

    def test_reshape(self):
        check_unary(lambda t: t.reshape(6) * Tensor(np.arange(6.0)), RNG.normal(size=(2, 3)))

    def test_getitem(self):
        check_unary(lambda t: t[1] * Tensor(np.arange(4.0)), RNG.normal(size=(3, 4)))


class TestReductions:
    def test_sum(self):
        check_unary(lambda t: t.sum(), RNG.normal(size=(3, 4)))

    def test_sum_axis(self):
        check_unary(lambda t: (t.sum(axis=0) * Tensor(np.arange(4.0))), RNG.normal(size=(3, 4)))

    def test_mean(self):
        check_unary(lambda t: t.mean(), RNG.normal(size=(3, 4)))

    def test_max(self):
        # Distinct values so the argmax is stable under the FD perturbation.
        data = np.array([[1.0, 5.0, 2.0], [7.0, 0.5, 3.0]])
        check_unary(lambda t: t.max(), data)

    def test_max_axis(self):
        data = np.array([[1.0, 5.0, 2.0], [7.0, 0.5, 3.0]])
        check_unary(lambda t: (t.max(axis=1) * Tensor(np.array([2.0, 3.0]))), data)


class TestNonlinearities:
    def test_exp(self):
        check_unary(lambda t: t.exp(), RNG.normal(size=(3, 3)))

    def test_log(self):
        check_unary(lambda t: t.log(), RNG.uniform(0.5, 2.0, size=(3, 3)))

    def test_tanh(self):
        check_unary(lambda t: t.tanh(), RNG.normal(size=(3, 3)))

    def test_relu(self):
        check_unary(lambda t: t.relu(), RNG.normal(size=(3, 3)) + 0.1)

    def test_sigmoid(self):
        check_unary(lambda t: t.sigmoid(), RNG.normal(size=(3, 3)))

    def test_clip(self):
        check_unary(lambda t: t.clip(-0.5, 0.5), RNG.normal(size=(8,)) * 2.0 + 0.05)

    def test_log_softmax(self):
        weights = RNG.normal(size=(2, 4))
        check_unary(lambda t: (t.log_softmax() * Tensor(weights)), RNG.normal(size=(2, 4)))

    def test_softmax(self):
        weights = RNG.normal(size=(2, 4))
        check_unary(lambda t: (t.softmax() * Tensor(weights)), RNG.normal(size=(2, 4)))


class TestCombinators:
    def test_concatenate(self):
        a_data, b_data = RNG.normal(size=(2, 3)), RNG.normal(size=(4, 3))
        weights = RNG.normal(size=(6, 3))
        check_binary(lambda a, b: concatenate([a, b]) * Tensor(weights), a_data, b_data)

    def test_stack(self):
        a_data, b_data = RNG.normal(size=(3,)), RNG.normal(size=(3,))
        weights = RNG.normal(size=(2, 3))
        check_binary(lambda a, b: stack([a, b]) * Tensor(weights), a_data, b_data)

    def test_where(self):
        condition = np.array([True, False, True, False])
        check_binary(
            lambda a, b: where(condition, a, b),
            RNG.normal(size=(4,)),
            RNG.normal(size=(4,)),
        )


class TestBackwardMechanics:
    def test_deep_graph_no_recursion_error(self):
        """The incremental refit loop builds graphs >> recursion limit."""
        x = Tensor(1.0, requires_grad=True)
        y = x
        for _ in range(5000):
            y = y * 1.0001
        y.backward()
        assert np.isfinite(x.grad)
        np.testing.assert_allclose(x.grad, 1.0001 ** 5000, rtol=1e-9)

    def test_backward_requires_scalar(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros(3), requires_grad=True).backward()

    def test_grad_accumulates_over_reuse(self):
        x = Tensor(2.0, requires_grad=True)
        (x * x + x).backward()
        np.testing.assert_allclose(x.grad, 5.0)
