"""Device-model continuity across the weak/strong inversion boundary."""

import numpy as np
import pytest

from repro.circuits.devices import (
    MOSFET,
    saturation_from_current,
    smooth_overdrive,
)
from repro.circuits.process import get_technology

CARD = get_technology("bsim45")


def make_device(device_type="nmos", width=2e-6, length=180e-9):
    return MOSFET(device_type, width, length, CARD)


class TestContinuityAtVovZero:
    @pytest.mark.parametrize("device_type", ["nmos", "pmos"])
    def test_ids_continuous_across_vov_zero(self, device_type):
        device = make_device(device_type)
        vth = device.vth
        # Straddle the boundary as tightly as float64 allows.
        below = device.operating_point(vth - 1e-12, 0.9).ids
        above = device.operating_point(vth + 1e-12, 0.9).ids
        assert abs(above - below) / max(below, 1e-30) < 1e-6

    @pytest.mark.parametrize("device_type", ["nmos", "pmos"])
    def test_gm_continuous_across_vov_zero(self, device_type):
        device = make_device(device_type)
        vth = device.vth
        below = device.operating_point(vth - 1e-12, 0.9).gm
        above = device.operating_point(vth + 1e-12, 0.9).gm
        assert abs(above - below) / max(below, 1e-30) < 1e-6

    def test_sweep_has_no_jumps(self):
        """Relative steps on a fine vgs grid stay proportional to the step."""
        device = make_device()
        vgs = np.linspace(device.vth - 0.15, device.vth + 0.15, 6001)
        ids = np.array([device.operating_point(v, 0.9).ids for v in vgs])
        relative_steps = np.abs(np.diff(ids)) / np.maximum(ids[:-1], 1e-30)
        # A discontinuity shows up as a step-size-independent jump; a smooth
        # exponential on a 50 uV grid moves < 0.2% per step.
        assert relative_steps.max() < 2e-3

    def test_ids_monotone_in_vgs(self):
        device = make_device()
        vgs = np.linspace(0.1, 1.5, 2001)
        ids = np.array([device.operating_point(v, 0.9).ids for v in vgs])
        assert np.all(np.diff(ids) > 0)

    def test_limits_match_square_law_and_exponential(self):
        device = make_device()
        phi_t = CARD.thermal_voltage(27.0)
        # Deep strong inversion approaches the square law.
        strong = device.operating_point(device.vth + 0.5, 1.5)
        square = 0.5 * device.beta * 0.5 ** 2 * (1.0 + device.channel_length_modulation * 1.5)
        assert strong.ids == pytest.approx(square, rel=0.05)
        # Deep weak inversion decays exponentially: one phi_t of gate drive
        # changes the current by e^(1/n).
        low = device.operating_point(device.vth - 0.35, 0.9).ids
        lower = device.operating_point(device.vth - 0.35 - phi_t, 0.9).ids
        assert low / lower == pytest.approx(np.exp(1.0 / 1.4), rel=1e-2)


class TestRegions:
    def test_region_labels(self):
        device = make_device()
        assert device.operating_point(device.vth - 0.1, 0.9).region == "subthreshold"
        assert device.operating_point(device.vth + 0.3, 0.9).region == "saturation"
        assert device.operating_point(device.vth + 0.5, 0.05).region == "triode"

    def test_validation(self):
        with pytest.raises(ValueError):
            MOSFET("nmos", 1e-9, 180e-9, CARD)  # below min width
        with pytest.raises(ValueError):
            MOSFET("nmos", 2e-6, 1e-9, CARD)  # below min length
        with pytest.raises(ValueError):
            MOSFET("njfet", 2e-6, 180e-9, CARD)  # unknown type


class TestBiasForCurrent:
    def test_round_trip_with_operating_point(self):
        """bias_for_current is the exact inverse of the smooth drain law."""
        device = make_device()
        for ids in (1e-7, 1e-6, 1e-5, 1e-4):
            op = device.bias_for_current(ids, 0.9)
            forward = device.operating_point(device.vth + op.vov, 0.9)
            assert forward.ids == pytest.approx(ids, rel=1e-9)
            assert forward.gm == pytest.approx(op.gm, rel=1e-9)
            assert forward.gds == pytest.approx(op.gds, rel=1e-9)

    def test_weak_inversion_gm_limit(self):
        """At tiny currents gm/id approaches 1/(n phi_t)."""
        device = make_device(width=100e-6)
        phi_t = CARD.thermal_voltage(27.0)
        op = device.bias_for_current(1e-9, 0.9)
        assert op.gm / op.ids == pytest.approx(1.0 / (1.4 * phi_t), rel=0.02)

    def test_rejects_nonpositive_current(self):
        with pytest.raises(ValueError):
            make_device().bias_for_current(0.0, 0.9)


class TestVectorizedHelpers:
    def test_smooth_overdrive_limits(self):
        two_n_phi_t = 0.0725
        assert smooth_overdrive(1.0, two_n_phi_t) == pytest.approx(1.0, rel=1e-5)
        assert smooth_overdrive(-1.0, two_n_phi_t) == pytest.approx(
            two_n_phi_t * np.exp(-1.0 / two_n_phi_t), rel=1e-5
        )
        # Vectorized call matches scalar calls.
        vov = np.linspace(-0.3, 0.3, 7)
        batch = smooth_overdrive(vov, two_n_phi_t)
        scalars = [smooth_overdrive(v, two_n_phi_t) for v in vov]
        np.testing.assert_allclose(batch, scalars)

    def test_saturation_from_current_matches_scalar_api(self):
        device = make_device()
        phi_t = CARD.thermal_voltage(27.0)
        currents = np.array([1e-7, 1e-6, 1e-5, 1e-4])
        veff, vov, gm, gds = saturation_from_current(
            device.beta, device.channel_length_modulation, currents, 0.9, phi_t
        )
        for i, ids in enumerate(currents):
            op = device.bias_for_current(float(ids), 0.9)
            assert op.gm == pytest.approx(float(gm[i]), rel=1e-12)
            assert op.vov == pytest.approx(float(vov[i]), rel=1e-9)
