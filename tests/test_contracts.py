"""Runtime contracts: free when off, strict when on, trajectory-neutral.

Covers the :func:`repro.analysis.contract` decorator mechanics (shape/dtype
specs with symbolic dimensions, argument freezing, pre/post hooks), the
read-only hardening of :class:`EvaluationCache` results (unconditional — a
caller mutating a hit in place must fault, not corrupt the shared cache),
deterministic RNG resolution, and the lock that matters most: enabling
contracts changes *nothing* about a search trajectory.
"""

import numpy as np
import pytest

from repro.analysis import (
    ArraySpec,
    ContractViolation,
    SeqLen,
    contract,
    contracts,
    contracts_enabled,
    hot_path,
    set_contracts,
)
from repro.circuits.pvt import nine_corner_grid
from repro.nn.modules import MLP, Linear
from repro.nn.seeding import DEFAULT_SEED, resolve_rng
from repro.search import EvaluationCache
from repro.search.sizing import size_problem
from repro.search.trust_region import TrustRegionConfig


@pytest.fixture
def checking():
    """Run the test with contracts enabled, restoring prior state."""
    with contracts(True):
        yield


class TestToggle:
    def test_context_manager_scopes_and_restores(self):
        before = contracts_enabled()
        with contracts(True):
            assert contracts_enabled()
            with contracts(False):
                assert not contracts_enabled()
            assert contracts_enabled()
        assert contracts_enabled() == before

    def test_set_contracts_returns_previous_state(self):
        previous = set_contracts(True)
        try:
            assert set_contracts(True) is True
        finally:
            set_contracts(previous)

    def test_disabled_wrapper_is_a_no_op(self):
        @contract(args={"x": ArraySpec(2, 2)})
        def f(x):
            return x

        with contracts(False):
            # Wrong everything: not even an ndarray.  Must sail through.
            assert f("not an array") == "not an array"

    def test_hot_path_marker_is_inert(self):
        @hot_path
        def f(x):
            return x + 1

        assert f(1) == 2
        assert f.__hot_path__ is True


class TestArraySpec:
    @staticmethod
    def make(spec):
        @contract(args={"x": spec})
        def f(x):
            return x

        return f

    def test_rejects_non_array(self, checking):
        with pytest.raises(ContractViolation, match="expected an ndarray"):
            self.make(ArraySpec(None))([1.0, 2.0])

    def test_rejects_wrong_dtype(self, checking):
        with pytest.raises(ContractViolation, match="dtype"):
            self.make(ArraySpec(None))(np.zeros(3, dtype=np.float32))

    def test_dtype_none_skips_dtype(self, checking):
        f = self.make(ArraySpec(None, dtype=None))
        assert f(np.zeros(3, dtype=np.int64)).dtype == np.int64

    def test_rejects_wrong_ndim(self, checking):
        with pytest.raises(ContractViolation, match="axes"):
            self.make(ArraySpec(None, None))(np.zeros(3))

    def test_rejects_wrong_fixed_dim(self, checking):
        with pytest.raises(ContractViolation, match="axis 1"):
            self.make(ArraySpec(None, 4))(np.zeros((2, 3)))

    def test_accepts_matching_array(self, checking):
        value = np.zeros((2, 4))
        assert self.make(ArraySpec(None, 4))(value) is value

    def test_symbolic_dims_must_agree_across_arguments(self, checking):
        @contract(args={"a": ArraySpec("n", None), "b": ArraySpec("n", None)})
        def f(a, b):
            return a

        f(np.zeros((3, 1)), np.zeros((3, 5)))
        with pytest.raises(ContractViolation, match="'n'"):
            f(np.zeros((3, 1)), np.zeros((4, 5)))

    def test_return_value_validated_against_argument_bindings(self, checking):
        @contract(args={"corners": SeqLen("c")}, returns=ArraySpec("c", None, None))
        def f(samples, corners):
            return np.zeros((len(corners) + 1, 2, 3))

        with pytest.raises(ContractViolation, match="return value"):
            f(np.zeros((2, 3)), [1, 2])

    def test_seqlen_rejects_unsized(self, checking):
        @contract(args={"corners": SeqLen("c")})
        def f(corners):
            return corners

        with pytest.raises(ContractViolation, match="sized sequence"):
            f(iter([1, 2]))


class TestFrozenArguments:
    def test_mutation_inside_the_call_faults(self, checking):
        @contract(frozen=("x",))
        def f(x):
            x[0] = 99.0

        value = np.zeros(3)
        with pytest.raises(ValueError, match="read-only"):
            f(value)
        # Writeability restored even though the call raised.
        assert value.flags.writeable
        value[0] = 1.0

    def test_writeability_restored_after_clean_call(self, checking):
        @contract(frozen=("x",))
        def f(x):
            return x.sum()

        value = np.arange(3.0)
        assert f(value) == 3.0
        assert value.flags.writeable

    def test_already_readonly_input_stays_readonly(self, checking):
        @contract(frozen=("x",))
        def f(x):
            return x

        value = np.zeros(3)
        value.flags.writeable = False
        f(value)
        assert not value.flags.writeable

    def test_freeze_result(self, checking):
        @contract(freeze_result=True)
        def f():
            return np.zeros(3)

        result = f()
        with pytest.raises(ValueError, match="read-only"):
            result[0] = 1.0


class TestHooks:
    def test_pre_hook_sees_bound_arguments(self, checking):
        @contract(pre=lambda a: None if a["n"] > 0 else f"n must be positive, got {a['n']}")
        def f(n=0):
            return n

        assert f(n=2) == 2
        with pytest.raises(ContractViolation, match="n must be positive, got 0"):
            f()

    def test_check_hook_sees_result(self, checking):
        @contract(check=lambda a, r: None if r >= a["x"] else "shrank")
        def f(x):
            return x - 1

        with pytest.raises(ContractViolation, match="shrank"):
            f(1)

    def test_unknown_parameter_rejected_at_decoration_time(self):
        with pytest.raises(TypeError, match="unknown parameters: typo"):

            @contract(args={"typo": ArraySpec(None)})
            def f(x):
                return x


class TestCacheReadOnly:
    """Satellite (b): cache results are immutable, contracts on or off."""

    @staticmethod
    def make_cache():
        def corner_evaluator(samples, corners):
            samples = np.atleast_2d(samples)
            base = samples.sum(axis=1)
            return np.stack(
                [base[:, np.newaxis] + i for i in range(len(corners))], axis=0
            )

        return EvaluationCache(corner_evaluator, dimension=3, n_metrics=1)

    def test_mutating_a_result_faults_instead_of_corrupting(self):
        cache = self.make_cache()
        corners = nine_corner_grid()[:2]
        samples = np.arange(6.0).reshape(2, 3)
        with contracts(False):  # hardening must hold even with contracts off
            block = cache.evaluate(samples, corners)
            with pytest.raises(ValueError, match="read-only"):
                block[0, 0, 0] = -1.0
            # The cached rows survived the attempted mutation bit for bit.
            again = cache.evaluate(samples, corners)
        np.testing.assert_array_equal(block, again)
        assert cache.hits == 4

    def test_hit_served_blocks_are_also_readonly(self):
        cache = self.make_cache()
        corners = nine_corner_grid()[:1]
        samples = np.zeros((1, 3))
        cache.evaluate(samples, corners)
        hit = cache.evaluate(samples, corners)
        with pytest.raises(ValueError, match="read-only"):
            hit[0, 0, 0] = -1.0

    def test_state_digest_is_content_addressed(self):
        first, second = self.make_cache(), self.make_cache()
        corners = nine_corner_grid()[:2]
        samples = np.arange(6.0).reshape(2, 3)
        first.evaluate(samples, corners)
        # Same content in a different insertion order digests equal.
        second.evaluate(samples[1:], corners)
        second.evaluate(samples, corners)
        assert first.state_digest() == second.state_digest()
        second.evaluate(np.full((1, 3), 7.0), corners)
        assert first.state_digest() != second.state_digest()

    def test_contract_rejects_mismatched_block(self, checking):
        def bad_evaluator(samples, corners):
            return np.zeros((len(corners) + 1, np.atleast_2d(samples).shape[0], 1))

        cache = EvaluationCache(bad_evaluator, dimension=3, n_metrics=1)
        with pytest.raises((ContractViolation, ValueError)):
            cache.evaluate(np.zeros((1, 3)), nine_corner_grid()[:2])


class TestSeeding:
    """Satellite (a): no code path falls back to OS entropy."""

    def test_rng_and_seed_together_rejected(self):
        with pytest.raises(ValueError, match="both"):
            resolve_rng(np.random.default_rng(0), seed=1)

    def test_explicit_rng_wins(self):
        rng = np.random.default_rng(123)
        assert resolve_rng(rng) is rng

    def test_seed_builds_matching_generator(self):
        a = resolve_rng(seed=7).standard_normal(4)
        b = np.random.default_rng(7).standard_normal(4)
        np.testing.assert_array_equal(a, b)

    def test_default_is_fixed_seed_not_entropy(self):
        a = resolve_rng().standard_normal(4)
        b = np.random.default_rng(DEFAULT_SEED).standard_normal(4)
        np.testing.assert_array_equal(a, b)

    def test_default_constructed_modules_are_reproducible(self):
        first, second = Linear(3, 2), Linear(3, 2)
        np.testing.assert_array_equal(first.weight.data, second.weight.data)
        first, second = MLP(3, [4], 1), MLP(3, [4], 1)
        for a, b in zip(first.parameters(), second.parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_seed_kwarg_reaches_the_initializer(self):
        a, b = Linear(3, 2, seed=5), Linear(3, 2, seed=5)
        c = Linear(3, 2, seed=6)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)
        assert not np.array_equal(a.weight.data, c.weight.data)


class TestTrajectoryNeutrality:
    """Contracts observe; they must never steer the search."""

    def test_sizing_run_is_bit_identical_with_contracts_on(self):
        config = TrustRegionConfig(seed=0, max_evaluations=120)
        with contracts(False):
            off = size_problem("ota_5t", tier="smoke", config=config)
        with contracts(True):
            on = size_problem("ota_5t", tier="smoke", config=config)
        assert off.best_vector.tobytes() == on.best_vector.tobytes()
        assert off.evaluations == on.evaluations
        assert off.best_sizing == on.best_sizing
