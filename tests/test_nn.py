"""NN library: training convergence and optimizer-state persistence."""

import numpy as np
import pytest

from repro.nn import MLP, Adam, StandardScaler, train_regressor


def test_regressor_fits_smooth_function():
    rng = np.random.default_rng(0)
    inputs = rng.uniform(-1.0, 1.0, size=(256, 2))
    targets = np.stack(
        [np.sin(2.0 * inputs[:, 0]), inputs[:, 0] * inputs[:, 1]], axis=1
    )
    model = MLP(2, (32, 32), 2, rng=rng)
    history = train_regressor(model, inputs, targets, epochs=150, lr=3e-3, rng=rng)
    assert history.improved()
    assert history.final_loss < 0.01


def test_incremental_refit_with_persistent_adam():
    """The search loop refits with a shared optimizer; moments must persist."""
    rng = np.random.default_rng(1)
    inputs = rng.uniform(-1.0, 1.0, size=(128, 2))
    targets = inputs.sum(axis=1, keepdims=True)
    model = MLP(2, (16,), 1, rng=rng)
    optimizer = Adam(model.parameters(), lr=1e-2)
    losses = []
    for _ in range(6):
        history = train_regressor(
            model, inputs, targets, epochs=20, optimizer=optimizer, rng=rng
        )
        losses.append(history.final_loss)
    assert losses[-1] < losses[0]
    assert optimizer._t > 0  # moments actually advanced across refits


def test_state_dict_round_trip():
    rng = np.random.default_rng(2)
    model = MLP(3, (8,), 2, rng=rng)
    clone = MLP(3, (8,), 2, rng=np.random.default_rng(3))
    clone.load_state_dict(model.state_dict())
    x = rng.normal(size=(5, 3))
    np.testing.assert_allclose(model.predict(x), clone.predict(x))


def test_standard_scaler_round_trip():
    rng = np.random.default_rng(4)
    data = rng.normal(loc=5.0, scale=3.0, size=(64, 4))
    scaler = StandardScaler().fit(data)
    np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(data)), data)
    constant = np.ones((10, 2))
    np.testing.assert_allclose(StandardScaler().fit_transform(constant), 0.0)


def test_scalers_reject_wrong_feature_count():
    """Broadcasting used to 'normalise' mismatched arrays into garbage."""
    from repro.nn.scalers import MinMaxScaler

    rng = np.random.default_rng(5)
    data = rng.normal(size=(32, 4))
    for scaler in (StandardScaler().fit(data), MinMaxScaler().fit(data)):
        for bad in (rng.normal(size=(8, 3)), rng.normal(size=(8, 5)), rng.normal(size=4 * 8)):
            with pytest.raises(ValueError):
                scaler.transform(bad)
            with pytest.raises(ValueError):
                scaler.inverse_transform(bad)
        # The fitted width still passes, including a single flat vector.
        assert scaler.transform(data).shape == data.shape
        assert scaler.transform(data[0]).shape == (1, 4)


def test_unfitted_scalers_raise():
    from repro.nn.scalers import MinMaxScaler

    for scaler in (StandardScaler(), MinMaxScaler()):
        with pytest.raises(RuntimeError):
            scaler.transform(np.ones((2, 2)))
        with pytest.raises(RuntimeError):
            scaler.inverse_transform(np.ones((2, 2)))
