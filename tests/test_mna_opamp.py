"""MNA solver checks and the MNA-vs-analytical opamp cross-validation."""

import numpy as np
import pytest

from repro.circuits.mna import (
    ACSweepResult,
    MNASolver,
    logspace_frequencies,
    unity_gain_metrics,
)
from repro.circuits.netlist import Netlist
from repro.circuits.opamp import METRIC_NAMES, VARIABLE_NAMES, TwoStageOpAmp
from repro.circuits.pvt import PVTCondition


def rc_lowpass(resistance=1e3, capacitance=1e-9):
    netlist = Netlist("rc")
    netlist.add_voltage_source("in", "0", 1.0)
    netlist.add_resistor("in", "out", resistance)
    netlist.add_capacitor("out", "0", capacitance)
    return netlist


class TestMNASolver:
    def test_rc_lowpass_matches_analytic(self):
        solver = MNASolver(rc_lowpass())
        frequencies = logspace_frequencies(1e2, 1e8, 120)
        result = solver.ac_sweep(frequencies)
        corner = 1.0 / (2.0 * np.pi * 1e3 * 1e-9)
        analytic = 1.0 / (1.0 + 1j * frequencies / corner)
        np.testing.assert_allclose(result.transfer("out"), analytic, rtol=1e-9)

    def test_batched_sweep_matches_single_solves(self):
        solver = MNASolver(rc_lowpass())
        frequencies = np.array([1e3, 1e5, 1e7])
        sweep = solver.ac_sweep(frequencies)
        for k, frequency in enumerate(frequencies):
            single = solver.solve_at(float(frequency))
            assert abs(single["out"] - sweep.node_voltages["out"][k]) < 1e-12

    def test_dc_divider(self):
        netlist = Netlist("divider")
        netlist.add_voltage_source("in", "0", 2.0)
        netlist.add_resistor("in", "mid", 1e3)
        netlist.add_resistor("mid", "0", 3e3)
        solution = MNASolver(netlist).solve_dc()
        assert solution["mid"] == pytest.approx(1.5, rel=1e-9)

    def test_netlist_mutation_is_picked_up(self):
        netlist = rc_lowpass()
        solver = MNASolver(netlist)
        before = solver.solve_dc()["out"]
        netlist.add_resistor("out", "0", 1e3)  # turn into a 2:1 divider
        after = solver.solve_dc()["out"]
        assert before == pytest.approx(1.0, rel=1e-6)
        assert after == pytest.approx(0.5, rel=1e-6)

    def test_vccs_inverting_gain(self):
        netlist = Netlist("cs-stage")
        netlist.add_voltage_source("in", "0", 1.0)
        netlist.add_vccs("out", "0", "in", "0", 1e-3)
        netlist.add_resistor("out", "0", 1e4)
        solution = MNASolver(netlist).solve_dc()
        assert solution["out"] == pytest.approx(-10.0, rel=1e-9)


class TestUnityGainMetrics:
    @staticmethod
    def synthetic_sweep(poles_hz, gain_db, frequencies=None, zero_rhp_hz=None):
        if frequencies is None:
            frequencies = logspace_frequencies(1e0, 1e12, 2000)
        response = np.full(len(frequencies), 10 ** (gain_db / 20.0), dtype=complex)
        s = 1j * frequencies
        for pole in poles_hz:
            response = response / (1.0 + s / pole)
        if zero_rhp_hz is not None:
            response = response * (1.0 - s / zero_rhp_hz)
        return ACSweepResult(frequencies=frequencies, node_voltages={"out": response})

    def test_single_pole_metrics(self):
        pole = 1e3
        result = self.synthetic_sweep([pole], 60.0)
        metrics = unity_gain_metrics(result, "out")
        assert metrics["dc_gain_db"] == pytest.approx(60.0, abs=0.01)
        assert metrics["ugbw_hz"] == pytest.approx(pole * 1000.0, rel=0.02)
        assert metrics["phase_margin_deg"] == pytest.approx(90.0, abs=1.0)

    def test_three_pole_margin_is_negative_but_in_range(self):
        result = self.synthetic_sweep([1e3, 1e3, 1e3], 80.0)
        metrics = unity_gain_metrics(result, "out")
        assert -180.0 < metrics["phase_margin_deg"] < 0.0

    def test_phase_margin_wraps_below_minus_180(self):
        """Five coincident poles accumulate ~-420 degrees at the crossover,
        i.e. a raw margin near -240; the seed reported that below -180
        instead of wrapping into the conventional range."""
        result = self.synthetic_sweep([1e3] * 5, 100.0)
        raw_margin = 180.0 + np.degrees(
            -5.0 * np.arctan(10.0)  # exact phase at the 0 dB crossing
        )
        assert raw_margin < -180.0  # the sweep really exercises the wrap
        metrics = unity_gain_metrics(result, "out")
        assert -180.0 < metrics["phase_margin_deg"] <= 180.0
        assert metrics["phase_margin_deg"] == pytest.approx(raw_margin + 360.0, abs=2.0)

    def test_never_crossing_returns_nan(self):
        result = self.synthetic_sweep([1e3], -10.0)
        metrics = unity_gain_metrics(result, "out")
        assert np.isnan(metrics["ugbw_hz"])


SIZING = dict(
    zip(VARIABLE_NAMES, [10e-6, 10e-6, 30e-6, 200e-9, 200e-9, 40e-6, 200e-6, 2e-12])
)


class TestOpampCrossCheck:
    def test_analytic_matches_mna(self):
        amp = TwoStageOpAmp()
        analytic = amp.evaluate(SIZING)
        numeric = amp.mna_metrics(SIZING)
        assert analytic["dc_gain_db"] == pytest.approx(numeric["dc_gain_db"], abs=0.1)
        assert analytic["ugbw_hz"] == pytest.approx(numeric["ugbw_hz"], rel=0.05)
        assert analytic["phase_margin_deg"] == pytest.approx(
            numeric["phase_margin_deg"], abs=3.0
        )

    def test_cross_check_holds_at_a_harsh_corner(self):
        amp = TwoStageOpAmp(condition=PVTCondition("ss", 0.9, 125.0))
        analytic = amp.evaluate(SIZING)
        numeric = amp.mna_metrics(SIZING)
        assert analytic["dc_gain_db"] == pytest.approx(numeric["dc_gain_db"], abs=0.1)
        assert analytic["ugbw_hz"] == pytest.approx(numeric["ugbw_hz"], rel=0.05)
        assert analytic["phase_margin_deg"] == pytest.approx(
            numeric["phase_margin_deg"], abs=3.0
        )

    def test_batch_matches_scalar_path(self):
        amp = TwoStageOpAmp()
        space = amp.design_space()
        samples = space.sample(np.random.default_rng(11), 32)
        batch = amp.evaluate_batch(samples)
        assert batch.shape == (32, len(METRIC_NAMES))
        for k in (0, 7, 31):
            single = amp.evaluate(samples[k])
            np.testing.assert_allclose(
                batch[k], [single[name] for name in METRIC_NAMES], rtol=1e-12
            )

    def test_metrics_all_finite_over_design_space(self):
        amp = TwoStageOpAmp()
        samples = amp.design_space().sample(np.random.default_rng(12), 500)
        metrics = amp.evaluate_batch(samples)
        assert np.all(np.isfinite(metrics))

    def test_corner_ordering_is_physical(self):
        """A slow/hot/low-V corner must not beat nominal on gain-bandwidth."""
        nominal = TwoStageOpAmp().evaluate(SIZING)
        harsh = TwoStageOpAmp(condition=PVTCondition("ss", 0.9, 125.0)).evaluate(SIZING)
        assert harsh["ugbw_hz"] < nominal["ugbw_hz"]
        assert harsh["dc_gain_db"] < nominal["dc_gain_db"]

    def test_rejects_bad_vector_shape(self):
        amp = TwoStageOpAmp()
        with pytest.raises(ValueError):
            amp.evaluate([1.0, 2.0])
        with pytest.raises(ValueError):
            amp.evaluate_batch(np.ones((3, 4)))
