"""Corner-tensorized evaluation engine: stacked cards, parity, cache, lock.

The corner engine's one hard promise is *bit-identity*: evaluating the whole
PVT grid as a single NumPy broadcast must produce exactly the floats the
per-corner Python loop produces — ``np.array_equal``, not ``allclose`` — so
switching engines can never move a search trajectory.  Everything here
enforces that promise at each layer: the stacked technology card, the device
helpers it broadcasts through, ``evaluate_corners`` on every registered
topology over the full 45-corner grid, the cross-phase
:class:`~repro.search.eval_cache.EvaluationCache`, and finally the
progressive loop end to end.
"""

import numpy as np
import pytest

from repro.circuits.devices import parasitic_capacitances, saturation_from_current
from repro.circuits.process import get_technology, stack_cards
from repro.circuits.pvt import (
    NOMINAL,
    PVTCondition,
    full_corner_grid,
    nine_corner_grid,
)
from repro.circuits.topologies import available_topologies, get_topology
from repro.search import EvaluationCache, ProgressiveConfig
from repro.search.sizing import size_problem
from repro.search.trust_region import TrustRegionConfig

ALL_TOPOLOGY_NAMES = sorted(available_topologies())


class TestStackedCards:
    def test_rows_bit_identical_to_scalar_apply(self):
        card = get_technology("bsim45")
        corners = full_corner_grid()
        stacked = PVTCondition.apply_stack(corners, card)
        for i, corner in enumerate(corners):
            derated = corner.apply(card)
            for field in ("vdd_nominal", "kp_n", "kp_p", "vth_n", "vth_p"):
                assert np.asarray(getattr(stacked, field))[i, 0] == getattr(
                    derated, field
                ), (corner.name, field)

    def test_corner_dependent_fields_are_columns(self):
        stacked = PVTCondition.apply_stack(nine_corner_grid(), get_technology("bsim22"))
        assert np.asarray(stacked.kp_n).shape == (9, 1)
        assert np.asarray(stacked.vdd_nominal).shape == (9, 1)
        # Corner-invariant fields stay scalar so they broadcast for free.
        assert np.isscalar(stacked.cox)
        assert np.isscalar(stacked.min_length)

    def test_single_corner_stack_collapses_to_the_derated_card(self):
        card = get_technology("n5")
        corner = PVTCondition("ss", 0.9, 125.0)
        stacked = PVTCondition.apply_stack([corner], card)
        assert stacked == corner.apply(card)

    def test_stacking_nothing_rejected(self):
        with pytest.raises(ValueError):
            stack_cards([])

    def test_stacking_mixed_nodes_rejected(self):
        with pytest.raises(ValueError, match="different nodes"):
            stack_cards([get_technology("bsim45"), get_technology("bsim22")])

    def test_thermal_voltage_broadcasts_over_temperature_columns(self):
        card = get_technology("bsim45")
        temperatures = np.array([[-40.0], [27.0], [125.0]])
        column = card.thermal_voltage(temperatures)
        assert column.shape == (3, 1)
        for row, temperature in zip(column, temperatures):
            assert row[0] == card.thermal_voltage(float(temperature[0]))


class TestDeviceHelpersBroadcast:
    """The closed-form device math must accept a (n_corners, 1) corner axis."""

    def test_saturation_from_current_corner_axis(self):
        """Corner columns (scaled beta, per-corner vds/phi_t) x batch lam."""
        rng = np.random.default_rng(0)
        beta_batch = rng.uniform(1e-4, 1e-3, size=7)
        lam_batch = rng.uniform(0.05, 0.3, size=7)
        corner_scale = np.array([[0.88], [1.00], [1.12]])
        vds = np.array([[0.45], [0.50], [0.55]])
        phi_t = np.array([[0.020], [0.026], [0.034]])
        stacked = saturation_from_current(
            corner_scale * beta_batch, lam_batch, 50e-6, vds, phi_t
        )
        assert all(part.shape == (3, 7) for part in stacked)
        for i in range(3):
            row = saturation_from_current(
                float(corner_scale[i, 0]) * beta_batch, lam_batch, 50e-6,
                float(vds[i, 0]), float(phi_t[i, 0]),
            )
            for stacked_part, row_part in zip(stacked, row):
                np.testing.assert_array_equal(stacked_part[i], row_part)

    def test_parasitic_capacitances_corner_invariant(self):
        card = get_technology("bsim45")
        widths = np.linspace(1e-6, 5e-6, 4)
        lengths = np.linspace(1e-7, 5e-7, 4)
        cgs, cgd, cdb = parasitic_capacitances(card, widths, lengths)
        assert cgs.shape == cgd.shape == cdb.shape == (4,)


@pytest.mark.parametrize("name", ALL_TOPOLOGY_NAMES)
class TestEvaluateCornersParity:
    """The acceptance bar: stacked == looped, bitwise, 4 topologies x 45."""

    def test_bit_identical_on_full_grid(self, name):
        problem = get_topology(name)()
        corners = full_corner_grid()
        samples = problem.design_space().sample(np.random.default_rng(11), 128)
        stacked = problem.evaluate_corners(samples, corners)
        looped = problem.evaluate_corners_looped(samples, corners)
        assert stacked.shape == (45, 128, len(problem.METRIC_NAMES))
        assert np.array_equal(stacked, looped), f"{name}: engines diverge"

    def test_single_corner_matches_evaluate_batch(self, name):
        problem = get_topology(name)()
        samples = problem.design_space().sample(np.random.default_rng(12), 32)
        block = problem.evaluate_corners(samples, [problem.condition])
        assert np.array_equal(block[0], problem.evaluate_batch(samples))

    def test_corner_row_matches_derated_problem(self, name):
        """Each grid row equals a from-scratch problem at that corner."""
        problem = get_topology(name)()
        corners = nine_corner_grid()
        samples = problem.design_space().sample(np.random.default_rng(13), 16)
        block = problem.evaluate_corners(samples, corners)
        for i in (0, 4, 8):
            sibling = get_topology(name)(condition=corners[i])
            assert np.array_equal(block[i], sibling.evaluate_batch(samples))

    def test_empty_corner_list_rejected(self, name):
        problem = get_topology(name)()
        samples = problem.design_space().sample(np.random.default_rng(14), 2)
        with pytest.raises(ValueError):
            problem.evaluate_corners(samples, [])


class TestForCondition:
    def test_sibling_keeps_node_and_load(self):
        problem = get_topology("ota_5t")("bsim22", load_cap=3e-12)
        harsh = problem.for_condition(PVTCondition("ss", 0.9, 125.0))
        assert harsh.base_card == problem.base_card
        assert harsh.load_cap == problem.load_cap
        assert harsh.condition.name == "ss_0.90V_125C"


class TestEvaluationCache:
    @staticmethod
    def make_cache(counter):
        def corner_evaluator(samples, corners):
            counter.append(np.atleast_2d(samples).shape[0])
            samples = np.atleast_2d(samples)
            # Metric = row sum + corner index, distinct per (row, corner).
            base = samples.sum(axis=1)
            return np.stack(
                [base[:, np.newaxis] + i for i in range(len(corners))], axis=0
            )

        return EvaluationCache(corner_evaluator, dimension=3, n_metrics=1)

    def test_repeat_rows_hit_without_reevaluation(self):
        calls = []
        cache = self.make_cache(calls)
        corners = nine_corner_grid()[:2]
        samples = np.arange(12.0).reshape(4, 3)
        first = cache.evaluate(samples, corners)
        assert cache.misses == 8 and cache.hits == 0
        second = cache.evaluate(samples, corners)
        assert np.array_equal(first, second)
        assert cache.hits == 8 and cache.misses == 8
        assert calls == [4]  # the second call never reached the evaluator
        assert len(cache) == 8

    def test_partial_batches_only_evaluate_fresh_rows(self):
        calls = []
        cache = self.make_cache(calls)
        corners = nine_corner_grid()[:3]
        cache.evaluate(np.arange(6.0).reshape(2, 3), corners)
        mixed = np.vstack([np.arange(3.0), np.full(3, 99.0)])
        block = cache.evaluate(mixed, corners)
        assert calls == [2, 1]  # only the unseen row went out
        assert cache.hits == 3 and cache.misses == 9
        np.testing.assert_array_equal(block[:, 0, 0], [3.0, 4.0, 5.0])

    def test_new_corner_recomputes_the_row(self):
        calls = []
        cache = self.make_cache(calls)
        corners = nine_corner_grid()
        samples = np.arange(3.0).reshape(1, 3)
        cache.evaluate(samples, corners[:1])
        block = cache.evaluate(samples, corners[:2])
        # The row was only cached for corner 0, so it counts as fresh again.
        assert calls == [1, 1]
        assert block.shape == (2, 1, 1)
        assert cache.eval_seconds >= 0.0

    def test_keys_are_bit_exact(self):
        calls = []
        cache = self.make_cache(calls)
        corners = nine_corner_grid()[:1]
        cache.evaluate(np.array([[0.1, 0.2, 0.3]]), corners)
        # A row differing in the last bit must miss.
        perturbed = np.array([[np.nextafter(0.1, 1.0), 0.2, 0.3]])
        cache.evaluate(perturbed, corners)
        assert cache.misses == 2 and cache.hits == 0

    def test_empty_corner_list_rejected(self):
        cache = self.make_cache([])
        with pytest.raises(ValueError):
            cache.evaluate(np.zeros((1, 3)), [])

    def test_corners_sharing_a_display_name_do_not_collide(self):
        """PVTCondition.name rounds V/T for printing; the cache must key on
        the condition itself, never the lossy string."""
        near = PVTCondition("tt", 1.0, 27.0), PVTCondition("tt", 1.0, 27.4)
        assert near[0].name == near[1].name  # the trap

        def corner_evaluator(samples, corners):
            samples = np.atleast_2d(samples)
            return np.stack(
                [np.full((samples.shape[0], 1), c.temperature_c) for c in corners],
                axis=0,
            )

        cache = EvaluationCache(corner_evaluator, dimension=3, n_metrics=1)
        samples = np.zeros((1, 3))
        assert cache.evaluate(samples, [near[0]])[0, 0, 0] == 27.0
        assert cache.evaluate(samples, [near[1]])[0, 0, 0] == 27.4
        assert cache.misses == 2 and cache.hits == 0


class TestProgressiveTrajectoryLock:
    """Same seeds -> same trajectories, whichever corner engine runs."""

    QUICK = TrustRegionConfig(seed=0, max_evaluations=200)

    @pytest.mark.parametrize("topology", ["ota_5t", "two_stage_opamp"])
    def test_stacked_equals_looped_end_to_end(self, topology):
        runs = {
            engine: size_problem(
                topology,
                tier="smoke",
                config=self.QUICK,
                corner_engine=engine,
            )
            for engine in ("stacked", "looped")
        }
        stacked, looped = runs["stacked"], runs["looped"]
        np.testing.assert_array_equal(stacked.best_vector, looped.best_vector)
        assert stacked.evaluations == looped.evaluations
        assert stacked.solved_all_corners == looped.solved_all_corners
        assert [r.satisfied for r in stacked.corner_reports] == [
            r.satisfied for r in looped.corner_reports
        ]
        for ours, theirs in zip(stacked.corner_reports, looped.corner_reports):
            assert ours.metrics == theirs.metrics

    def test_cache_and_eval_accounting_populated(self):
        result = size_problem("ota_5t", tier="smoke", config=self.QUICK)
        assert result.cache_misses > 0
        # The full-grid verification re-touches the phase winner: hits.
        assert result.cache_hits >= 0
        assert result.eval_seconds >= 0.0

    def test_unknown_corner_engine_rejected(self):
        with pytest.raises(ValueError, match="corner engine"):
            ProgressiveConfig(corner_engine="spiral")
        with pytest.raises(ValueError, match="corner engine"):
            size_problem("ota_5t", tier="smoke", corner_engine="spiral")


class TestRefitSkip:
    """The final surrogate refit (whose output nobody consumes) is skipped."""

    def test_no_refit_after_the_deciding_batch(self, monkeypatch):
        from repro.search.trust_region import TrustRegionSearch
        from repro.core.design_space import DesignSpace, Parameter
        from repro.search.spec import Spec, Specification

        def evaluator(samples):
            return np.atleast_2d(samples)[:, :1] * 0.0

        space = DesignSpace([Parameter("x", 0.0, 1.0, grid_points=201)])
        spec = Specification([Spec("a", ">=", 10.0)], ["a"])  # unsatisfiable
        config = TrustRegionConfig(
            seed=0, initial_samples=10, batch_size=5, max_evaluations=30,
            candidate_pool=32, surrogate_hidden=(8,), initial_epochs=5,
            refit_epochs=2,
        )
        search = TrustRegionSearch(evaluator, space, spec, config)
        refits = []
        original = TrustRegionSearch._refit_surrogate

        def counting(self, epochs):
            refits.append(self._count)
            return original(self, epochs)

        monkeypatch.setattr(TrustRegionSearch, "_refit_surrogate", counting)
        result = search.run()
        assert result.evaluations == 30
        # Refits: one on the Monte-Carlo seed, then one per iteration except
        # the budget-exhausting last one, whose refit nobody would consume.
        assert len(refits) == len(result.history)
        assert refits[-1] < config.max_evaluations
        assert config.max_evaluations not in refits

    def test_search_solved_by_seed_stage_never_fits(self, monkeypatch):
        from repro.search.trust_region import TrustRegionSearch
        from repro.core.design_space import DesignSpace, Parameter
        from repro.search.spec import Spec, Specification

        def evaluator(samples):
            return np.ones((np.atleast_2d(samples).shape[0], 1))

        space = DesignSpace([Parameter("x", 0.0, 1.0, grid_points=11)])
        spec = Specification([Spec("a", ">=", 0.5)], ["a"])
        search = TrustRegionSearch(
            evaluator, space, spec, TrustRegionConfig(seed=0, initial_samples=4)
        )
        calls = []
        monkeypatch.setattr(
            TrustRegionSearch,
            "_refit_surrogate",
            lambda self, epochs: calls.append(epochs),
        )
        result = search.run()
        assert result.solved
        assert calls == []
