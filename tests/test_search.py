"""Trust-region search: spec machinery, smoke CSP, and the opamp demo."""

import numpy as np
import pytest

from repro.circuits.opamp import METRIC_NAMES, TwoStageOpAmp
from repro.circuits.pvt import hardest_condition, nine_corner_grid
from repro.core.design_space import DesignSpace, Parameter
from repro.search import (
    Spec,
    Specification,
    TrustRegionConfig,
    TrustRegionSearch,
)
from repro.search.opamp_demo import DEFAULT_SPECS, size_two_stage_opamp


class TestSpecification:
    def test_margins_and_score(self):
        spec = Specification(
            [Spec("gain", ">=", 100.0), Spec("power", "<=", 2.0)], ["gain", "power"]
        )
        metrics = np.array([[120.0, 1.0], [90.0, 3.0]])
        margins = spec.margins(metrics)
        np.testing.assert_allclose(margins, [[0.2, 0.5], [-0.1, -0.5]])
        np.testing.assert_allclose(spec.score(metrics), [0.0, -0.6])
        np.testing.assert_array_equal(spec.satisfied(metrics), [True, False])

    def test_unknown_metric_rejected(self):
        with pytest.raises(KeyError):
            Specification([Spec("missing", ">=", 1.0)], ["gain"])

    def test_bad_sense_rejected(self):
        with pytest.raises(ValueError):
            Spec("gain", ">", 1.0)

    def test_report_lists_failures(self):
        spec = Specification([Spec("gain", ">=", 100.0)], ["gain"])
        assert "FAIL" in spec.report(np.array([50.0]))
        assert "PASS" in spec.report(np.array([150.0]))


def quadratic_evaluator(samples):
    """Toy CSP: two metrics shaped so feasibility needs x near (0.7, 0.3)."""
    samples = np.atleast_2d(samples)
    x, y = samples[:, 0], samples[:, 1]
    metric_a = 1.0 - (x - 0.7) ** 2 - (y - 0.3) ** 2  # want >= 0.99
    metric_b = (x - 0.7) ** 2 + (y - 0.3) ** 2  # want <= 0.01
    return np.stack([metric_a, metric_b], axis=1)


class TestTrustRegionSearch:
    def make_search(self, seed=0, max_evaluations=300):
        space = DesignSpace(
            [Parameter("x", 0.0, 1.0, grid_points=101), Parameter("y", 0.0, 1.0, grid_points=101)]
        )
        spec = Specification(
            [Spec("a", ">=", 0.99), Spec("b", "<=", 0.01)], ["a", "b"]
        )
        config = TrustRegionConfig(
            seed=seed,
            initial_samples=24,
            batch_size=6,
            candidate_pool=128,
            max_evaluations=max_evaluations,
            surrogate_hidden=(24, 24),
            initial_epochs=60,
            refit_epochs=15,
        )
        return TrustRegionSearch(quadratic_evaluator, space, spec, config)

    def test_solves_toy_csp(self):
        result = self.make_search().run()
        assert result.solved
        assert result.evaluations <= 300
        assert abs(result.best_sizing["x"] - 0.7) < 0.1
        assert abs(result.best_sizing["y"] - 0.3) < 0.1

    def test_reproducible_under_fixed_seed(self):
        first = self.make_search(seed=3).run()
        second = self.make_search(seed=3).run()
        np.testing.assert_array_equal(first.best_vector, second.best_vector)
        assert first.evaluations == second.evaluations
        assert first.best_score == second.best_score

    def test_budget_is_respected(self):
        # An unsatisfiable spec must stop at the evaluation budget.
        space = DesignSpace([Parameter("x", 0.0, 1.0, grid_points=51)])
        spec = Specification([Spec("a", ">=", 10.0)], ["a"])

        def evaluator(samples):
            return np.atleast_2d(samples)[:, :1] * 0.0

        config = TrustRegionConfig(
            seed=0, initial_samples=10, batch_size=5, max_evaluations=40,
            candidate_pool=32, surrogate_hidden=(8,), initial_epochs=10, refit_epochs=5,
        )
        result = TrustRegionSearch(evaluator, space, spec, config).run()
        assert not result.solved
        assert result.evaluations <= 51  # cannot exceed the (finite) grid
        # The Monte-Carlo seed stage honours the budget as well.
        tight = TrustRegionConfig(
            seed=0, initial_samples=24, batch_size=5, max_evaluations=10,
            candidate_pool=32, surrogate_hidden=(8,), initial_epochs=10, refit_epochs=5,
        )
        clamped = TrustRegionSearch(evaluator, space, spec, tight).run()
        assert clamped.evaluations <= 10

    def test_budget_respected_when_batch_does_not_divide(self):
        """The last iteration must shrink its batch to the remaining budget."""
        space = DesignSpace(
            [Parameter("x", 0.0, 1.0, grid_points=101), Parameter("y", 0.0, 1.0, grid_points=101)]
        )
        spec = Specification([Spec("a", ">=", 10.0)], ["a", "b"])  # unsatisfiable
        config = TrustRegionConfig(
            seed=0, initial_samples=48, batch_size=8, max_evaluations=100,
            candidate_pool=64, surrogate_hidden=(8,), initial_epochs=10, refit_epochs=5,
        )
        result = TrustRegionSearch(quadratic_evaluator, space, spec, config).run()
        assert not result.solved
        assert result.evaluations == 100  # 48 + 6*8 + final clamped batch of 4

    def test_never_reevaluates_a_point(self):
        calls = []

        def counting_evaluator(samples):
            for row in np.atleast_2d(samples):
                calls.append(tuple(np.round(row, 12)))
            return quadratic_evaluator(samples)

        space = DesignSpace(
            [Parameter("x", 0.0, 1.0, grid_points=21), Parameter("y", 0.0, 1.0, grid_points=21)]
        )
        spec = Specification([Spec("a", ">=", 2.0)], ["a", "b"])  # unsatisfiable
        config = TrustRegionConfig(
            seed=1, initial_samples=12, batch_size=4, max_evaluations=80,
            candidate_pool=64, surrogate_hidden=(8,), initial_epochs=10, refit_epochs=5,
        )
        TrustRegionSearch(counting_evaluator, space, spec, config).run()
        assert len(calls) == len(set(calls))


class TestOpampSizingEndToEnd:
    """Acceptance: the agent meets the spec at the hardest PVT corner within
    a fixed budget, reproducibly under a fixed seed."""

    def run_hardest_corner(self, seed=0):
        condition = hardest_condition(nine_corner_grid())
        amp = TwoStageOpAmp(condition=condition)
        spec = Specification(DEFAULT_SPECS, METRIC_NAMES)
        config = TrustRegionConfig(seed=seed, max_evaluations=400)
        search = TrustRegionSearch(amp.evaluate_batch, amp.design_space(), spec, config)
        return search.run(), spec

    def test_solves_spec_at_hardest_corner(self):
        result, spec = self.run_hardest_corner()
        assert result.solved
        assert result.evaluations <= 400
        assert spec.satisfied(
            np.array([[result.best_metrics[name] for name in METRIC_NAMES]])
        )[0]

    def test_reproducible(self):
        first, _ = self.run_hardest_corner(seed=5)
        second, _ = self.run_hardest_corner(seed=5)
        np.testing.assert_array_equal(first.best_vector, second.best_vector)

    def test_solution_is_on_grid(self):
        result, _ = self.run_hardest_corner()
        amp = TwoStageOpAmp(condition=hardest_condition(nine_corner_grid()))
        space = amp.design_space()
        np.testing.assert_allclose(space.snap(result.best_vector), result.best_vector, rtol=1e-9)

    def test_progressive_pvt_demo(self):
        result = size_two_stage_opamp(seed=0)
        assert result.solved_all_corners
        assert len(result.corner_reports) == 9
        assert all(report.satisfied for report in result.corner_reports)
        # Sized at the hardest corner first (Section IV-E).
        hardest = hardest_condition(nine_corner_grid())
        assert result.active_corners[0].name == hardest.name


class TestResolveConfig:
    """Every knob: explicit wins, ``None`` defers, no gratuitous copies."""

    def test_explicit_seed_overrides_config(self):
        from repro.search.sizing import resolve_config

        config = TrustRegionConfig(seed=3, max_evaluations=123)
        resolved = resolve_config(config, seed=9)
        assert resolved.trust_region.seed == 9
        assert resolved.trust_region.max_evaluations == 123  # else preserved
        assert config.seed == 3  # original untouched

    def test_none_seed_defers_to_config(self):
        from repro.search.sizing import resolve_config

        config = TrustRegionConfig(seed=3)
        assert resolve_config(config, seed=None).trust_region is config
        assert resolve_config(None, seed=None).trust_region.seed == 0
        assert resolve_config(None, seed=5).trust_region.seed == 5

    def test_backend_override(self):
        from repro.search.sizing import resolve_config

        config = TrustRegionConfig(seed=3)
        resolved = resolve_config(config, seed=None, backend="autodiff")
        assert resolved.trust_region.backend == "autodiff"
        assert resolved.trust_region.seed == 3
        assert config.backend == "fused"  # original untouched
        assert resolve_config(config, seed=None, backend="fused").trust_region is config
        assert (
            resolve_config(None, backend="autodiff").trust_region.backend == "autodiff"
        )

    def test_corner_engine_override(self):
        from repro.search import ProgressiveConfig
        from repro.search.sizing import resolve_config

        progressive = ProgressiveConfig()
        resolved = resolve_config(progressive, corner_engine="looped")
        assert resolved.corner_engine == "looped"
        assert progressive.corner_engine == "stacked"  # original untouched
        # None defers; a matching explicit value is not a copy.
        assert resolve_config(progressive, corner_engine=None) is progressive
        assert resolve_config(progressive, corner_engine="stacked") is progressive

    def test_optimizer_and_max_phases_overrides(self):
        from repro.search import ProgressiveConfig
        from repro.search.sizing import resolve_config

        resolved = resolve_config(None, optimizer="random", max_phases=2)
        assert resolved.optimizer == "random"
        assert resolved.max_phases == 2
        progressive = ProgressiveConfig(optimizer="cross_entropy", max_phases=3)
        kept = resolve_config(progressive)
        assert kept is progressive

    def test_progressive_config_passthrough_keeps_trust_region(self):
        from repro.search import ProgressiveConfig
        from repro.search.sizing import resolve_config

        trust = TrustRegionConfig(seed=7)
        progressive = ProgressiveConfig(trust_region=trust)
        resolved = resolve_config(progressive, seed=8, corner_engine="looped")
        assert resolved.trust_region.seed == 8
        assert resolved.corner_engine == "looped"
        assert trust.seed == 7 and progressive.trust_region is trust


class TestDatasetHotPath:
    """The incremental dataset: vectorized dedup, order, incremental best."""

    def make_search(self, **config_kwargs):
        space = DesignSpace(
            [Parameter("x", 0.0, 1.0, grid_points=11), Parameter("y", 0.0, 1.0, grid_points=11)]
        )
        spec = Specification([Spec("a", ">=", 2.0)], ["a", "b"])
        return TrustRegionSearch(
            quadratic_evaluator, space, spec, TrustRegionConfig(**config_kwargs)
        )

    def test_dedup_keeps_first_occurrence_in_candidate_order(self):
        search = self.make_search()
        block = np.array([
            [0.1, 0.1],
            [0.2, 0.2],
            [0.1, 0.1],  # duplicate of row 0
            [0.3, 0.3],
        ])
        added = search._evaluate_new(block)
        assert added == 3
        np.testing.assert_allclose(search._X[:3], [[0.1, 0.1], [0.2, 0.2], [0.3, 0.3]])

    def test_dedup_limit_counts_only_fresh_rows(self):
        search = self.make_search()
        search._evaluate_new(np.array([[0.1, 0.1]]))
        block = np.array([
            [0.1, 0.1],  # already seen -> skipped, not counted
            [0.2, 0.2],
            [0.2, 0.2],  # in-block duplicate
            [0.3, 0.3],
            [0.4, 0.4],
        ])
        added = search._evaluate_new(block, limit=2)
        assert added == 2
        np.testing.assert_allclose(search._X[1:3], [[0.2, 0.2], [0.3, 0.3]])
        assert search.evaluations == 3

    def test_incremental_best_matches_full_argmax(self):
        search = self.make_search()
        rng = np.random.default_rng(0)
        for _ in range(6):
            search._evaluate_new(search.design_space.sample(rng, 7))
        scores = search._scores[: search._count]
        assert search._best == int(np.argmax(scores))

    def test_growable_arrays_preserve_data(self):
        search = self.make_search()
        rng = np.random.default_rng(1)
        seen_rows = []
        for _ in range(30):  # force several capacity doublings
            block = search.design_space.sample(rng, 9)
            before = search._count
            search._evaluate_new(block)
            seen_rows.append(search._X[before: search._count].copy())
        stacked = np.vstack(seen_rows)
        np.testing.assert_array_equal(search._X[: search._count], stacked)
        # Metrics stayed aligned with their input rows across reallocation.
        np.testing.assert_allclose(
            search._M[: search._count], quadratic_evaluator(stacked)
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            TrustRegionConfig(backend="magic")


class TestProgressiveConfig:
    def test_phase_trust_region_backend_override(self):
        from repro.search import ProgressiveConfig

        trust = TrustRegionConfig(seed=4)
        progressive = ProgressiveConfig(trust_region=trust, backend="autodiff")
        assert progressive.phase_trust_region().backend == "autodiff"
        assert trust.backend == "fused"  # original untouched
        assert ProgressiveConfig(trust_region=trust).phase_trust_region() is trust

    def test_legacy_trust_region_config_still_accepted(self):
        from repro.search.progressive import _as_progressive_config

        trust = TrustRegionConfig(seed=2)
        progressive = _as_progressive_config(trust, max_phases=3)
        assert progressive.trust_region is trust
        assert progressive.max_phases == 3
        # max_phases=None defers to the ProgressiveConfig value.
        from repro.search import ProgressiveConfig

        kept = _as_progressive_config(ProgressiveConfig(max_phases=2), max_phases=None)
        assert kept.max_phases == 2
