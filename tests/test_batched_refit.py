"""Batched-across-seeds surrogate refit: bitwise parity and accounting.

The batched refit path (``repro.nn.fused.fit_batched`` driven by the
campaign's end-of-round flush) claims *bit-identical* results versus the
sequential per-seed refits it replaces.  These tests hold it to that:
kernel-level locks compare per-epoch losses, parameters and Adam moments
with ``==``/``array_equal`` (never ``allclose``), and campaign-level locks
byte-diff whole trajectories batched-vs-sequential, through checkpoints,
and under the determinism auditor.
"""

import numpy as np
import pytest

from repro.analysis.determinism import audit_case, fingerprint_outcome
from repro.bench.registry import BenchCase, get_suite
from repro.nn import (
    BatchedFusedAdam,
    BatchedFusedMLP,
    FusedAdam,
    FusedFitJob,
    FusedMLP,
    fit_batched,
    fit_job_signature,
)
from repro.core.design_space import DesignSpace, Parameter
from repro.resilience import FaultPlan, InjectedFault, inject
from repro.search import Spec, Specification, TrustRegionConfig, TrustRegionSearch
from repro.search.progressive import ProgressiveConfig


def make_model(seed, in_features=6, hidden=(24, 24), out_features=3, **kwargs):
    rng = np.random.default_rng(seed)
    model = FusedMLP(in_features, hidden, out_features, rng=rng, **kwargs)
    return model, FusedAdam(model, lr=3e-3)


def make_data(seed, count, in_features=6, out_features=3):
    rng = np.random.default_rng(100 + seed)
    inputs = rng.normal(size=(count, in_features))
    targets = rng.normal(size=(count, out_features))
    return inputs, targets


def make_job(seed, count, epochs=5, batch_size=16, **model_kwargs):
    """One (model, adam, data, rng) training job keyed by ``seed``.

    Called twice with the same seed it produces bit-identical twins, so
    one copy can train sequentially and the other through ``fit_batched``.
    """
    model, adam = make_model(seed, **model_kwargs)
    inputs, targets = make_data(
        seed, count, model.in_features, model.out_features
    )
    return FusedFitJob(
        model=model,
        adam=adam,
        inputs=inputs,
        targets=targets,
        epochs=epochs,
        batch_size=batch_size,
        rng=np.random.default_rng(1000 + seed),
    )


def run_sequentially(jobs):
    """The oracle: each job through the single-seed ``FusedMLP.fit``."""
    return [
        job.model.fit(
            np.atleast_2d(np.asarray(job.inputs, dtype=np.float64)),
            np.atleast_2d(np.asarray(job.targets, dtype=np.float64)),
            job.epochs,
            job.batch_size,
            job.adam,
            job.rng,
        )
        if job.epochs > 0
        else []
        for job in jobs
    ]


def assert_jobs_bit_identical(batched_jobs, sequential_jobs):
    for batched, sequential in zip(batched_jobs, sequential_jobs):
        np.testing.assert_array_equal(batched.model.theta, sequential.model.theta)
        np.testing.assert_array_equal(batched.adam._m, sequential.adam._m)
        np.testing.assert_array_equal(batched.adam._v, sequential.adam._v)
        assert batched.adam._t == sequential.adam._t


def check_parity(specs):
    """Build twin job sets from ``specs``; batched bits must equal solo bits."""
    batched_jobs = [make_job(*spec[:2], **spec[2]) for spec in specs]
    sequential_jobs = [make_job(*spec[:2], **spec[2]) for spec in specs]
    batched_losses = fit_batched(batched_jobs)
    sequential_losses = run_sequentially(sequential_jobs)
    assert batched_losses == sequential_losses  # exact float equality
    assert_jobs_bit_identical(batched_jobs, sequential_jobs)


class TestKernelParity:
    """fit_batched vs N independent FusedMLP.fit calls, bit for bit."""

    def test_uniform_geometry(self):
        check_parity([(seed, 48, {}) for seed in range(4)])

    def test_ragged_counts_and_epochs_bucket(self):
        # Three distinct (rows, batch_size, epochs) buckets in one call.
        check_parity(
            [
                (0, 48, {"epochs": 5}),
                (1, 48, {"epochs": 5}),
                (2, 31, {"epochs": 5}),
                (3, 48, {"epochs": 9}),
            ]
        )

    def test_single_job_degenerates_cleanly(self):
        check_parity([(7, 40, {})])

    def test_zero_epoch_job_is_skipped(self):
        batched_jobs = [make_job(0, 48), make_job(1, 48, epochs=0)]
        before = batched_jobs[1].model.theta.copy()
        losses = fit_batched(batched_jobs)
        assert losses[1] == []
        np.testing.assert_array_equal(batched_jobs[1].model.theta, before)
        assert batched_jobs[1].adam._t == 0
        # ... and the trained sibling still matches its solo twin.
        sequential = make_job(0, 48)
        assert losses[0] == run_sequentially([sequential])[0]
        assert_jobs_bit_identical(batched_jobs[:1], [sequential])

    def test_mixed_batch_sizes(self):
        check_parity([(0, 48, {"batch_size": 16}), (1, 48, {"batch_size": 11})])

    def test_remainder_one_window(self):
        # 65 rows at batch 64: the last window is a single row (gemv path).
        check_parity([(0, 65, {"batch_size": 64}), (1, 65, {"batch_size": 64})])

    def test_single_row_dataset(self):
        check_parity([(0, 1, {"batch_size": 4}), (1, 1, {"batch_size": 4})])

    def test_relu_and_sigmoid_activations(self):
        kwargs = {"activation": "relu", "output_activation": "sigmoid"}
        check_parity([(0, 32, kwargs), (1, 32, kwargs)])

    def test_campaign_like_geometry(self):
        # The shape the trust region actually refits: batch 64, epochs 25.
        check_parity(
            [(seed, 70, {"batch_size": 64, "epochs": 25}) for seed in range(3)]
        )

    def test_empty_job_list(self):
        assert fit_batched([]) == []

    def test_mixed_signature_rejected(self):
        small = make_job(0, 16)
        wide = make_job(1, 16, in_features=7)
        assert fit_job_signature(small) != fit_job_signature(wide)
        with pytest.raises(ValueError, match="fit_job_signature"):
            fit_batched([small, wide])

    def test_bad_geometry_rejected(self):
        job = make_job(0, 16)
        job.targets = job.targets[:-1]
        with pytest.raises(ValueError, match="rows"):
            fit_batched([job])
        bad = make_job(1, 16)
        bad.batch_size = 0
        with pytest.raises(ValueError, match="batch_size"):
            fit_batched([bad])


class TestGatherScatter:
    def test_round_trip_preserves_bits(self):
        models = [make_model(seed)[0] for seed in range(3)]
        originals = [model.theta.copy() for model in models]
        stacked = BatchedFusedMLP(models[0], 3)
        stacked.gather(models)
        stacked.scatter(models)
        for model, original in zip(models, originals):
            np.testing.assert_array_equal(model.theta, original)

    def test_gather_validates_count_and_architecture(self):
        model, _ = make_model(0)
        stacked = BatchedFusedMLP(model, 2)
        with pytest.raises(ValueError, match="expected 2 models"):
            stacked.gather([model])
        other, _ = make_model(1, hidden=(8,))
        with pytest.raises(ValueError, match="architecture"):
            stacked.gather([model, other])

    def test_adam_round_trip_preserves_moments_and_step(self):
        jobs = [make_job(seed, 24, epochs=3) for seed in range(2)]
        run_sequentially(jobs)  # advance the moments past zero
        stacked = BatchedFusedMLP(jobs[0].model, 2)
        stacked.gather([job.model for job in jobs])
        adam = BatchedFusedAdam(stacked, lr=jobs[0].adam.lr)
        adam.gather([job.adam for job in jobs])
        snapshots = [
            (job.adam._m.copy(), job.adam._v.copy(), job.adam._t) for job in jobs
        ]
        adam.scatter([job.adam for job in jobs])
        for job, (m, v, t) in zip(jobs, snapshots):
            np.testing.assert_array_equal(job.adam._m, m)
            np.testing.assert_array_equal(job.adam._v, v)
            assert job.adam._t == t

    def test_bad_seed_count_rejected(self):
        model, _ = make_model(0)
        with pytest.raises(ValueError, match="n_seeds"):
            BatchedFusedMLP(model, 0)


#: Campaign workloads hard enough that the refit loop actually runs (the
#: Monte-Carlo seed does not solve them), one per topology — the
#: trajectory lock is vacuous on a case that never refits.
CAMPAIGN_CASES = [
    BenchCase(topology, "nominal", "hardest", max_evaluations=120, max_phases=1)
    for topology in ("two_stage_opamp", "ota_5t", "folded_cascode", "telescopic")
]


def _campaign_lock_state(case, refit_mode, seeds=(0, 1)):
    """Run one case; return (fingerprint, surrogate/Adam state, counters)."""
    campaign = case.build_campaign(seeds, refit_mode=refit_mode)
    outcome = campaign.run()
    fingerprint = fingerprint_outcome(outcome, campaign.cache.state_digest(), seeds)
    surrogates = []
    for member in campaign._members:
        optimizer = member.optimizer
        surrogates.append(
            (
                optimizer._surrogate.theta.copy(),
                optimizer._optimizer._m.copy(),
                optimizer._optimizer._v.copy(),
                optimizer._optimizer._t,
                optimizer.refit_count,
            )
        )
    return fingerprint, surrogates, outcome


class TestCampaignParity:
    """Whole-campaign batched-vs-sequential locks across the topology zoo."""

    @pytest.mark.parametrize("case", CAMPAIGN_CASES, ids=lambda c: c.topology)
    def test_trajectory_and_adam_moment_lock(self, case):
        batched_fp, batched_state, batched_outcome = _campaign_lock_state(
            case, "batched"
        )
        sequential_fp, sequential_state, sequential_outcome = _campaign_lock_state(
            case, "sequential"
        )
        # The kernel-call counter is the one field that legitimately
        # differs between modes; everything behavioural must match.
        assert batched_fp.pop("batched_kernel_calls") > 0
        assert sequential_fp.pop("batched_kernel_calls") == 0
        assert batched_fp == sequential_fp
        for batched, sequential in zip(batched_state, sequential_state):
            b_theta, b_m, b_v, b_t, b_refits = batched
            s_theta, s_m, s_v, s_t, s_refits = sequential
            np.testing.assert_array_equal(b_theta, s_theta)
            np.testing.assert_array_equal(b_m, s_m)
            np.testing.assert_array_equal(b_v, s_v)
            assert b_t == s_t
            assert b_refits == s_refits and b_refits > 0
        assert batched_outcome.refit_mode == "batched"
        assert sequential_outcome.refit_mode == "sequential"
        assert batched_outcome.refit_rounds == sequential_outcome.refit_rounds > 0
        # Two live seeds sharing one round schedule must actually bucket.
        assert batched_outcome.batched_kernel_calls > 0
        assert sequential_outcome.batched_kernel_calls == 0


class TestDeferredRefitMechanics:
    def make_search(self):
        space = DesignSpace([Parameter("x", 0.0, 1.0, grid_points=51)])
        spec = Specification([Spec("a", ">=", 10.0)], ["a"])  # unsatisfiable

        def evaluator(samples):
            return np.atleast_2d(samples)[:, :1] * 0.0

        config = TrustRegionConfig(
            seed=0, initial_samples=10, batch_size=5, max_evaluations=40,
            candidate_pool=32, surrogate_hidden=(8,), initial_epochs=6,
            refit_epochs=3,
        )
        return TrustRegionSearch(evaluator, space, spec, config), evaluator

    def drive_until_pending(self, search, evaluator):
        while search.take_refit_job() is None and not search.is_done:
            rows = search.ask()
            search.tell(rows, evaluator(rows))
            if search._pending_refit_epochs is not None:
                return
        pytest.fail("search never deferred a refit")

    def test_snapshot_with_pending_refit_rejected(self):
        search, evaluator = self.make_search()
        search.set_refit_deferred(True)
        self.drive_until_pending(search, evaluator)
        with pytest.raises(RuntimeError, match="deferred refit"):
            search.state_dict()
        job = search.take_refit_job()
        assert isinstance(job, FusedFitJob)
        fit_batched([job])
        search.state_dict()  # flushed: snapshotting is legal again

    def test_take_refit_job_consumes_the_pending_refit(self):
        search, evaluator = self.make_search()
        search.set_refit_deferred(True)
        self.drive_until_pending(search, evaluator)
        assert search.take_refit_job() is not None
        assert search.take_refit_job() is None

    def test_deferral_requires_fused_backend(self):
        # autodiff searches ignore the deferral flag and refit inline
        from dataclasses import replace

        search, _ = self.make_search()
        config = replace(search.config, backend="autodiff")
        autodiff = TrustRegionSearch(
            search.evaluator, search.design_space, search.specification, config
        )
        autodiff.set_refit_deferred(True)
        assert autodiff._refit_deferred is False

    def test_fault_site_fires_in_batched_path(self):
        """The drill's optimizer.refit site must cover the deferred path."""
        search, evaluator = self.make_search()
        search.set_refit_deferred(True)
        self.drive_until_pending(search, evaluator)
        with inject(FaultPlan("optimizer.refit", occurrence=1)):
            with pytest.raises(InjectedFault):
                search.take_refit_job()


class TestCampaignAccounting:
    def test_refit_mode_validated(self):
        with pytest.raises(ValueError, match="unknown refit mode"):
            ProgressiveConfig(refit_mode="eager")

    def test_batched_is_the_default(self):
        assert ProgressiveConfig().refit_mode == "batched"

    def test_refit_counters_survive_checkpoint_round_trip(self):
        (case,) = get_suite("drill")
        campaign = case.build_campaign([0, 1])
        outcome = campaign.run()
        assert outcome.refit_rounds > 0 and outcome.batched_kernel_calls > 0
        state = campaign.state_dict()
        assert state["refit"] == (
            campaign.refit_rounds,
            campaign.batched_kernel_calls,
        )
        fresh = case.build_campaign([0, 1])
        fresh.load_state_dict(state)
        assert fresh.refit_rounds == campaign.refit_rounds
        assert fresh.batched_kernel_calls == campaign.batched_kernel_calls

    def test_refit_seconds_attributed_to_members(self):
        (case,) = get_suite("drill")
        campaign = case.build_campaign([0, 1])
        campaign.run()
        for member in campaign._members:
            assert member.optimizer.refit_seconds > 0.0


class TestAuditorWithBatchedRefit:
    def test_determinism_double_run_green(self):
        (case,) = get_suite("drill")
        audit = audit_case(case, seeds=(0, 1), refit_mode="batched")
        assert audit.identical, audit.divergence

    def test_checkpoint_resume_parity_green(self):
        (case,) = get_suite("drill")
        audit = audit_case(
            case, seeds=(0, 1), refit_mode="batched", resume_parity=True
        )
        assert audit.identical, audit.divergence
