"""Crash safety: atomic writes, snapshots, the persistent cache store,
fault injection, checkpoint/resume parity, and the kill-and-resume drill."""

import json
import os

import numpy as np
import pytest

from repro.analysis.determinism import fingerprint_outcome
from repro.bench.registry import BenchCase, get_suite
from repro.bench.runner import run_suite
from repro.resilience import (
    CacheStore,
    FaultPlan,
    InjectedFault,
    SnapshotError,
    StoreError,
    atomic_write_json,
    atomic_write_text,
    fault_point,
    fsync_replace,
    inject,
    load_snapshot,
    registered_fault_sites,
    save_snapshot,
)
from repro.resilience.drill import drill_suite
from repro.search.campaign import LATEST_SNAPSHOT


def _campaign_fingerprint(campaign, outcome, seeds):
    return fingerprint_outcome(outcome, campaign.cache.state_digest(), seeds)


class TestAtomicWrites:
    def test_text_write_and_replace(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomic_write_text(str(target), "first")
        atomic_write_text(str(target), "second")
        assert target.read_text() == "second"
        # No temp residue: the one file present is the artifact itself.
        assert os.listdir(tmp_path) == ["artifact.txt"]

    def test_json_write_is_stable(self, tmp_path):
        target = tmp_path / "payload.json"
        atomic_write_json(str(target), {"b": 1, "a": [1, 2]})
        text = target.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == {"a": [1, 2], "b": 1}
        # Keys are sorted so byte-diffs of artifacts are meaningful.
        assert text.index('"a"') < text.index('"b"')

    def test_fsync_replace_promotes_partial(self, tmp_path):
        partial = tmp_path / "trace.jsonl.partial"
        final = tmp_path / "trace.jsonl"
        partial.write_text("line\n")
        fsync_replace(str(partial), str(final))
        assert final.read_text() == "line\n"
        assert not partial.exists()


class TestSnapshot:
    def test_roundtrip_preserves_numpy_and_bytes(self, tmp_path):
        path = str(tmp_path / "state.snapshot")
        state = {
            "matrix": np.arange(6, dtype=np.float64).reshape(2, 3),
            "key": b"\x00\x01",
            "nested": {"seeds": (0, 1), "name": "ota_5t"},
        }
        save_snapshot(path, state)
        restored = load_snapshot(path)
        np.testing.assert_array_equal(restored["matrix"], state["matrix"])
        assert restored["key"] == state["key"]
        assert restored["nested"] == state["nested"]

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="does not exist"):
            load_snapshot(str(tmp_path / "nope.snapshot"))

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.snapshot"
        path.write_bytes(b"not a snapshot at all")
        with pytest.raises(SnapshotError, match="bad magic"):
            load_snapshot(str(path))

    def test_truncation_rejected(self, tmp_path):
        path = tmp_path / "state.snapshot"
        save_snapshot(str(path), {"x": 1})
        blob = path.read_bytes()
        path.write_bytes(blob[:-3])
        with pytest.raises(SnapshotError, match="truncated"):
            load_snapshot(str(path))

    def test_bitflip_fails_crc(self, tmp_path):
        path = tmp_path / "state.snapshot"
        save_snapshot(str(path), {"x": 1})
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0x40
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="CRC"):
            load_snapshot(str(path))


class TestCacheStore:
    DIM, METRICS = 3, 2

    def _record(self, value):
        key = np.full(self.DIM, value, dtype=np.float64).tobytes()
        row = np.array([value, -value], dtype=np.float64)
        return b"corner", key, row

    def test_append_then_reopen_replays_records(self, tmp_path):
        path = str(tmp_path / "cache.evc")
        store = CacheStore(path, self.DIM, self.METRICS)
        for value in (1.0, 2.0):
            store.append(*self._record(value))
        store.close()
        reopened = CacheStore(path, self.DIM, self.METRICS)
        assert reopened.repaired_bytes == 0
        assert len(reopened.records) == 2
        tag, key, row = reopened.records[1]
        assert tag == b"corner"
        assert key == self._record(2.0)[1]
        np.testing.assert_array_equal(row, [2.0, -2.0])
        reopened.close()

    def test_torn_tail_truncated_on_reopen(self, tmp_path):
        path = str(tmp_path / "cache.evc")
        store = CacheStore(path, self.DIM, self.METRICS)
        store.append(*self._record(1.0))
        store.close()
        intact_size = os.path.getsize(path)
        torn = b"\x2a\x00\x00\x00torn-frame"
        with open(path, "ab") as handle:
            handle.write(torn)
        reopened = CacheStore(path, self.DIM, self.METRICS)
        # The torn bytes are gone from disk and the good record survived.
        assert reopened.repaired_bytes == len(torn)
        assert os.path.getsize(path) == intact_size
        assert len(reopened.records) == 1
        reopened.close()

    def test_injected_append_fault_leaves_repairable_half_frame(self, tmp_path):
        path = str(tmp_path / "cache.evc")
        store = CacheStore(path, self.DIM, self.METRICS)
        store.append(*self._record(1.0))
        with pytest.raises(InjectedFault):
            with inject(FaultPlan("cache.append", occurrence=1)):
                store.append(*self._record(2.0))
        store.close()
        reopened = CacheStore(path, self.DIM, self.METRICS)
        assert reopened.repaired_bytes > 0
        assert len(reopened.records) == 1
        reopened.close()

    def test_shape_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "cache.evc")
        CacheStore(path, self.DIM, self.METRICS).close()
        with pytest.raises(StoreError, match="dimension"):
            CacheStore(path, self.DIM + 1, self.METRICS)

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "cache.evc"
        path.write_bytes(b"x" * 64)
        with pytest.raises(StoreError, match="not an evaluation-cache store"):
            CacheStore(str(path), self.DIM, self.METRICS)


class TestFaultInjection:
    def test_all_engine_sites_registered(self):
        assert {"cache.append", "engine.call", "optimizer.refit",
                "snapshot.write"} <= set(registered_fault_sites())

    def test_plan_fires_at_exact_occurrence(self):
        plan = FaultPlan("engine.call", occurrence=3)
        with inject(plan):
            fault_point("engine.call")
            fault_point("engine.call")
            with pytest.raises(InjectedFault):
                fault_point("engine.call")
        assert plan.fired
        assert plan.counts["engine.call"] == 3
        # A fired plan never fires again.
        with inject(plan):
            fault_point("engine.call")

    def test_unarmed_fault_point_is_noop(self):
        fault_point("engine.call")

    def test_unknown_site_rejected_at_arming(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            with inject(FaultPlan("warp.core", occurrence=1)):
                pass

    def test_nested_arming_rejected(self):
        with inject(FaultPlan("engine.call", occurrence=99)):
            with pytest.raises(RuntimeError, match="already armed"):
                with inject(FaultPlan("engine.call", occurrence=1)):
                    pass

    def test_from_seed_is_deterministic(self):
        first = FaultPlan.from_seed(7)
        second = FaultPlan.from_seed(7)
        assert (first.site, first.occurrence) == (second.site, second.occurrence)


#: The drill workload (hard enough to refit) under each registered
#: optimizer, plus a second topology — the resume-parity matrix.
RESUME_CASES = [
    (get_suite("drill")[0], "trust_region"),
    (get_suite("drill")[0], "random"),
    (get_suite("drill")[0], "cross_entropy"),
    (
        BenchCase(
            "two_stage_opamp", "smoke", "nominal",
            max_evaluations=120, max_phases=1,
        ),
        "trust_region",
    ),
]


class TestCheckpointResume:
    @pytest.mark.parametrize(
        "case, optimizer",
        RESUME_CASES,
        ids=[f"{case.topology}-{opt}" for case, opt in RESUME_CASES],
    )
    def test_resume_is_bit_identical(self, tmp_path, case, optimizer):
        seeds = [0, 1]
        ckpt = str(tmp_path / "ckpt")
        oracle_campaign = case.build_campaign(seeds, optimizer=optimizer)
        oracle = _campaign_fingerprint(
            oracle_campaign,
            oracle_campaign.run(checkpoint_dir=ckpt, keep_history=True),
            seeds,
        )
        rounds = oracle["rounds"]
        assert rounds >= 2  # otherwise "mid-run" below is meaningless
        mid = max(1, rounds // 2)
        resumed_campaign = case.build_campaign(seeds, optimizer=optimizer)
        outcome = resumed_campaign.run(
            resume_from=os.path.join(ckpt, f"round-{mid:05d}.snapshot")
        )
        assert outcome.resumed_from_round == mid
        resumed = _campaign_fingerprint(resumed_campaign, outcome, seeds)
        # Full parity including the hit/miss accounting — snapshot restore
        # carries the cache content and counters exactly.
        assert resumed == oracle

    def test_resume_from_latest_in_directory(self, tmp_path):
        (case,) = get_suite("drill")
        ckpt = str(tmp_path / "ckpt")
        first = case.build_campaign([0])
        oracle = _campaign_fingerprint(first, first.run(checkpoint_dir=ckpt), [0])
        assert os.path.exists(os.path.join(ckpt, LATEST_SNAPSHOT))
        second = case.build_campaign([0])
        outcome = second.run(resume_from=ckpt)
        # The latest snapshot is the finished campaign: resume loads it and
        # the run loop immediately agrees it is done.
        assert outcome.resumed_from_round == oracle["rounds"]
        assert _campaign_fingerprint(second, outcome, [0]) == oracle

    def test_resume_from_missing_path_rejected(self, tmp_path):
        (case,) = get_suite("drill")
        campaign = case.build_campaign([0])
        with pytest.raises(FileNotFoundError):
            campaign.run(resume_from=str(tmp_path / "nowhere"))

    def test_empty_checkpoint_dir_is_a_cold_start(self, tmp_path):
        (case,) = get_suite("drill")
        ckpt = str(tmp_path / "ckpt")
        baseline_campaign = case.build_campaign([0])
        baseline = _campaign_fingerprint(
            baseline_campaign, baseline_campaign.run(), [0]
        )
        # resume_from pointing at the (empty) checkpoint dir of a run that
        # died before its first checkpoint: legitimate cold start.
        os.makedirs(ckpt)
        campaign = case.build_campaign([0])
        outcome = campaign.run(checkpoint_dir=ckpt, resume_from=ckpt)
        assert outcome.resumed_from_round is None
        assert _campaign_fingerprint(campaign, outcome, [0]) == baseline

    def test_snapshot_identity_mismatch_rejected(self, tmp_path):
        (case,) = get_suite("drill")
        ckpt = str(tmp_path / "ckpt")
        donor = case.build_campaign([0])
        donor.run(checkpoint_dir=ckpt)
        receiver = case.build_campaign([0, 1])  # different seed set
        with pytest.raises(ValueError, match="seeds"):
            receiver.run(resume_from=ckpt)

    def test_checkpoint_every_thins_history(self, tmp_path):
        (case,) = get_suite("drill")
        ckpt = str(tmp_path / "ckpt")
        campaign = case.build_campaign([0])
        outcome = campaign.run(
            checkpoint_dir=ckpt, checkpoint_every=2, keep_history=True
        )
        history = sorted(
            name for name in os.listdir(ckpt) if name.startswith("round-")
        )
        expected = [
            f"round-{r:05d}.snapshot"
            for r in range(2, outcome.rounds + 1, 2)
        ]
        assert history == expected


class TestPersistentCampaignCache:
    def test_cross_process_warm_start_is_bit_identical(self, tmp_path):
        (case,) = get_suite("drill")
        cache_path = str(tmp_path / "cache.evc")
        cold = case.build_campaign([0], cache_path=cache_path)
        try:
            cold_fp = _campaign_fingerprint(cold, cold.run(), [0])
        finally:
            cold.close()
        assert cold_fp["cache_misses"] > 0
        warm = case.build_campaign([0], cache_path=cache_path)
        try:
            outcome = warm.run()
            warm_fp = _campaign_fingerprint(warm, outcome, [0])
        finally:
            warm.close()
        # Every previously computed pair is served from disk...
        assert warm.cache.preloaded_pairs > 0
        assert warm.cache.warm_hits > 0
        assert warm_fp["cache_misses"] == 0
        assert warm_fp["engine_calls"] < cold_fp["engine_calls"]
        # ...with byte-identical trajectories and final cache content
        # (hit/miss accounting legitimately differs: that is the warm
        # start working, so it is excluded exactly as in the drill).
        from repro.resilience.drill import _strip_counters

        assert _strip_counters(warm_fp) == _strip_counters(cold_fp)


class TestDrill:
    def test_drill_suite_green_with_every_site_fired(self, tmp_path):
        report = drill_suite(
            seeds=[0], occurrences=(1,), workdir=str(tmp_path / "drill")
        )
        assert report.ok, report.format()
        # Occurrence 1 of every registered site is reached on the drill
        # workload — each fault actually fired and each resume matched —
        # plus the multi-process worker-kill scenario (one per occurrence).
        assert report.fired_count == len(registered_fault_sites()) + 1
        assert any(o.site == "worker.kill" for o in report.outcomes)
        assert "byte-identical" in report.format()

    def test_cli_sites_lists_registry(self, capsys):
        from repro.resilience.__main__ import main

        assert main(["sites"]) == 0
        out = capsys.readouterr().out.split()
        assert out == sorted(set(out))  # registration order is stable here
        assert "snapshot.write" in out


class TestBenchResilienceIntegration:
    def test_v8_payload_reports_warm_cache_hits(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = run_suite("tiny", seeds=[0], cache_dir=cache_dir)
        warm = run_suite("tiny", seeds=[0], cache_dir=cache_dir)
        assert cold["schema"] == "repro.bench/v8"
        cold_block = cold["cases"][0]["resilience"]["cache"]
        warm_block = warm["cases"][0]["resilience"]["cache"]
        assert cold_block["warm_hits"] == 0
        assert warm_block["preloaded_pairs"] > 0
        assert warm_block["warm_hits"] > 0
        assert warm_block["repaired_bytes"] == 0
        # Trajectories are unaffected by the warm start.
        t_cold = cold["cases"][0]["per_seed"][0]
        t_warm = warm["cases"][0]["per_seed"][0]
        assert t_warm["best_sizing"] == t_cold["best_sizing"]

    def test_unpersisted_run_reports_null_block(self):
        payload = run_suite("tiny", seeds=[0])
        resilience = payload["cases"][0]["resilience"]
        assert resilience == {"resumed_from_round": None, "cache": None}


class TestTracerSinkDurability:
    def test_sink_streams_to_partial_and_finalizes_on_close(self, tmp_path):
        from repro.obs import tracing

        sink = tmp_path / "trace.jsonl"
        partial = tmp_path / "trace.jsonl.partial"
        with tracing(sink=str(sink)) as tracer:
            tracer.event("drill.mark", {"n": 1})
            # Mid-run the stream lives in the .partial sidecar,
            # line-buffered: a kill here loses at most a torn final line.
            assert partial.exists()
            assert not sink.exists()
            assert '"drill.mark"' in partial.read_text()
        assert sink.exists()
        assert not partial.exists()
        records = [json.loads(line) for line in sink.read_text().splitlines()]
        assert any(record["name"] == "drill.mark" for record in records)
