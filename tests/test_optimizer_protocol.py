"""Ask/tell protocol: oracle parity, baselines, Campaign, serialization.

The heart of this file is the *pre-refactor oracle*: the historical
monolithic ``TrustRegionSearch.run()`` loop (as it shipped before the
ask/tell redesign), re-expressed over the primitives both versions share
(``_evaluate_new``, ``_refit_surrogate``, ``_rank_candidates``).  The
refactored ask/tell ``run()`` must reproduce it step for step — same
evaluated rows in the same order, same history, same incumbent — across
every registered topology.
"""

import json

import numpy as np
import pytest

from repro.circuits.pvt import NOMINAL, hardest_condition, nine_corner_grid
from repro.circuits.topologies import available_topologies, get_topology
from repro.core.design_space import DesignSpace, Parameter
from repro.search import (
    Campaign,
    CrossEntropySearch,
    EvaluationHandle,
    ProgressiveConfig,
    RandomSearch,
    Spec,
    Specification,
    TrustRegionConfig,
    TrustRegionSearch,
    available_optimizers,
    build_campaign,
    get_optimizer,
    register_optimizer,
    size_problem,
)
from repro.search.optimizer import FEASIBLE_TOL, IterationRecord


# ----------------------------------------------------------------------
# The pre-refactor oracle: the monolithic Algorithm-1 loop of PR 1-4.


def oracle_run(search):
    """Run the historical closed loop on a fresh TrustRegionSearch.

    This is a faithful transcription of the pre-ask/tell ``run()`` body —
    Monte-Carlo seed, initial refit, trust-region iterations with ranked
    proposals, Monte-Carlo fallback, conditional refit, radius adaptation —
    driving the same internals the refactored optimizer uses.
    """
    config = search.config
    seed_points = search.design_space.sample(search.rng, config.initial_samples)
    if search._initial_points is not None:
        seed_points = np.vstack([search._initial_points, seed_points])
    search._evaluate_new(seed_points, limit=config.max_evaluations)

    radius = config.initial_radius
    history = []
    if search._scores[search._best] < FEASIBLE_TOL:
        search._refit_surrogate(epochs=config.initial_epochs)

    while (
        search._scores[search._best] < FEASIBLE_TOL
        and search._count < config.max_evaluations
    ):
        center = search._X[search._best]
        candidates = search.design_space.sample_ball(
            search.rng, center, radius, config.candidate_pool
        )
        order = search._rank_candidates(candidates, keep=4 * config.batch_size)
        previous = search._scores[search._best]
        step = min(config.batch_size, config.max_evaluations - search._count)
        added = search._evaluate_new(candidates[order], limit=step)
        if added == 0:
            added = search._evaluate_new(
                search.design_space.sample(search.rng, config.batch_size), limit=step
            )
            if added == 0:
                break
        improved = search._scores[search._best] > previous + 1e-12
        will_continue = (
            search._scores[search._best] < FEASIBLE_TOL
            and search._count < config.max_evaluations
        )
        if will_continue:
            search._refit_surrogate(epochs=config.refit_epochs)
        if improved:
            radius = min(radius * config.expand, config.max_radius)
        else:
            radius = max(radius * config.shrink, config.min_radius)
        history.append(
            IterationRecord(
                evaluations=search._count,
                radius=radius,
                best_score=float(search._scores[search._best]),
                improved=bool(improved),
            )
        )
    return history


def toy_evaluator(samples):
    """Two metrics shaped so feasibility needs x near (0.7, 0.3)."""
    samples = np.atleast_2d(samples)
    x, y = samples[:, 0], samples[:, 1]
    metric_a = 1.0 - (x - 0.7) ** 2 - (y - 0.3) ** 2
    metric_b = (x - 0.7) ** 2 + (y - 0.3) ** 2
    return np.stack([metric_a, metric_b], axis=1)


def toy_space():
    return DesignSpace(
        [
            Parameter("x", 0.0, 1.0, grid_points=101),
            Parameter("y", 0.0, 1.0, grid_points=101),
        ]
    )


def toy_spec(feasible=True):
    if feasible:
        return Specification(
            [Spec("a", ">=", 0.99), Spec("b", "<=", 0.01)], ["a", "b"]
        )
    return Specification([Spec("a", ">=", 10.0)], ["a", "b"])  # unsatisfiable


class TestTrajectoryLockVsOracle:
    """Refactored ask/tell run() == pre-refactor monolithic loop, bitwise."""

    def assert_same_trajectory(self, make_search):
        new = make_search()
        result = new.run()
        old = make_search()
        oracle_history = oracle_run(old)
        # Step-for-step: every evaluated row, in evaluation order.
        assert new._count == old._count
        np.testing.assert_array_equal(new._X[: new._count], old._X[: old._count])
        np.testing.assert_array_equal(new._M[: new._count], old._M[: old._count])
        assert new._best == old._best
        assert result.history == oracle_history
        np.testing.assert_array_equal(result.best_vector, old._X[old._best])
        assert result.evaluations == old._count

    @pytest.mark.parametrize("topology", sorted(available_topologies()))
    def test_all_topologies_at_hardest_corner(self, topology):
        problem_cls = get_topology(topology)
        problem = problem_cls(condition=hardest_condition(nine_corner_grid()))
        spec = Specification(problem.default_specs()["smoke"], problem.METRIC_NAMES)
        config = TrustRegionConfig(seed=0, max_evaluations=150)

        def make_search():
            return TrustRegionSearch(
                problem.evaluate_batch, problem.design_space(), spec, config
            )

        self.assert_same_trajectory(make_search)

    @pytest.mark.parametrize("seed", [0, 3])
    def test_toy_csp(self, seed):
        config = TrustRegionConfig(
            seed=seed, initial_samples=24, batch_size=6, candidate_pool=128,
            max_evaluations=200, surrogate_hidden=(24, 24),
            initial_epochs=60, refit_epochs=15,
        )

        def make_search():
            return TrustRegionSearch(toy_evaluator, toy_space(), toy_spec(), config)

        self.assert_same_trajectory(make_search)

    def test_unsatisfiable_exhausts_budget_identically(self):
        """Locks the fallback-sampling and budget-clamp paths too."""
        config = TrustRegionConfig(
            seed=1, initial_samples=12, batch_size=5, candidate_pool=32,
            max_evaluations=60, surrogate_hidden=(8,),
            initial_epochs=10, refit_epochs=5,
        )
        space = DesignSpace(
            [Parameter("x", 0.0, 1.0, grid_points=21),
             Parameter("y", 0.0, 1.0, grid_points=21)]
        )

        def make_search():
            return TrustRegionSearch(toy_evaluator, space, toy_spec(False), config)

        self.assert_same_trajectory(make_search)

    def test_warm_start_points_identical(self):
        config = TrustRegionConfig(
            seed=2, initial_samples=16, batch_size=4, candidate_pool=64,
            max_evaluations=80, surrogate_hidden=(16,),
            initial_epochs=20, refit_epochs=8,
        )
        warm = np.array([[0.5, 0.5], [0.7, 0.3]])

        def make_search():
            return TrustRegionSearch(
                toy_evaluator, toy_space(), toy_spec(), config, initial_points=warm
            )

        self.assert_same_trajectory(make_search)


class TestAskTellProtocol:
    def make(self, cls=TrustRegionSearch, feasible=True, evaluator=toy_evaluator,
             **config_kwargs):
        defaults = dict(
            seed=0, initial_samples=16, batch_size=4, candidate_pool=64,
            max_evaluations=120, surrogate_hidden=(16,),
            initial_epochs=20, refit_epochs=8,
        )
        defaults.update(config_kwargs)
        return cls(
            evaluator, toy_space(), toy_spec(feasible),
            TrustRegionConfig(**defaults),
        )

    @pytest.mark.parametrize(
        "cls", [TrustRegionSearch, RandomSearch, CrossEntropySearch]
    )
    def test_ask_returns_new_on_grid_rows_within_budget(self, cls):
        opt = self.make(cls, feasible=False, max_evaluations=30)
        space = opt.design_space
        seen = set()
        while not opt.is_done:
            rows = opt.ask()
            if rows.shape[0] == 0:
                break
            assert rows.shape[0] <= 30 - opt.evaluations
            np.testing.assert_allclose(space.snap(rows), rows, rtol=1e-12)
            for row in rows:
                key = row.tobytes()
                assert key not in seen  # never proposes a repeat
                seen.add(key)
            opt.tell(rows, toy_evaluator(rows))
        assert opt.evaluations <= 30

    @pytest.mark.parametrize(
        "cls", [TrustRegionSearch, RandomSearch, CrossEntropySearch]
    )
    def test_best_and_is_done(self, cls):
        opt = self.make(cls)
        assert opt.best is None and not opt.is_done
        rows = opt.ask()
        opt.tell(rows, toy_evaluator(rows))
        incumbent = opt.best
        assert incumbent is not None
        assert incumbent.vector.shape == (2,)
        assert incumbent.score == opt.specification.score(
            incumbent.metrics[np.newaxis, :]
        )[0]
        # Feeding a feasible point ends the search.
        driven = self.make(cls)
        while not driven.is_done:
            batch = driven.ask()
            if batch.shape[0] == 0:
                break
            driven.tell(batch, toy_evaluator(batch))
        assert driven.is_done
        result = driven.result()
        assert result.solved == (result.best_score >= FEASIBLE_TOL)

    def test_run_without_evaluator_raises(self):
        opt = TrustRegionSearch(None, toy_space(), toy_spec(), TrustRegionConfig())
        with pytest.raises(ValueError, match="without an evaluator"):
            opt.run()

    def test_result_before_any_tell_raises(self):
        opt = TrustRegionSearch(None, toy_space(), toy_spec(), TrustRegionConfig())
        with pytest.raises(RuntimeError, match="no evaluations"):
            opt.result()


class TestBaselines:
    def config(self, **kwargs):
        defaults = dict(seed=0, initial_samples=32, batch_size=8, max_evaluations=400)
        defaults.update(kwargs)
        return TrustRegionConfig(**defaults)

    def test_random_search_solves_easy_csp(self):
        spec = Specification(
            [Spec("a", ">=", 0.9), Spec("b", "<=", 0.1)], ["a", "b"]
        )
        result = RandomSearch(toy_evaluator, toy_space(), spec, self.config()).run()
        assert result.solved
        assert result.evaluations <= 400
        assert result.refit_seconds == 0.0

    def test_cross_entropy_solves_toy_csp(self):
        result = CrossEntropySearch(
            toy_evaluator, toy_space(), toy_spec(), self.config(max_evaluations=600)
        ).run()
        assert result.solved
        assert abs(result.best_sizing["x"] - 0.7) < 0.1
        assert abs(result.best_sizing["y"] - 0.3) < 0.1

    @pytest.mark.parametrize("cls", [RandomSearch, CrossEntropySearch])
    def test_reproducible_and_budgeted(self, cls):
        config = self.config(seed=7, max_evaluations=100)
        spec = toy_spec(feasible=False)
        first = cls(toy_evaluator, toy_space(), spec, config).run()
        second = cls(toy_evaluator, toy_space(), spec, config).run()
        np.testing.assert_array_equal(first.best_vector, second.best_vector)
        assert first.evaluations == second.evaluations == 100
        assert not first.solved

    def test_baselines_terminate_on_tiny_exhausted_grid(self):
        space = DesignSpace([Parameter("x", 0.0, 1.0, grid_points=5)])
        spec = Specification([Spec("a", ">=", 10.0)], ["a"])  # unsatisfiable

        def evaluator(samples):
            return np.atleast_2d(samples)[:, :1] * 0.0

        for cls in (RandomSearch, CrossEntropySearch):
            result = cls(
                evaluator, space, spec, self.config(max_evaluations=50)
            ).run()
            assert result.evaluations <= 5  # the whole grid


class TestOptimizerRegistry:
    def test_builtin_optimizers_registered(self):
        assert {"trust_region", "random", "cross_entropy"} <= set(
            available_optimizers()
        )
        assert get_optimizer("trust_region") is TrustRegionSearch
        assert get_optimizer("random") is RandomSearch

    def test_unknown_optimizer_lists_available(self):
        with pytest.raises(KeyError, match="trust_region"):
            get_optimizer("gradient_descent")

    def test_reregistration_conflicts_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_optimizer("random", CrossEntropySearch)
        # Same class under the same name is an idempotent no-op.
        assert register_optimizer("random", RandomSearch) is RandomSearch

    def test_progressive_config_validates_optimizer(self):
        with pytest.raises(ValueError, match="unknown optimizer"):
            ProgressiveConfig(optimizer="gradient_descent")


class TestCampaignParity:
    """Multi-seed vectorized execution is bitwise-identical per seed."""

    CONFIG = TrustRegionConfig(seed=0, max_evaluations=200)

    def test_multi_seed_campaign_matches_sequential(self):
        seeds = [0, 1, 2]
        sequential = [
            size_problem("ota_5t", tier="smoke", config=self.CONFIG, seed=s)
            for s in seeds
        ]
        campaign = build_campaign(
            "ota_5t", tier="smoke", config=self.CONFIG, seeds=seeds
        ).run()
        assert campaign.seeds == seeds
        for expected, got in zip(sequential, campaign.results):
            np.testing.assert_array_equal(expected.best_vector, got.best_vector)
            assert expected.evaluations == got.evaluations
            assert expected.solved_all_corners == got.solved_all_corners
            assert len(expected.phase_results) == len(got.phase_results)
            # Corner verification is bit-exact too, not just the winner.
            assert [r.metrics for r in expected.corner_reports] == [
                r.metrics for r in got.corner_reports
            ]
            assert [r.satisfied for r in expected.corner_reports] == [
                r.satisfied for r in got.corner_reports
            ]

    def test_multi_seed_batches_fewer_engine_calls(self):
        seeds = [0, 1, 2]
        sequential_calls = sum(
            size_problem(
                "ota_5t", tier="smoke", config=self.CONFIG, seed=s
            ).engine_calls
            for s in seeds
        )
        campaign = build_campaign(
            "ota_5t", tier="smoke", config=self.CONFIG, seeds=seeds
        ).run()
        assert campaign.engine_calls < sequential_calls
        assert campaign.rounds >= campaign.engine_calls

    def test_single_seed_campaign_keeps_sequential_accounting(self):
        result = size_problem("ota_5t", tier="smoke", config=self.CONFIG, seed=0)
        assert result.cache_misses > 0
        assert result.engine_calls > 0
        assert result.eval_seconds > 0.0

    def test_campaign_consumes_evaluation_handle(self):
        problem = get_topology("ota_5t")()
        handle = problem.evaluation_handle()
        assert isinstance(handle, EvaluationHandle)
        assert handle.metric_names == tuple(problem.METRIC_NAMES)
        campaign = Campaign(
            handle,
            problem.default_specs()["smoke"],
            corners=[NOMINAL],
            config=ProgressiveConfig(trust_region=self.CONFIG, max_phases=1),
            seeds=[0],
        )
        outcome = campaign.run()
        direct = size_problem(
            "ota_5t", tier="smoke", corners=[NOMINAL],
            config=self.CONFIG, max_phases=1,
        )
        np.testing.assert_array_equal(
            outcome.results[0].best_vector, direct.best_vector
        )

    def test_campaign_with_baseline_optimizer(self):
        campaign = build_campaign(
            "ota_5t", tier="smoke", corners=[NOMINAL],
            config=self.CONFIG, seeds=[0, 1], optimizer="random", max_phases=1,
        ).run()
        assert all(r.solved_all_corners for r in campaign.results)
        assert campaign.results[0].refit_seconds == 0.0

    def test_multi_seed_computes_no_extra_pairs(self):
        """Grouped batching never evaluates (row, corner) pairs the
        sequential loop would not have — a verifying seed must not drag
        other seeds' search batches through the full grid."""
        seeds = [0, 1, 2]
        sequential_misses = sum(
            size_problem(
                "ota_5t", tier="smoke", config=self.CONFIG, seed=s
            ).cache_misses
            for s in seeds
        )
        campaign = build_campaign(
            "ota_5t", tier="smoke", config=self.CONFIG, seeds=seeds
        ).run()
        # <= not ==: rows shared across seeds (if any) dedup in the shared
        # cache, so the campaign can only compute fewer pairs, never more.
        assert campaign.cache_misses <= sequential_misses

    def test_looped_engine_requires_the_oracle_factory(self):
        """corner_engine='looped' must not silently run the stacked engine
        it exists to cross-check."""
        problem = get_topology("ota_5t")()
        full = problem.evaluation_handle()
        stacked_only = EvaluationHandle(
            design_space=full.design_space,
            metric_names=full.metric_names,
            corner_evaluator=full.corner_evaluator,
        )
        config = ProgressiveConfig(
            trust_region=self.CONFIG, corner_engine="looped", max_phases=1
        )
        with pytest.raises(ValueError, match="looped"):
            Campaign(stacked_only, problem.default_specs()["smoke"],
                     corners=[NOMINAL], config=config, seeds=[0])
        # With the factory present the looped oracle runs fine.
        outcome = Campaign(
            full, problem.default_specs()["smoke"],
            corners=[NOMINAL], config=config, seeds=[0],
        ).run()
        assert outcome.results[0].evaluations > 0

    def test_campaign_rejects_degenerate_inputs(self):
        problem = get_topology("ota_5t")()
        handle = problem.evaluation_handle()
        specs = problem.default_specs()["smoke"]
        with pytest.raises(ValueError, match="at least one seed"):
            Campaign(handle, specs, seeds=[])
        with pytest.raises(ValueError, match="max_phases"):
            Campaign(
                handle, specs,
                config=ProgressiveConfig(max_phases=0), seeds=[0],
            )
        with pytest.raises(ValueError, match="neither a corner evaluator"):
            Campaign(
                EvaluationHandle(
                    design_space=handle.design_space,
                    metric_names=handle.metric_names,
                ),
                specs,
                seeds=[0],
            )


class TestCustomOptimizerIntegration:
    """The README "write your own optimizer" path actually works end to end."""

    def test_registered_custom_optimizer_runs_in_campaign(self):
        from repro.search import DatasetOptimizer
        from repro.search.optimizer import _OPTIMIZERS

        class GridWalk(DatasetOptimizer):
            """Toy strategy: uniform draws, double batch each round."""

            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self._draw = self.config.batch_size

            def ask(self):
                if self.is_done:
                    return self._empty_batch()
                rows, _ = self._select_new(
                    self.design_space.sample(self.rng, self._draw),
                    limit=self._budget_left(),
                )
                self._draw *= 2
                if rows.shape[0] == 0:
                    self._done = True
                return rows

        register_optimizer("grid_walk", GridWalk)
        try:
            result = size_problem(
                "ota_5t", tier="smoke", corners=[NOMINAL],
                config=TrustRegionConfig(seed=0, max_evaluations=300),
                optimizer="grid_walk", max_phases=1,
            )
            assert result.solved_all_corners
        finally:
            _OPTIMIZERS.pop("grid_walk", None)


class TestResultSerialization:
    def test_search_result_to_dict_round_trips_json(self):
        spec = Specification(
            [Spec("a", ">=", 0.9), Spec("b", "<=", 0.1)], ["a", "b"]
        )
        result = RandomSearch(
            toy_evaluator, toy_space(), spec,
            TrustRegionConfig(seed=0, initial_samples=32, max_evaluations=200),
        ).run()
        payload = result.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["solved"] is True
        assert payload["evaluations"] == result.evaluations
        assert payload["iterations"] == len(result.history)
        assert set(payload["best_sizing"]) == {"x", "y"}

    def test_progressive_result_to_dict_round_trips_json(self):
        result = size_problem(
            "ota_5t", tier="smoke", corners=[NOMINAL],
            config=TrustRegionConfig(seed=0, max_evaluations=200), max_phases=1,
        )
        payload = result.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["solved"] == result.solved_all_corners
        assert payload["phases"] == len(result.phase_results)
        assert payload["failing_corners"] == [
            c.name for c in result.failing_corners()
        ]
        assert payload["engine_calls"] == result.engine_calls
