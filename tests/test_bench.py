"""Benchmark harness: registry, runner aggregation, JSON artifact, CLI."""

import json

import numpy as np
import pytest

from repro.bench import (
    SCHEMA,
    BenchCase,
    available_suites,
    format_summary,
    get_suite,
    register_benchmark,
    run_case,
    run_suite,
    write_bench_json,
)
from repro.bench.runner import main as bench_main


class TestRegistry:
    def test_builtin_suites(self):
        assert {"smoke", "full", "tiny"} <= set(available_suites())

    def test_smoke_suite_covers_four_topologies(self):
        topologies = {case.topology for case in get_suite("smoke")}
        assert len(topologies) >= 4

    def test_unknown_suite_lists_available(self):
        with pytest.raises(KeyError, match="smoke"):
            get_suite("nope")

    def test_unknown_corner_set_rejected(self):
        with pytest.raises(ValueError):
            BenchCase("ota_5t", "smoke", "everywhere")

    def test_unknown_tier_rejected_at_registration(self):
        with pytest.raises(ValueError, match="stretch"):
            BenchCase("ota_5t", "strech", "hardest")

    def test_case_name_is_stable_key(self):
        case = BenchCase("ota_5t", "smoke", "nominal")
        assert case.name == "ota_5t/smoke/nominal"

    def test_case_name_disambiguates_non_defaults(self):
        default = BenchCase("ota_5t", "stretch", "hardest")
        budgeted = BenchCase("ota_5t", "stretch", "hardest", max_evaluations=800)
        retargeted = BenchCase("ota_5t", "stretch", "hardest", load_cap=4e-12)
        names = {default.name, budgeted.name, retargeted.name}
        assert len(names) == 3, names
        assert budgeted.name == "ota_5t/stretch/hardest@max_evaluations=800"

    def test_register_benchmark_rejects_duplicates(self):
        case = BenchCase("ota_5t", "stretch", "nominal")
        register_benchmark("_test_suite", case)
        try:
            with pytest.raises(ValueError):
                register_benchmark("_test_suite", case)
        finally:
            from repro.bench.registry import _SUITES

            _SUITES.pop("_test_suite", None)

    def test_corner_sets_resolve(self):
        assert len(BenchCase("ota_5t", "smoke", "nine").corners()) == 9
        assert len(BenchCase("ota_5t", "smoke", "hardest").corners()) == 1
        assert len(BenchCase("ota_5t", "smoke", "full45").corners()) == 45
        assert BenchCase("ota_5t", "smoke", "nominal").corners()[0].process == "tt"

    def test_corners_suite_scales_the_corner_axis(self):
        """The corner-scaling suite runs one topology on nine vs full45."""
        cases = get_suite("corners")
        assert {case.topology for case in cases} == {"two_stage_opamp"}
        assert [case.corner_set for case in cases] == ["nine", "full45"]

    def test_config_carries_seed_and_budget(self):
        config = BenchCase("ota_5t", "smoke", max_evaluations=123).config(seed=7)
        assert config.seed == 7
        assert config.max_evaluations == 123


class TestRunner:
    @pytest.fixture(scope="class")
    def tiny_result(self):
        (case,) = get_suite("tiny")
        return run_case(case, seeds=[0, 1])

    def test_case_record_structure(self, tiny_result):
        assert tiny_result["name"].startswith("ota_5t/smoke/nominal")
        assert tiny_result["design_dims"] == 5
        assert tiny_result["backend"] == "fused"  # the library default
        assert tiny_result["corner_engine"] == "stacked"  # the library default
        assert tiny_result["optimizer"] == "trust_region"  # the case default
        assert tiny_result["execution"] == "campaign"  # the runner default
        assert 0.0 <= tiny_result["success_rate"] <= 1.0
        assert tiny_result["wall_seconds"] >= tiny_result["refit_seconds"] >= 0.0
        assert tiny_result["wall_seconds"] >= tiny_result["eval_seconds"] >= 0.0
        eval_block = tiny_result["eval"]
        assert eval_block["engine_calls"] > 0
        assert eval_block["rounds"] >= eval_block["engine_calls"]
        assert eval_block["cache_misses"] > 0
        # Telemetry is only populated under tracing (--trace / REPRO_TRACE).
        assert tiny_result["telemetry"] is None
        assert len(tiny_result["per_seed"]) == 2
        for record in tiny_result["per_seed"]:
            assert set(record) == {
                "seed",
                "solved",
                "evaluations",
                "refit_seconds",
                "eval_seconds",
                "cache_hits",
                "cache_misses",
                "engine_calls",
                "phases",
                "failing_corners",
                "best_sizing",
            }
            assert record["evaluations"] > 0
            assert record["refit_seconds"] >= 0.0
            assert record["eval_seconds"] >= 0.0
            assert record["cache_misses"] > 0
            assert record["engine_calls"] >= 1
            # A solved seed has no failing corners (and vice versa the list
            # names exactly the corners that sank an unsolved one).
            if record["solved"]:
                assert record["failing_corners"] == []

    def test_tiny_case_solves(self, tiny_result):
        assert tiny_result["success_rate"] == 1.0
        assert tiny_result["median_evaluations_to_feasible"] is not None

    def test_median_is_over_solved_seeds_only(self):
        case = BenchCase("ota_5t", "stretch", "nominal", max_evaluations=20, max_phases=1)
        result = run_case(case, seeds=[0])
        # A 20-evaluation budget cannot satisfy the stretch tier.
        assert result["success_rate"] == 0.0
        assert result["median_evaluations_to_feasible"] is None

    def test_run_is_deterministic_per_seed(self):
        (case,) = get_suite("tiny")
        first = run_case(case, seeds=[3])["per_seed"][0]
        second = run_case(case, seeds=[3])["per_seed"][0]
        assert first["best_sizing"] == second["best_sizing"]
        assert first["evaluations"] == second["evaluations"]

    def test_suite_payload_and_artifact(self, tmp_path):
        payload = run_suite("tiny", seeds=[0])
        assert payload["schema"] == SCHEMA == "repro.bench/v8"
        assert payload["suite"] == "tiny"
        assert payload["seeds"] == [0]
        assert payload["backend"] == "fused"
        assert payload["corner_engine"] == "stacked"
        assert payload["optimizer"] == "trust_region"
        assert payload["execution"] == "campaign"
        assert payload["totals"]["cases"] == len(payload["cases"])
        path = tmp_path / "BENCH_tiny.json"
        write_bench_json(payload, str(path))
        assert json.loads(path.read_text()) == payload
        summary = format_summary(payload)
        assert "ota_5t/smoke/nominal" in summary
        assert "fused" in summary

    def test_backend_override_recorded(self):
        (case,) = get_suite("tiny")
        result = run_case(case, seeds=[0], backend="autodiff")
        assert result["backend"] == "autodiff"
        payload = run_suite("tiny", seeds=[0], backend="autodiff")
        assert payload["backend"] == "autodiff"

    def test_backends_produce_identical_trajectories(self):
        """Bit-identical training steps -> bit-identical bench results."""
        (case,) = get_suite("tiny")
        fused = run_case(case, seeds=[0], backend="fused")["per_seed"][0]
        autodiff = run_case(case, seeds=[0], backend="autodiff")["per_seed"][0]
        assert fused["evaluations"] == autodiff["evaluations"]
        assert fused["best_sizing"] == autodiff["best_sizing"]


class TestCLI:
    def test_cli_writes_artifact(self, tmp_path, capsys):
        output = tmp_path / "bench.json"
        code = bench_main(["--suite", "tiny", "--seeds", "1", "--output", str(output)])
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["schema"] == SCHEMA
        assert payload["seeds"] == [0]
        captured = capsys.readouterr()
        assert "wrote" in captured.out

    def test_cli_rejects_bad_seed_count(self, tmp_path):
        with pytest.raises(SystemExit):
            bench_main(["--suite", "tiny", "--seeds", "0"])

    def test_cli_fail_under_gates_regressions(self, tmp_path):
        """The CI gate must go red when cases stop solving."""
        from repro.bench.registry import _SUITES

        _SUITES["_gate_test"] = [
            # A 20-evaluation budget cannot satisfy the stretch tier.
            BenchCase("ota_5t", "stretch", "nominal", max_evaluations=20, max_phases=1)
        ]
        try:
            args = ["--suite", "_gate_test", "--seeds", "1",
                    "--output", str(tmp_path / "gate.json")]
            assert bench_main(args + ["--fail-under", "1.0"]) == 1
            assert bench_main(args) == 0  # default: report, don't gate
        finally:
            _SUITES.pop("_gate_test", None)

    def test_cli_rejects_bad_fail_under(self, tmp_path):
        with pytest.raises(SystemExit):
            bench_main(["--suite", "tiny", "--fail-under", "1.5"])

    def test_cli_unknown_suite_prints_listing(self, capsys):
        """An unknown suite enumerates the registry instead of erroring."""
        assert bench_main(["--suite", "definitely_not_a_suite"]) == 2
        out = capsys.readouterr().out
        assert "definitely_not_a_suite" in out
        assert "suites:" in out and "optimizers:" in out
        assert "trust_region" in out

    def test_cli_list_flag(self, capsys):
        assert bench_main(["--list"]) == 0
        out = capsys.readouterr().out
        for needle in ("suites:", "topologies:", "spec tiers:", "optimizers:"):
            assert needle in out
        assert "two_stage_opamp/smoke/nominal@optimizer=random" in out

    def test_cli_backend_flag(self, tmp_path):
        output = tmp_path / "bench.json"
        code = bench_main(
            ["--suite", "tiny", "--seeds", "1", "--backend", "autodiff",
             "--output", str(output)]
        )
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["backend"] == "autodiff"
        assert all(case["backend"] == "autodiff" for case in payload["cases"])

    def test_cli_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            bench_main(["--suite", "tiny", "--backend", "jax"])

    def test_cli_corner_engine_flag(self, tmp_path):
        output = tmp_path / "bench.json"
        code = bench_main(
            ["--suite", "tiny", "--seeds", "1", "--corner-engine", "looped",
             "--output", str(output)]
        )
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["corner_engine"] == "looped"
        assert all(case["corner_engine"] == "looped" for case in payload["cases"])

    def test_cli_rejects_unknown_corner_engine(self):
        with pytest.raises(SystemExit):
            bench_main(["--suite", "tiny", "--corner-engine", "spiral"])

    def test_corner_engines_produce_identical_trajectories(self):
        """Stacked corner evaluation is bit-identical to the looped oracle."""
        (case,) = get_suite("tiny")
        stacked = run_case(case, seeds=[0], corner_engine="stacked")["per_seed"][0]
        looped = run_case(case, seeds=[0], corner_engine="looped")["per_seed"][0]
        assert stacked["evaluations"] == looped["evaluations"]
        assert stacked["best_sizing"] == looped["best_sizing"]
        assert stacked["solved"] == looped["solved"]

    def test_cli_optimizer_flag(self, tmp_path):
        output = tmp_path / "bench.json"
        code = bench_main(
            ["--suite", "tiny", "--seeds", "1", "--optimizer", "random",
             "--output", str(output)]
        )
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["optimizer"] == "random"
        assert all(case["optimizer"] == "random" for case in payload["cases"])
        # Random search carries no surrogate: zero refit time.
        assert payload["cases"][0]["refit_seconds"] == 0.0

    def test_cli_rejects_unknown_optimizer(self):
        with pytest.raises(SystemExit):
            bench_main(["--suite", "tiny", "--optimizer", "simulated_annealing"])

    def test_cli_execution_flag(self, tmp_path):
        output = tmp_path / "bench.json"
        code = bench_main(
            ["--suite", "tiny", "--seeds", "2", "--execution", "sequential",
             "--output", str(output)]
        )
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["execution"] == "sequential"
        assert payload["cases"][0]["eval"]["rounds"] is None


class TestCampaignExecution:
    """The multi-seed campaign path: bit-exact, fewer evaluator calls."""

    def test_campaign_matches_sequential_per_seed(self):
        (case,) = get_suite("tiny")
        campaign = run_case(case, seeds=[0, 1, 2], execution="campaign")
        sequential = run_case(case, seeds=[0, 1, 2], execution="sequential")

        def trajectory(record):
            # Everything except wall times (noisy) and cache accounting
            # (the campaign shares one cache across seeds, so per-seed
            # hit/miss/engine-call splits legitimately differ from the
            # fresh-cache-per-seed sequential loop).
            excluded = {
                "refit_seconds",
                "eval_seconds",
                "cache_hits",
                "cache_misses",
                "engine_calls",
            }
            return {k: v for k, v in record.items() if k not in excluded}

        assert [trajectory(r) for r in campaign["per_seed"]] == [
            trajectory(r) for r in sequential["per_seed"]
        ]
        assert campaign["success_rate"] == sequential["success_rate"]

    def test_campaign_issues_fewer_larger_engine_calls(self):
        (case,) = get_suite("tiny")
        campaign = run_case(case, seeds=[0, 1, 2], execution="campaign")
        sequential = run_case(case, seeds=[0, 1, 2], execution="sequential")
        assert (
            campaign["eval"]["engine_calls"] < sequential["eval"]["engine_calls"]
        )
        # Batching never re-evaluates: the campaign computes at most the
        # (row, corner) pairs the sequential loop computed, plus union
        # corners shared across seeds' requests.
        assert campaign["eval"]["cache_misses"] >= campaign["eval"]["engine_calls"]

    def test_baseline_case_in_smoke_suite(self):
        """The smoke artifact carries a random-search baseline case."""
        cases = get_suite("smoke")
        baselines = [case for case in cases if case.optimizer == "random"]
        assert len(baselines) == 1
        record = run_case(baselines[0], seeds=[0])
        assert record["optimizer"] == "random"
        assert record["success_rate"] == 1.0
        assert record["refit_seconds"] == 0.0  # no surrogate to fit


class TestCrossCheck:
    def test_cross_check_passes_on_builtin_case(self, capsys):
        from repro.bench import cross_check

        assert cross_check("tiny") == 0
        out = capsys.readouterr().out
        assert "cross-check PASS" in out

    def test_cli_cross_check_flag(self, capsys):
        assert bench_main(["--cross-check", "--suite", "tiny"]) == 0
        assert "cross-check PASS" in capsys.readouterr().out

    def test_cli_cross_check_rejects_ignored_flags(self):
        """Flags the guard would silently drop must be an error instead."""
        for extra in (["--seeds", "5"], ["--output", "x.json"],
                      ["--backend", "autodiff"], ["--fail-under", "1.0"],
                      ["--corner-engine", "looped"], ["--optimizer", "random"],
                      ["--trace", "t.jsonl"]):
            with pytest.raises(SystemExit):
                bench_main(["--cross-check", "--suite", "tiny"] + extra)


class TestDemoParity:
    def test_smoke_two_stage_matches_opamp_demo_at_seed_zero(self):
        """The bench harness must reproduce the historical demo bit-for-bit:
        same progressive search, same RNG stream, same winning sizing."""
        from repro.search.opamp_demo import size_two_stage_opamp

        demo = size_two_stage_opamp(seed=0)
        case = next(
            case for case in get_suite("smoke") if case.topology == "two_stage_opamp"
        )
        bench = run_case(case, seeds=[0])["per_seed"][0]
        assert bench["solved"] and demo.solved_all_corners
        assert bench["evaluations"] == demo.evaluations
        np.testing.assert_array_equal(
            list(bench["best_sizing"].values()), list(demo.best_sizing.values())
        )
