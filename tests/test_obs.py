"""The observability layer: tracer, metrics, report, and its neutrality.

The load-bearing guarantees, each locked here:

* **Trajectory neutrality** — tracing on/off changes no search trajectory,
  on every topology (and the determinism auditor stays green under it).
* **Near-zero disabled cost** — with tracing off the instrumented paths
  emit nothing and the primitives reduce to a flag test.
* **Faithful accounting** — per-seed cache/eval attribution under the
  multi-seed campaign sums back to the campaign-wide counters.
* **Round-trip** — the JSONL sink reproduces the ring, and the report
  renders every table from it.
"""

import json
import math

import pytest

from repro.bench import get_suite, run_case
from repro.bench.registry import BenchCase
from repro.obs import (
    MetricsRegistry,
    TraceRollup,
    Tracer,
    diff_snapshots,
    event,
    format_report,
    get_tracer,
    load_trace,
    profiled,
    set_tracing,
    span,
    tracing,
    tracing_enabled,
)
from repro.obs.__main__ import main as obs_main
from repro.obs.tracer import _env_sink


class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(2)
        registry.gauge("g").set(4.5)
        registry.histogram("h").observe(1.0)
        registry.histogram("h").observe(3.0)
        assert registry.counter("c").value == 3
        assert registry.gauge("g").value == 4.5
        hist = registry.histogram("h")
        assert (hist.count, hist.total, hist.min, hist.max) == (2, 4.0, 1.0, 3.0)
        assert hist.mean == 2.0
        assert registry.names() == ("c", "g", "h")

    def test_name_bound_to_one_kind(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered as a counter"):
            registry.gauge("x")

    def test_unknown_metric_lists_registered(self):
        registry = MetricsRegistry()
        registry.counter("known")
        with pytest.raises(KeyError, match="known"):
            registry.get("nope")

    def test_diff_snapshots_reports_only_movement(self):
        registry = MetricsRegistry()
        registry.counter("moved").inc(2)
        registry.counter("still")
        registry.gauge("level").set(1.0)
        registry.histogram("h").observe(0.5)
        before = registry.snapshot()
        registry.counter("moved").inc(3)
        registry.gauge("level").set(7.0)
        registry.histogram("h").observe(1.5)
        delta = diff_snapshots(before, registry.snapshot())
        assert delta["moved"] == {"kind": "counter", "value": 3}
        assert delta["level"]["value"] == 7.0  # gauges report the after value
        assert delta["h"]["count"] == 1
        assert delta["h"]["total"] == 1.5
        assert "still" not in delta

    def test_diff_snapshots_from_empty_before(self):
        registry = MetricsRegistry()
        registry.counter("new").inc(5)
        delta = diff_snapshots({}, registry.snapshot())
        assert delta["new"]["value"] == 5


class TestTracer:
    def test_off_by_default_and_emits_nothing(self):
        assert not tracing_enabled()
        emitted = get_tracer().emitted

        @span("test.noop")
        def traced():
            return 42

        assert traced() == 42
        event("test.event", n=1)
        assert get_tracer().emitted == emitted

    def test_span_decorator_preserves_identity(self):
        @span("test.identity")
        def fn(x):
            """doc"""
            return x

        assert fn.__name__ == "fn"
        assert fn.__doc__ == "doc"
        assert fn.__traced_span__ == "test.identity"

    def test_tracing_context_records_and_restores(self):
        previous = get_tracer()
        with tracing() as tracer:
            assert tracing_enabled()
            assert get_tracer() is tracer is not previous
            event("test.mark", k="v")
            with profiled("test.outer") as outer:
                with profiled("test.inner"):
                    pass
            assert outer.seconds > 0.0
        assert not tracing_enabled()
        assert get_tracer() is previous
        names = [r["name"] for r in tracer.records]
        assert names == ["test.mark", "test.inner", "test.outer"]
        by_name = {r["name"]: r for r in tracer.records}
        # The inner span's parent is the outer span: a call tree, not a list.
        assert by_name["test.inner"]["parent"] == by_name["test.outer"]["id"]
        assert by_name["test.outer"]["parent"] is None
        assert by_name["test.mark"]["dur"] == 0.0
        # Every closed span feeds the owned registry.
        assert tracer.metrics.counter("event.test.mark").value == 1
        assert tracer.metrics.histogram("span.test.outer").count == 1

    def test_set_tracing_returns_previous_state(self):
        previous = set_tracing(True)
        try:
            assert previous[0] is False
            assert tracing_enabled()
        finally:
            enabled, tracer = previous
            restored = set_tracing(enabled)
            # Reinstall the original tracer object, not a fresh one.
            import repro.obs.tracer as tracer_module

            tracer_module._TRACER = tracer
            assert restored[0] is True
        assert not tracing_enabled()

    def test_profiled_times_even_when_disabled(self):
        assert not tracing_enabled()
        emitted = get_tracer().emitted
        with profiled("test.disabled") as timer:
            sum(range(100))
        assert timer.seconds > 0.0
        assert get_tracer().emitted == emitted

    def test_profiled_annotate_lands_in_the_record(self):
        with tracing() as tracer:
            with profiled("test.work", rows=3) as timer:
                timer.annotate(hits=5)
        (record,) = tracer.records
        assert record["tags"] == {"rows": 3, "hits": 5}

    def test_span_self_tags_read_off_the_receiver(self):
        class Problem:
            name = "ota_5t"

            @span("test.method", self_tags={"topology": "name"})
            def evaluate(self):
                return 1

        with tracing() as tracer:
            Problem().evaluate()
        (record,) = tracer.records
        assert record["tags"] == {"topology": "ota_5t"}

    def test_ring_drops_oldest_and_counts(self):
        with tracing(ring_size=4) as tracer:
            for i in range(10):
                event("test.tick", i=i)
        assert len(tracer.records) == 4
        assert tracer.dropped == 6
        assert tracer.emitted == 10
        assert [r["tags"]["i"] for r in tracer.records] == [6, 7, 8, 9]

    def test_exception_unwinds_the_span_stack(self):
        with tracing() as tracer:
            with pytest.raises(RuntimeError):
                with profiled("test.outer"):
                    inner = tracer.start("test.orphan")  # never finished
                    assert inner is not None
                    raise RuntimeError("boom")
            # The outer finish unwound past the orphan: new spans are roots.
            with profiled("test.after"):
                pass
        after = next(r for r in tracer.records if r["name"] == "test.after")
        assert after["parent"] is None

    def test_env_parsing(self, monkeypatch):
        for value, expected in [
            ("", (False, None)),
            ("0", (False, None)),
            ("false", (False, None)),
            ("1", (True, None)),
            ("yes", (True, None)),
            ("/tmp/t.jsonl", (True, "/tmp/t.jsonl")),
        ]:
            monkeypatch.setenv("REPRO_TRACE", value)
            assert _env_sink() == expected


class TestJsonlRoundTrip:
    def test_sink_matches_ring_and_report_renders(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with tracing(sink=path) as tracer:
            with profiled("campaign.run", seeds=2):
                with profiled("optimizer.ask", seed=0, phase=0):
                    pass
                event("eval_cache.evaluate", hits=3, misses=1)
            ring = [json.loads(json.dumps(r, default=str)) for r in tracer.records]
        records = load_trace(path)
        assert [r["name"] for r in records] == [r["name"] for r in ring]
        assert [r["id"] for r in records] == [r["id"] for r in ring]
        report = format_report(records)
        for section in (
            "per-subsystem self-time:",
            "per-seed self-time:",
            "per-phase self-time:",
            "per-span rollup:",
            "cache:",
            "spans by duration:",
        ):
            assert section in report
        assert "3 hits / 1 misses" in report

    def test_numpy_tags_serialize(self, tmp_path):
        np = pytest.importorskip("numpy")
        path = str(tmp_path / "trace.jsonl")
        with tracing(sink=path):
            event("test.np", rows=np.int64(7), loss=np.float64(0.5))
        (record,) = load_trace(path)
        assert record["tags"] == {"rows": 7, "loss": 0.5}

    def test_load_trace_points_at_bad_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span"}\nnot json\n{"type": "event"}\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_trace(str(path))

    def test_load_trace_tolerates_torn_final_line(self, tmp_path):
        """A killed writer leaves at most one partial record at the tail."""
        path = tmp_path / "torn.jsonl"
        path.write_text('{"type": "span"}\n{"type": "ev')
        records = load_trace(str(path))
        assert records == [{"type": "span"}]


class TestReportRollup:
    def make_records(self):
        return [
            {"type": "span", "id": 1, "parent": None, "name": "campaign.run",
             "start": 0.0, "dur": 1.0, "tags": {"seed": 0}},
            {"type": "span", "id": 2, "parent": 1, "name": "optimizer.ask",
             "start": 0.1, "dur": 0.4, "tags": {"phase": 1}},
            {"type": "event", "id": 3, "parent": 2, "name": "eval_cache.evaluate",
             "start": 0.2, "dur": 0.0, "tags": {"hits": 2, "misses": 2}},
        ]

    def test_self_time_subtracts_direct_children(self):
        rollup = TraceRollup(self.make_records())
        assert math.isclose(rollup.self_seconds[1], 0.6)
        assert math.isclose(rollup.self_seconds[2], 0.4)

    def test_tags_inherit_up_the_parent_chain(self):
        rollup = TraceRollup(self.make_records())
        by_seed = dict((label, seconds) for label, seconds, _ in rollup.by_tag("seed"))
        # The child span has no seed tag of its own; it books to seed 0.
        assert set(by_seed) == {"0"}
        assert math.isclose(by_seed["0"], 1.0)

    def test_cache_stats_from_event_tags(self):
        stats = TraceRollup(self.make_records()).cache_stats()
        assert stats["hits"] == 2 and stats["misses"] == 2
        assert stats["hit_rate"] == 0.5
        assert stats["lookups"] == 1

    def test_empty_trace_message(self):
        assert "empty trace" in format_report([])

    def test_cli_renders_and_flags_missing_files(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        with tracing(sink=path):
            with profiled("campaign.run", seeds=1):
                pass
        assert obs_main(["report", path, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "campaign.run" in out and "top 3 spans" in out
        assert obs_main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such trace" in capsys.readouterr().err


def _trajectory(record):
    """A per-seed bench record minus its wall-clock (non-deterministic) fields."""
    return {k: v for k, v in record.items() if k not in ("refit_seconds", "eval_seconds")}


class TestTrajectoryNeutrality:
    """Tracing must never perturb a search: bit-identical on or off."""

    @pytest.mark.parametrize(
        "topology", ["ota_5t", "two_stage_opamp", "folded_cascode", "telescopic"]
    )
    def test_bit_identical_trajectories_per_topology(self, topology):
        case = BenchCase(topology, "smoke", "nominal")
        baseline = run_case(case, seeds=[0])["per_seed"][0]
        with tracing() as tracer:
            traced = run_case(case, seeds=[0])["per_seed"][0]
        assert tracer.emitted > 0  # the instrumentation actually fired
        # Everything deterministic — trajectory, sizing, cache counters —
        # is identical; only wall-clock fields may differ.
        assert _trajectory(traced) == _trajectory(baseline)

    def test_multi_seed_campaign_neutral_under_sink(self, tmp_path):
        (case,) = get_suite("tiny")
        baseline = run_case(case, seeds=[0, 1])
        with tracing(sink=str(tmp_path / "trace.jsonl")):
            traced = run_case(case, seeds=[0, 1])
        assert [_trajectory(r) for r in traced["per_seed"]] == [
            _trajectory(r) for r in baseline["per_seed"]
        ]
        assert traced["eval"] == baseline["eval"]

    def test_determinism_auditor_green_with_tracing_on(self):
        from repro.analysis.determinism import audit_case

        with tracing():
            report = audit_case(get_suite("tiny")[0], seeds=[0])
        assert report.identical, report.divergence


class TestPerSeedAttribution:
    """Multi-seed campaigns attribute real per-seed eval accounting."""

    @pytest.fixture(scope="class")
    def campaign_record(self):
        (case,) = get_suite("tiny")
        return run_case(case, seeds=[0, 1, 2], execution="campaign")

    def test_cache_counters_sum_to_campaign_totals(self, campaign_record):
        per_seed = campaign_record["per_seed"]
        eval_block = campaign_record["eval"]
        assert sum(r["cache_hits"] for r in per_seed) == eval_block["cache_hits"]
        assert sum(r["cache_misses"] for r in per_seed) == eval_block["cache_misses"]

    def test_every_seed_has_real_accounting(self, campaign_record):
        for record in campaign_record["per_seed"]:
            assert record["cache_misses"] > 0
            assert record["engine_calls"] >= 1
            assert record["eval_seconds"] > 0.0

    def test_eval_seconds_split_sums_to_total(self, campaign_record):
        total = sum(r["eval_seconds"] for r in campaign_record["per_seed"])
        # Per-seed values are rounded to 1e-6 in the artifact.
        assert math.isclose(
            total, campaign_record["eval_seconds"], abs_tol=5e-6 * 3
        )

    def test_shared_engine_calls_book_to_each_participant(self, campaign_record):
        eval_block = campaign_record["eval"]
        per_seed = campaign_record["per_seed"]
        # A stacked pass shared by k seeds books one call to each, so the
        # per-seed sum is at least the campaign-wide counter, and no single
        # seed exceeds it.
        assert sum(r["engine_calls"] for r in per_seed) >= eval_block["engine_calls"]
        assert all(r["engine_calls"] <= eval_block["engine_calls"] for r in per_seed)

    def test_single_seed_accounting_matches_sequential(self):
        (case,) = get_suite("tiny")
        campaign = run_case(case, seeds=[0], execution="campaign")["per_seed"][0]
        sequential = run_case(case, seeds=[0], execution="sequential")["per_seed"][0]
        assert campaign["cache_hits"] == sequential["cache_hits"]
        assert campaign["cache_misses"] == sequential["cache_misses"]
        assert campaign["engine_calls"] == sequential["engine_calls"]


class TestBenchTelemetry:
    def test_traced_run_carries_telemetry_block(self, tmp_path):
        (case,) = get_suite("tiny")
        with tracing():
            record = run_case(case, seeds=[0])
        telemetry = record["telemetry"]
        assert telemetry is not None
        assert telemetry["events"]["campaign.solved"] == 1
        spans = telemetry["spans"]
        # The tiny case solves before a surrogate refit triggers, so
        # trust_region.refit / nn.fused_fit may be absent; these are the
        # structurally guaranteed hot points.
        for name in ("bench.run_case", "campaign.run", "campaign.round",
                     "optimizer.ask", "optimizer.tell", "eval_cache.engine",
                     "topology.evaluate_corners"):
            assert spans[name]["count"] >= 1
            assert spans[name]["seconds"] >= 0.0

    def test_untraced_run_telemetry_is_null(self):
        (case,) = get_suite("tiny")
        assert run_case(case, seeds=[0])["telemetry"] is None
