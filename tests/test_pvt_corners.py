"""Skewed process corners (fs/sf) and their effect on the topology zoo.

The tt/ff/ss corners are exercised by the search tests; these cover the
cross corners where NMOS and PMOS move in *opposite* directions, which is
exactly where a symmetric-derating bug would hide.
"""

import numpy as np
import pytest

from repro.circuits.process import get_technology
from repro.circuits.pvt import (
    PROCESS_CORNERS,
    PVTCondition,
    full_corner_grid,
    rank_by_severity,
)
from repro.circuits.topologies import FiveTransistorOTA, available_topologies, get_topology


class TestSkewedCornerDerating:
    def test_fs_speeds_nmos_and_slows_pmos(self):
        card = get_technology("bsim45")
        derated = PVTCondition("fs").apply(card)
        assert derated.kp_n > card.kp_n
        assert derated.kp_p < card.kp_p
        assert derated.vth_n < card.vth_n
        assert derated.vth_p > card.vth_p

    def test_sf_slows_nmos_and_speeds_pmos(self):
        card = get_technology("bsim45")
        derated = PVTCondition("sf").apply(card)
        assert derated.kp_n < card.kp_n
        assert derated.kp_p > card.kp_p
        assert derated.vth_n > card.vth_n
        assert derated.vth_p < card.vth_p

    def test_fs_and_sf_are_mirror_images(self):
        mob_n_fs, mob_p_fs, dvth_n_fs, dvth_p_fs = PROCESS_CORNERS["fs"]
        mob_n_sf, mob_p_sf, dvth_n_sf, dvth_p_sf = PROCESS_CORNERS["sf"]
        assert mob_n_fs == mob_p_sf and mob_p_fs == mob_n_sf
        assert dvth_n_fs == dvth_p_sf and dvth_p_fs == dvth_n_sf

    def test_skewed_corners_in_full_grid(self):
        processes = {condition.process for condition in full_corner_grid()}
        assert {"fs", "sf"} <= processes

    def test_skewed_severity_between_ff_and_ss(self):
        """Cross corners are harder than all-fast, easier than all-slow."""
        severity = {
            name: PVTCondition(name).severity() for name in ("ff", "fs", "sf", "ss")
        }
        assert severity["ff"] < severity["fs"] < severity["ss"]
        assert severity["ff"] < severity["sf"] < severity["ss"]

    def test_rank_by_severity_handles_skewed(self):
        corners = [PVTCondition(p) for p in ("tt", "fs", "sf", "ss", "ff")]
        ranked = rank_by_severity(corners)
        assert ranked[0].process == "ss"
        assert ranked[-1].process == "ff"


@pytest.mark.parametrize("name", ["fs", "sf"])
class TestTopologiesAtSkewedCorners:
    def test_all_topologies_finite(self, name):
        condition = PVTCondition(name, 0.9, 125.0)
        for topology in available_topologies():
            problem = get_topology(topology)(condition=condition)
            samples = problem.design_space().sample(np.random.default_rng(2), 200)
            metrics = problem.evaluate_batch(samples)
            assert np.all(np.isfinite(metrics)), f"{topology} non-finite at {name}"

    def test_mna_cross_check_holds(self, name):
        """Closed-form vs MNA agreement survives asymmetric derating."""
        condition = PVTCondition(name, 0.9, 125.0)
        for topology in available_topologies():
            problem = get_topology(topology)(condition=condition)
            space = problem.design_space()
            sizing = space.from_unit(np.full(space.dimension, 0.5))
            analytic = problem.evaluate(sizing)
            numeric = problem.mna_metrics(sizing)
            assert analytic["dc_gain_db"] == pytest.approx(
                numeric["dc_gain_db"], abs=0.1
            ), topology
            assert analytic["ugbw_hz"] == pytest.approx(numeric["ugbw_hz"], rel=0.05), topology
            assert analytic["phase_margin_deg"] == pytest.approx(
                numeric["phase_margin_deg"], abs=3.0
            ), topology


class TestSkewAsymmetry:
    def test_nmos_input_ota_prefers_fs_over_sf(self):
        """The 5T OTA's input gm is NMOS: fast-NMOS must beat fast-PMOS."""
        space = FiveTransistorOTA().design_space()
        sizing = space.from_unit(np.full(space.dimension, 0.5))
        fs = FiveTransistorOTA(condition=PVTCondition("fs")).evaluate(sizing)
        sf = FiveTransistorOTA(condition=PVTCondition("sf")).evaluate(sizing)
        assert fs["ugbw_hz"] > sf["ugbw_hz"]
