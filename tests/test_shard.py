"""Sharded execution: shard maps, spawn parity, store merge, worker failure."""

import dataclasses
import glob
import json
import os

import numpy as np
import pytest

from repro.analysis.determinism import fingerprint_outcome
from repro.bench.registry import get_suite
from repro.bench.runner import run_suite
from repro.shard import (
    ShardedExecutor,
    ShardSpec,
    ShardWorkerError,
    run_sequential,
    union_state_digest,
)

SEEDS = [0, 1]


@pytest.fixture(scope="module")
def tiny_specs():
    return get_suite("tiny")[0].shard_specs(SEEDS)


@pytest.fixture(scope="module")
def oracle(tiny_specs):
    """The in-process sequential oracle every parity test diffs against."""
    outcome = run_sequential(tiny_specs)
    return outcome, _fingerprint(outcome)


def _fingerprint(outcome):
    return json.dumps(
        fingerprint_outcome(outcome, outcome.cache_digest, SEEDS), sort_keys=True
    )


class TestShardMap:
    def test_static_partition_is_pure(self, tiny_specs):
        executor = ShardedExecutor(tiny_specs * 3, workers=2)
        assert executor.shard_map() == {i: i % 2 for i in range(6)}
        # A pure function of (len(specs), workers): rebuilt maps agree.
        assert executor.shard_map() == ShardedExecutor(tiny_specs * 3, workers=2).shard_map()

    def test_effective_workers_never_exceed_shards(self, tiny_specs):
        executor = ShardedExecutor(tiny_specs, workers=8)
        assert executor.effective_workers == len(tiny_specs)
        assert set(executor.shard_map().values()) == set(range(len(tiny_specs)))

    def test_validation(self, tiny_specs):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardedExecutor([])
        with pytest.raises(ValueError, match="at least 1"):
            ShardedExecutor(tiny_specs, workers=0)
        with pytest.raises(ValueError, match="needs checkpoint_dir"):
            ShardedExecutor(tiny_specs, workers=1, resume=True)
        # Kill plans SIGKILL the worker process; the in-process fast path
        # must refuse them instead of killing the parent.
        with pytest.raises(ValueError, match="spawned execution"):
            ShardedExecutor(tiny_specs, workers=1, kill_plans={0: 1})


class TestParity:
    def test_inline_fast_path_matches_oracle(self, tiny_specs, oracle):
        _, oracle_fp = oracle
        outcome = ShardedExecutor(
            tiny_specs, workers=1, collect_cache_content=True
        ).run()
        assert _fingerprint(outcome) == oracle_fp
        assert [shard.worker for shard in outcome.shards] == [0, 0]

    def test_spawned_workers_match_oracle(self, tiny_specs, oracle):
        oracle_outcome, oracle_fp = oracle
        outcome = ShardedExecutor(
            tiny_specs, workers=2, collect_cache_content=True
        ).run()
        assert _fingerprint(outcome) == oracle_fp
        assert outcome.cache_digest == oracle_outcome.cache_digest
        # Placement bookkeeping: the map, the shard records and the
        # per-worker rollup all tell the same story.
        assert outcome.shard_map == {0: 0, 1: 1}
        assert [shard.worker for shard in outcome.shards] == [0, 1]
        assert [entry["shards"] for entry in outcome.per_worker] == [1, 1]
        # Per-seed counters are exact (each shard is its own single-seed
        # campaign), so campaign-wide sums match the oracle's too.
        assert outcome.engine_calls == oracle_outcome.engine_calls
        assert outcome.cache_hits == oracle_outcome.cache_hits

    def test_bench_runner_sharded_block(self):
        payload = run_suite("tiny", seeds=SEEDS, execution="sharded", workers=1)
        assert payload["execution"] == "sharded"
        (case,) = payload["cases"]
        shard = case["shard"]
        assert shard["workers"] == 1
        assert sorted(shard["shard_map"]) == [str(seed) for seed in SEEDS]
        assert [entry["worker"] for entry in shard["per_worker"]] == [0]


class TestCacheMerge:
    def test_merge_on_close_equivalence(self, tiny_specs, oracle, tmp_path):
        from repro.search.eval_cache import EvaluationCache

        oracle_outcome, _ = oracle
        master = str(tmp_path / "cache.evc")
        cold = ShardedExecutor(
            tiny_specs, workers=2, cache_path=master, collect_cache_content=True
        ).run()
        # Per-shard files are folded into the master and removed.
        assert glob.glob(master + ".shard-*") == []
        assert os.path.exists(master)
        # The merged master's digest equals both the union digest and the
        # sequential oracle's in-process cache digest.
        def _no_engine(rows, corners):
            raise AssertionError("read-back must not evaluate")

        campaign = tiny_specs[0].build()
        dimension = campaign.handle.design_space.dimension
        n_metrics = len(campaign.handle.metric_names)
        campaign.close()
        store = EvaluationCache(
            _no_engine, dimension, n_metrics, persist_path=master
        )
        try:
            assert store.state_digest() == cold.cache_digest
        finally:
            store.close()
        assert cold.cache_digest == oracle_outcome.cache_digest

        # Warm rerun: every shard preloads the merged master and recomputes
        # nothing, yet lands on the identical digest.
        warm = ShardedExecutor(
            tiny_specs, workers=2, cache_path=master, collect_cache_content=True
        ).run()
        assert warm.cache_digest == cold.cache_digest
        assert all(
            shard.cache_counters["preloaded_pairs"] > 0 for shard in warm.shards
        )
        assert [shard.engine_calls for shard in warm.shards] == [0, 0]

    def test_union_digest_rejects_conflicting_rows(self):
        corner = ("typical", 1.0, 27.0)
        left = [(corner, [b"key"], np.ones((1, 2)))]
        right = [(corner, [b"key"], np.zeros((1, 2)))]
        with pytest.raises(ValueError, match="two different metric rows"):
            union_state_digest([left, right])


class TestWorkerFailure:
    def test_spawned_crash_names_the_shard(self, tiny_specs, tmp_path):
        bad = [
            dataclasses.replace(spec, topology="no_such_topology")
            for spec in tiny_specs
        ]
        with pytest.raises(ShardWorkerError) as excinfo:
            ShardedExecutor(bad, workers=2).run()
        error = excinfo.value
        assert error.exitcode == 1
        assert (0, bad[0].label, 0) in error.shards
        assert "no_such_topology" in str(error)

    def test_inline_crash_names_the_shard(self, tiny_specs):
        bad = [dataclasses.replace(tiny_specs[0], topology="no_such_topology")]
        with pytest.raises(ShardWorkerError) as excinfo:
            ShardedExecutor(bad, workers=1).run()
        error = excinfo.value
        assert error.worker == 0
        assert error.exitcode is None
        assert (0, bad[0].label, 0) in error.shards

    def test_sigkilled_worker_resumes_bit_identical(
        self, tiny_specs, oracle, tmp_path
    ):
        _, oracle_fp = oracle
        checkpoint_dir = str(tmp_path / "checkpoints")
        with pytest.raises(ShardWorkerError) as excinfo:
            ShardedExecutor(
                tiny_specs,
                workers=2,
                checkpoint_dir=checkpoint_dir,
                collect_cache_content=True,
                kill_plans={0: 2},
            ).run()
        error = excinfo.value
        # A real SIGKILL, surfaced with the dead worker's shard identity.
        assert error.worker == 0
        assert error.exitcode == -9
        assert (0, tiny_specs[0].label, 0) in error.shards
        resumed = ShardedExecutor(
            tiny_specs,
            workers=2,
            checkpoint_dir=checkpoint_dir,
            resume=True,
            collect_cache_content=True,
        ).run()
        assert _fingerprint(resumed) == oracle_fp
        # The killed shard restored its round-1 snapshot; the survivor's
        # finished-state snapshot replays as a no-op.
        assert resumed.shards[0].resumed_from_round == 1
