"""Robust-loss gradients, including the converged zero-error point."""

import numpy as np

from repro.autodiff import Tensor
from repro.nn import huber_loss, mae_loss, mse_loss

from test_autodiff import numeric_grad

RNG = np.random.default_rng(7)


def loss_grad(loss, prediction, target):
    pred = Tensor(prediction, requires_grad=True)
    loss(pred, Tensor(target)).backward()
    return pred.grad


class TestZeroErrorGradients:
    """The seed computed |x| as (x*x)**0.5, whose backward divides by zero."""

    def test_mae_finite_at_zero_error(self):
        values = RNG.normal(size=(4, 2))
        grad = loss_grad(mae_loss, values.copy(), values.copy())
        assert np.all(np.isfinite(grad))
        np.testing.assert_allclose(grad, 0.0)

    def test_huber_finite_at_zero_error(self):
        values = RNG.normal(size=(4, 2))
        grad = loss_grad(huber_loss, values.copy(), values.copy())
        assert np.all(np.isfinite(grad))
        np.testing.assert_allclose(grad, 0.0)

    def test_huber_finite_with_partial_zero_errors(self):
        target = np.array([1.0, -2.0, 0.5])
        prediction = np.array([1.0, 0.0, 0.5])  # one large error, two exact
        grad = loss_grad(huber_loss, prediction, target)
        assert np.all(np.isfinite(grad))


class TestFiniteDifference:
    def test_mse_matches_fd(self):
        prediction = RNG.normal(size=(5, 3))
        target = RNG.normal(size=(5, 3))
        grad = loss_grad(mse_loss, prediction, target)
        expected = numeric_grad(
            lambda x: float(mse_loss(Tensor(x), Tensor(target)).data), prediction
        )
        np.testing.assert_allclose(grad, expected, rtol=1e-5, atol=1e-7)

    def test_mae_matches_fd(self):
        prediction = RNG.normal(size=(5, 3)) + 0.2  # keep away from kinks
        target = RNG.normal(size=(5, 3)) - 0.2
        grad = loss_grad(mae_loss, prediction, target)
        expected = numeric_grad(
            lambda x: float(mae_loss(Tensor(x), Tensor(target)).data), prediction
        )
        np.testing.assert_allclose(grad, expected, rtol=1e-5, atol=1e-7)

    def test_huber_matches_fd_both_regions(self):
        target = np.zeros(4)
        prediction = np.array([0.3, -0.4, 2.5, -3.0])  # quadratic + linear
        grad = loss_grad(huber_loss, prediction, target)
        expected = numeric_grad(
            lambda x: float(huber_loss(Tensor(x), Tensor(target)).data), prediction.copy()
        )
        np.testing.assert_allclose(grad, expected, rtol=1e-5, atol=1e-7)

    def test_huber_values(self):
        # Quadratic inside delta, linear outside.
        target = Tensor(np.zeros(2))
        value = float(huber_loss(Tensor(np.array([0.5, 3.0])), target, delta=1.0).data)
        expected = 0.5 * ((0.5 * 0.5 ** 2) + (3.0 - 0.5))
        np.testing.assert_allclose(value, expected)
