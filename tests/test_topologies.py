"""Topology zoo: SizingProblem interface, registry, and per-topology physics."""

import numpy as np
import pytest

from repro.circuits.pvt import NOMINAL, PVTCondition, hardest_condition, nine_corner_grid
from repro.circuits.topologies import (
    AMPLIFIER_METRIC_NAMES,
    SPEC_TIERS,
    FiveTransistorOTA,
    FoldedCascodeOTA,
    SizingProblem,
    TelescopicCascodeOTA,
    TwoStageOpAmp,
    available_topologies,
    get_topology,
    register_topology,
)

ALL_TOPOLOGIES = [FiveTransistorOTA, FoldedCascodeOTA, TelescopicCascodeOTA, TwoStageOpAmp]

HARSH = PVTCondition("ss", 0.9, 125.0)


def mid_space_sizing(problem):
    """The geometric centre of the design space, a well-behaved test point."""
    space = problem.design_space()
    return space.from_unit(np.full(space.dimension, 0.5))


class TestRegistry:
    def test_all_builtins_registered(self):
        names = available_topologies()
        assert set(names) >= {"two_stage_opamp", "ota_5t", "folded_cascode", "telescopic"}
        assert len(names) >= 4

    def test_get_topology_roundtrip(self):
        for cls in ALL_TOPOLOGIES:
            assert get_topology(cls.name) is cls

    def test_unknown_topology_lists_available(self):
        with pytest.raises(KeyError, match="two_stage_opamp"):
            get_topology("does_not_exist")

    def test_registering_unnamed_class_rejected(self):
        class Unnamed(FiveTransistorOTA):
            name = ""

        with pytest.raises(ValueError):
            register_topology(Unnamed)

    def test_name_collision_rejected(self):
        class Impostor(FiveTransistorOTA):
            name = "ota_5t"

        with pytest.raises(ValueError):
            register_topology(Impostor)


@pytest.mark.parametrize("cls", ALL_TOPOLOGIES, ids=lambda cls: cls.name)
class TestSizingProblemContract:
    def test_is_sizing_problem(self, cls):
        assert issubclass(cls, SizingProblem)

    def test_design_space_matches_variables(self, cls):
        problem = cls()
        space = problem.design_space()
        assert space.names == cls.VARIABLE_NAMES
        assert space.dimension == problem.dimension

    def test_metric_layout_is_shared(self, cls):
        assert cls.METRIC_NAMES == AMPLIFIER_METRIC_NAMES

    def test_batch_shape_and_finiteness(self, cls):
        problem = cls()
        samples = problem.design_space().sample(np.random.default_rng(7), 400)
        metrics = problem.evaluate_batch(samples)
        assert metrics.shape == (400, len(cls.METRIC_NAMES))
        assert np.all(np.isfinite(metrics))

    def test_batch_matches_scalar_path(self, cls):
        problem = cls()
        samples = problem.design_space().sample(np.random.default_rng(8), 16)
        batch = problem.evaluate_batch(samples)
        for k in (0, 5, 15):
            single = problem.evaluate(samples[k])
            np.testing.assert_allclose(
                batch[k], [single[name] for name in cls.METRIC_NAMES], rtol=1e-12
            )

    def test_rejects_bad_shapes(self, cls):
        problem = cls()
        with pytest.raises(ValueError):
            problem.evaluate(np.ones(problem.dimension + 1))
        with pytest.raises(ValueError):
            problem.evaluate_batch(np.ones((3, problem.dimension + 2)))

    def test_mapping_sizing_accepted(self, cls):
        problem = cls()
        vector = mid_space_sizing(problem)
        as_dict = dict(zip(cls.VARIABLE_NAMES, vector))
        np.testing.assert_allclose(problem.to_vector(as_dict), vector)
        assert problem.evaluate(as_dict) == problem.evaluate(vector)

    def test_spec_ladder_tiers(self, cls):
        ladder = cls().default_specs()
        assert set(ladder) == set(SPEC_TIERS)
        for specs in ladder.values():
            assert specs, "every tier needs at least one spec"
            for spec in specs:
                assert spec.metric in cls.METRIC_NAMES

    def test_harsh_corner_degrades_performance(self, cls):
        """Slow/hot/low-V must not beat nominal on gain or bandwidth."""
        sizing = mid_space_sizing(cls())
        nominal = cls(condition=NOMINAL).evaluate(sizing)
        harsh = cls(condition=HARSH).evaluate(sizing)
        assert harsh["dc_gain_db"] < nominal["dc_gain_db"]
        assert harsh["ugbw_hz"] < nominal["ugbw_hz"]

    def test_mna_cross_check_nominal_and_harsh(self, cls):
        """Closed-form gain/UGBW/PM agree with an MNA sweep of the netlist."""
        for condition in (NOMINAL, HARSH):
            problem = cls(condition=condition)
            sizing = mid_space_sizing(problem)
            analytic = problem.evaluate(sizing)
            numeric = problem.mna_metrics(sizing)
            assert analytic["dc_gain_db"] == pytest.approx(numeric["dc_gain_db"], abs=0.1)
            assert analytic["ugbw_hz"] == pytest.approx(numeric["ugbw_hz"], rel=0.05)
            assert analytic["phase_margin_deg"] == pytest.approx(
                numeric["phase_margin_deg"], abs=3.0
            )


class TestTopologyPhysics:
    """Spot checks tying each new topology to its defining trade-off."""

    def test_telescopic_outgains_five_transistor(self):
        """Cascoding must add orders of magnitude of output resistance."""
        ota = FiveTransistorOTA()
        telescopic = TelescopicCascodeOTA()
        gain_5t = ota.evaluate(mid_space_sizing(ota))["dc_gain_db"]
        gain_tele = telescopic.evaluate(mid_space_sizing(telescopic))["dc_gain_db"]
        assert gain_tele > gain_5t + 30.0

    def test_folded_cascode_pays_power_for_headroom(self):
        """At matched tail current the fold branch burns extra supply current."""
        folded = FoldedCascodeOTA()
        telescopic = TelescopicCascodeOTA()
        sizing_t = mid_space_sizing(telescopic)
        # Same tail current; the folded adds its cascode branch on top.
        sizing_f = dict(zip(FoldedCascodeOTA.VARIABLE_NAMES, [*sizing_t, sizing_t[-1]]))
        power_t = telescopic.evaluate(sizing_t)["power_w"]
        power_f = folded.evaluate(folded.to_vector(sizing_f))["power_w"]
        assert power_f > power_t

    def test_five_transistor_gain_is_single_stage(self):
        """No cascode, no second stage: gain stays below ~70 dB everywhere."""
        ota = FiveTransistorOTA()
        samples = ota.design_space().sample(np.random.default_rng(9), 1000)
        gains = ota.evaluate_batch(samples)[:, 0]
        assert np.max(gains) < 70.0

    def test_smoke_tier_feasible_at_hardest_corner(self):
        """Each topology's smoke tier must be satisfiable by plain sampling."""
        from repro.search.spec import Specification

        condition = hardest_condition(nine_corner_grid())
        for cls in ALL_TOPOLOGIES:
            problem = cls(condition=condition)
            specs = problem.default_specs()["smoke"]
            samples = problem.design_space().sample(np.random.default_rng(10), 4000)
            satisfied = Specification(specs, cls.METRIC_NAMES).satisfied(
                problem.evaluate_batch(samples)
            )
            assert satisfied.any(), f"{cls.name} smoke tier infeasible in 4000 samples"


class TestBackwardCompatibility:
    def test_opamp_module_alias(self):
        from repro.circuits import opamp

        assert opamp.TwoStageOpAmp is TwoStageOpAmp
        assert opamp.METRIC_NAMES == AMPLIFIER_METRIC_NAMES
        assert opamp.VARIABLE_NAMES == TwoStageOpAmp.VARIABLE_NAMES
