"""Design-space mapping, snapping, sampling and the neighbor fix."""

import numpy as np
import pytest

from repro.core.design_space import DesignSpace, Parameter


def make_space():
    return DesignSpace(
        [
            Parameter("w", 1e-6, 1e-4, grid_points=33, log_scale=True, unit="m"),
            Parameter("i", 1e-6, 1e-3, grid_points=17, log_scale=True, unit="A"),
            Parameter("c", 0.5e-12, 5e-12, grid_points=9, unit="F"),
        ]
    )


class TestUnitCubeMapping:
    def test_round_trip(self):
        space = make_space()
        rng = np.random.default_rng(0)
        samples = space.sample(rng, 10, snap=False)
        recovered = space.from_unit(space.to_unit(samples))
        np.testing.assert_allclose(recovered, samples, rtol=1e-10)

    def test_batch_matches_per_row(self):
        space = make_space()
        rng = np.random.default_rng(1)
        samples = space.sample(rng, 6)
        batch_units = space.to_unit(samples)
        for k in range(len(samples)):
            np.testing.assert_allclose(batch_units[k], space.to_unit(samples[k]))

    def test_matches_parameter_scalar_mapping(self):
        space = make_space()
        vector = np.array([3e-5, 2e-5, 2e-12])
        expected = [p.to_unit(v) for p, v in zip(space.parameters, vector)]
        np.testing.assert_allclose(space.to_unit(vector), expected, rtol=1e-12)


class TestSnapping:
    def test_snap_idempotent(self):
        space = make_space()
        rng = np.random.default_rng(2)
        snapped = space.snap(space.sample(rng, 20, snap=False))
        np.testing.assert_allclose(space.snap(snapped), snapped, rtol=1e-9)

    def test_snap_matches_parameter_scalar_snap(self):
        space = make_space()
        rng = np.random.default_rng(3)
        for row in space.sample(rng, 5, snap=False):
            expected = [p.snap(v) for p, v in zip(space.parameters, row)]
            np.testing.assert_allclose(space.snap(row), expected, rtol=1e-9)

    def test_snap_clips_out_of_range(self):
        space = make_space()
        snapped = space.snap(np.array([1e-9, 1.0, 1.0]))
        assert space.contains(snapped)


class TestSampling:
    def test_sample_shape_and_bounds(self):
        space = make_space()
        rng = np.random.default_rng(4)
        samples = space.sample(rng, 100)
        assert samples.shape == (100, 3)
        assert all(space.contains(row) for row in samples)

    def test_sample_ball_respects_radius(self):
        space = make_space()
        rng = np.random.default_rng(5)
        center = space.snap(np.array([1e-5, 1e-4, 2e-12]))
        radius = 0.1
        samples = space.sample_ball(rng, center, radius, 200, snap=False)
        offsets = np.abs(space.to_unit(samples) - space.to_unit(center))
        assert np.all(offsets <= radius + 1e-9)

    def test_sample_reproducible_under_seed(self):
        space = make_space()
        one = space.sample(np.random.default_rng(42), 8)
        two = space.sample(np.random.default_rng(42), 8)
        np.testing.assert_array_equal(one, two)


class TestGridNeighbors:
    def test_interior_point_has_two_neighbors_per_dimension(self):
        space = make_space()
        center = space.snap(np.array([1e-5, 1e-4, 2e-12]))
        neighbors = space.grid_neighbors(center)
        assert len(neighbors) == 2 * space.dimension
        for neighbor in neighbors:
            assert not np.allclose(neighbor, center, rtol=1e-12, atol=0.0)

    def test_boundary_skips_out_of_range_moves(self):
        """The seed emitted the clipped centre itself as a 'neighbor'."""
        space = make_space()
        corner = np.array([1e-6, 1e-6, 0.5e-12])  # all-low corner
        neighbors = space.grid_neighbors(corner)
        assert len(neighbors) == space.dimension  # only +1 moves remain
        center = space.snap(corner)
        for neighbor in neighbors:
            assert not np.allclose(neighbor, center, rtol=1e-12, atol=0.0)

    def test_high_corner(self):
        space = make_space()
        corner = np.array([1e-4, 1e-3, 5e-12])
        neighbors = space.grid_neighbors(corner)
        assert len(neighbors) == space.dimension
        center = space.snap(corner)
        for neighbor in neighbors:
            assert not np.allclose(neighbor, center, rtol=1e-12, atol=0.0)
            assert space.contains(neighbor)


class TestValidation:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace([Parameter("a", 0, 1), Parameter("a", 0, 1)])

    def test_log_scale_requires_positive_bounds(self):
        with pytest.raises(ValueError):
            Parameter("a", -1.0, 1.0, log_scale=True)

    def test_size_accounting(self):
        space = make_space()
        assert space.size() == 33 * 17 * 9
        assert space.log10_size() == pytest.approx(np.log10(33 * 17 * 9))

    def test_dict_round_trip(self):
        space = make_space()
        vector = np.array([2e-5, 5e-5, 1e-12])
        assert np.allclose(space.to_vector(space.to_dict(vector)), vector)
